"""The pipeline registry and the six pre-registered paper pipelines.

Pipelines are first-class :class:`~repro.pipeline.spec.PipelineSpec` values
registered by name.  The six compositions compared in the paper's
evaluation (§7) ship pre-registered — ``gcc``, ``clang``, ``dace``,
``mlir``, ``dcir``, ``dcir+vec`` — and user code can add its own with
:func:`register_pipeline` (ablations, new pass orderings,
workload-specific pipelines) without touching library internals.

:data:`PIPELINES` is a live, ordered view over the registered names, kept
for backwards compatibility with the original string-tuple API: iteration,
membership, indexing and ``len`` all reflect the current registry contents.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Sequence

from ..errors import PipelineError
from ..passbase import suggest
from .spec import CodegenOptions, PassSpec, PipelineLike, PipelineSpec

_REGISTRY: "OrderedDict[str, PipelineSpec]" = OrderedDict()


def register_pipeline(spec: PipelineSpec, overwrite: bool = False) -> PipelineSpec:
    """Register a named pipeline spec, making it addressable by string.

    The spec must carry a ``name``.  Re-registering an existing name raises
    unless ``overwrite=True``; the six paper pipelines can be overwritten
    like any other entry (but the determinism guarantees then no longer
    apply to the replaced name).

    The registry stores a deep copy, so later mutation of the passed spec
    cannot silently rewrite what the name means (or its cache identity).
    """
    if not spec.name:
        raise PipelineError("Cannot register an anonymous pipeline spec (set spec.name)")
    if spec.name in _REGISTRY and not overwrite:
        raise PipelineError(
            f"Pipeline {spec.name!r} is already registered; pass overwrite=True to replace it"
        )
    spec = spec.copy().validate()
    _REGISTRY[spec.name] = spec
    return spec


def unregister_pipeline(name: str) -> Optional[PipelineSpec]:
    """Remove a registered pipeline; returns the removed spec (or None)."""
    return _REGISTRY.pop(name, None)


def get_pipeline(name: str) -> PipelineSpec:
    """Fetch a registered pipeline spec by name.

    Unknown names raise :class:`PipelineError` listing every *currently*
    registered pipeline (including user-registered ones) and suggesting the
    closest match.  The returned spec is a deep copy: mutate it freely (the
    usual way to build ablations) without affecting the registered entry.
    """
    try:
        return _REGISTRY[name].copy()
    except KeyError:
        raise PipelineError(
            f"Unknown pipeline {name!r}; "
            + suggest(name, list(_REGISTRY), "registered pipelines")
        ) from None


def list_pipelines() -> List[str]:
    """Names of all registered pipelines, in registration order."""
    return list(_REGISTRY)


def resolve_pipeline(pipeline: PipelineLike) -> PipelineSpec:
    """Coerce a pipeline designator (registered name or spec) into a spec."""
    if isinstance(pipeline, PipelineSpec):
        return pipeline
    if isinstance(pipeline, str):
        return get_pipeline(pipeline)
    raise PipelineError(
        f"Expected a pipeline name or PipelineSpec, got {type(pipeline).__name__}"
    )


class _PipelineView(Sequence):
    """Live, ordered, read-only view over the registered pipeline names."""

    def __iter__(self):
        return iter(list(_REGISTRY))

    def __len__(self) -> int:
        return len(_REGISTRY)

    def __getitem__(self, index):
        return list(_REGISTRY)[index]

    def __contains__(self, name) -> bool:
        return name in _REGISTRY

    def __eq__(self, other) -> bool:
        if isinstance(other, (list, tuple, _PipelineView)):
            return list(_REGISTRY) == list(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(_REGISTRY))

    def __add__(self, other):
        return tuple(_REGISTRY) + tuple(other)

    def __radd__(self, other):
        return tuple(other) + tuple(_REGISTRY)

    def __repr__(self) -> str:
        return f"PIPELINES{tuple(_REGISTRY)!r}"


#: The six pipeline compositions of the paper's evaluation — a fixed
#: snapshot, unaffected by later registrations (the default sweep set).
PAPER_PIPELINES = ("gcc", "clang", "dace", "mlir", "dcir", "dcir+vec")

#: Registered pipeline names — a live view over the registry (historically
#: a hard-coded six-element tuple).
PIPELINES = _PipelineView()


# -- the paper's six pipelines ---------------------------------------------------------

#: Canonical control-centric pass suite of §4, in pipeline order (the
#: registered names of :data:`repro.passes.CONTROL_PASSES`).
CONTROL_SUITE = (
    "inline",
    "canonicalize",
    "scalar-replacement",
    "cse",
    "licm",
    "dce",
    "memref-dce",
)

#: Canonical data-centric pass suite of §6 (simplify then schedule), in
#: pipeline order (the registered names of :data:`repro.transforms.DATA_PASSES`).
DATA_SUITE = (
    "scalar-to-symbol",
    "symbol-propagation",
    "state-fusion",
    "augassign-to-wcr",
    "dead-state-elimination",
    "dead-dataflow-elimination",
    "redundant-iteration-elimination",
    "array-elimination",
    "memlet-consolidation",
    "stack-promotion",
    "memory-preallocation",
    "loop-to-map",
    "map-fusion",
)


def paper_control_passes(include_memref_dce: bool = True) -> List[PassSpec]:
    """The §4 control-centric suite as pass specs (a fresh, editable list)."""
    names = CONTROL_SUITE if include_memref_dce else CONTROL_SUITE[:-1]
    return [PassSpec(name) for name in names]


def paper_data_passes() -> List[PassSpec]:
    """The §6 data-centric suite as pass specs (a fresh, editable list)."""
    return [PassSpec(name) for name in DATA_SUITE]


def _register_paper_pipelines() -> None:
    native = CodegenOptions(native_scalars=True, preallocate=True)
    polygeist = CodegenOptions(native_scalars=False, preallocate=False)
    register_pipeline(PipelineSpec(
        name="gcc",
        description="Full control-centric suite, native-style MLIR codegen",
        control_passes=paper_control_passes(),
        codegen=native,
    ))
    register_pipeline(PipelineSpec(
        name="clang",
        description="Control-centric suite minus memref-DCE, native-style MLIR codegen",
        control_passes=paper_control_passes(include_memref_dce=False),
        codegen=native,
    ))
    register_pipeline(PipelineSpec(
        name="dace",
        description="No control-centric passes (coarse view), full §6 set, SDFG codegen",
        bridge=True,
        data_passes=paper_data_passes(),
    ))
    register_pipeline(PipelineSpec(
        name="mlir",
        description="Full control-centric suite, Polygeist-style MLIR codegen",
        control_passes=paper_control_passes(),
        codegen=polygeist,
    ))
    register_pipeline(PipelineSpec(
        name="dcir",
        description="Full control-centric suite, bridge, full §6 set, SDFG codegen",
        control_passes=paper_control_passes(),
        bridge=True,
        data_passes=paper_data_passes(),
    ))
    register_pipeline(PipelineSpec(
        name="dcir+vec",
        description="As dcir, with vectorized maps",
        control_passes=paper_control_passes(),
        bridge=True,
        data_passes=paper_data_passes(),
        codegen=CodegenOptions(vectorize=True),
    ))


_register_paper_pipelines()
