"""Declarative pipeline specifications.

A :class:`PipelineSpec` is a first-class, serializable description of one
complete compilation pipeline — the paper's central claim that
control-centric and data-centric optimization are *composable* stages made
into a value:

* frontend options (keyword arguments of
  :func:`repro.frontend.compile_c_to_mlir`),
* an ordered list of control-centric passes by registered name
  (:data:`repro.passes.CONTROL_PASSES`), each with per-pass options,
* whether to cross the MLIR → SDFG *bridge* (Fig. 4's hand-off point),
* an ordered list of data-centric passes by registered name
  (:data:`repro.transforms.DATA_PASSES`),
* codegen options (``native_scalars``/``preallocate`` for the MLIR
  backend, ``vectorize`` for the SDFG backend).

Specs serialize to plain JSON-stable dictionaries (:meth:`PipelineSpec.to_dict`
/ :meth:`PipelineSpec.from_dict`); the *canonical* serialization — every
field except the display name and description — is the content identity
used by the compile cache, so two specs describing the same compilation
share a cache entry regardless of what they are called, and any change to
the pass list, pass options or codegen flags produces a new content
address.

Every public entry point (``compile_c``, ``generate_program``,
``CompileCache.get_or_compile``, ``compile_many``, ``Session``) accepts a
registered pipeline name *or* a spec; :func:`pipeline_label` maps either to
a display string.
"""

from __future__ import annotations

import copy
import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Union

from ..errors import PipelineError


@dataclass
class PassSpec:
    """One pass invocation inside a spec: a registered name plus parameters.

    ``params`` are passed to the pass constructor as keyword arguments
    when the pipeline is built — for pattern-based transformations these
    are the tunable transformation parameters (``tile_size``, ``width``,
    ``max_elements``, plus the universal ``only_matches`` /
    ``max_applications``).  They are part of the canonical serialization,
    so a parameter change produces a new spec ``content_id`` (and hence a
    new compile-cache address).  ``options`` remains as a read/write alias
    of ``params`` for older call sites, and :meth:`of`/:meth:`to_dict`
    accept the legacy ``"options"`` serialization key.
    """

    name: str
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def options(self) -> Dict[str, object]:
        """Alias of :attr:`params` (the historical field name)."""
        return self.params

    @options.setter
    def options(self, value: Dict[str, object]) -> None:
        self.params = value

    @classmethod
    def of(cls, item: "PassLike") -> "PassSpec":
        """Coerce a name, ``(name, params)`` pair or dict into a spec.

        Always returns a fresh instance — ``PipelineSpec.__post_init__``
        routes every pass list through here, so two specs never share
        ``PassSpec`` objects (or their params dicts), even when one is
        derived from the other's lists.
        """
        if isinstance(item, PassSpec):
            return cls(name=item.name, params=copy.deepcopy(dict(item.params)))
        if isinstance(item, str):
            return cls(name=item)
        if isinstance(item, Mapping):
            params = item.get("params")
            if params is None:
                params = item.get("options")  # legacy serialization key
            return cls(name=item["name"], params=dict(params or {}))
        if isinstance(item, Sequence) and len(item) == 2:
            return cls(name=item[0], params=dict(item[1] or {}))
        raise PipelineError(f"Cannot interpret {item!r} as a pass specification")

    def with_params(self, **params) -> "PassSpec":
        """A fresh spec with some parameters replaced (a tuning-axis step)."""
        merged = copy.deepcopy(dict(self.params))
        merged.update(params)
        return PassSpec(name=self.name, params=merged)

    def to_dict(self) -> Dict:
        # Deep-copied so serialized snapshots (and spec copies built from
        # them) never alias nested mutable parameter values.
        return {"name": self.name, "params": copy.deepcopy(dict(self.params))}


PassLike = Union[PassSpec, str, Mapping, Sequence]


@dataclass
class CodegenOptions:
    """Backend code-generation options.

    ``native_scalars`` and ``preallocate`` affect the MLIR (control-centric)
    backend; ``vectorize`` affects the SDFG (data-centric) backend.  Options
    not applicable to the selected backend are ignored.

    ``backend`` selects how data-centric pipelines *execute*: ``"python"``
    (the interpreted backend) or ``"native"`` (C emitted by
    :mod:`repro.codegen.sdfg_c`, compiled with the system compiler and
    timed as real machine code).  Pipelines that never cross the bridge
    have no SDFG to lower, so ``"native"`` falls back to ``"python"``
    with a diagnostic — as it does on machines without a C compiler.
    """

    native_scalars: bool = False
    preallocate: bool = False
    vectorize: bool = False
    backend: str = "python"

    def __post_init__(self):
        if self.backend not in ("python", "native"):
            from ..errors import PipelineError

            raise PipelineError(
                f"Unknown codegen backend {self.backend!r}; choose 'python' or 'native'"
            )

    def to_dict(self) -> Dict:
        return {
            "native_scalars": bool(self.native_scalars),
            "preallocate": bool(self.preallocate),
            "vectorize": bool(self.vectorize),
            "backend": str(self.backend),
        }

    @classmethod
    def from_dict(cls, data: Optional[Mapping]) -> "CodegenOptions":
        data = data or {}
        return cls(
            native_scalars=bool(data.get("native_scalars", False)),
            preallocate=bool(data.get("preallocate", False)),
            vectorize=bool(data.get("vectorize", False)),
            backend=str(data.get("backend", "python")),
        )


@dataclass
class PipelineSpec:
    """Declarative description of one complete compilation pipeline."""

    name: Optional[str] = None
    description: str = ""
    frontend_options: Dict[str, object] = field(default_factory=dict)
    control_passes: List[PassSpec] = field(default_factory=list)
    control_max_iterations: int = 3
    bridge: bool = False
    data_passes: List[PassSpec] = field(default_factory=list)
    data_max_iterations: int = 3
    codegen: CodegenOptions = field(default_factory=CodegenOptions)

    def __post_init__(self):
        # Defensively copy every mutable field: two specs must never share
        # state, or mutating one would silently change the other's cache
        # identity (PassSpec.of always returns fresh instances).
        self.frontend_options = copy.deepcopy(dict(self.frontend_options))
        self.control_passes = [PassSpec.of(item) for item in self.control_passes]
        self.data_passes = [PassSpec.of(item) for item in self.data_passes]
        if isinstance(self.codegen, Mapping):
            self.codegen = CodegenOptions.from_dict(self.codegen)
        else:
            self.codegen = replace(self.codegen)
        if self.data_passes and not self.bridge:
            raise PipelineError(
                "A pipeline with data-centric passes must set bridge=True "
                "(data-centric passes run on the SDFG IR behind the bridge)"
            )

    # -- serialization ---------------------------------------------------------------
    def to_dict(self) -> Dict:
        """Full JSON-stable serialization (round-trips via :meth:`from_dict`)."""
        return {
            "name": self.name,
            "description": self.description,
            **self.cache_basis(),
        }

    def cache_basis(self) -> Dict:
        """Canonical content identity: everything except name/description.

        This is the cache-key basis — a registered name and an equivalent
        anonymous spec content-address identically, while any change to
        passes, options or codegen flags yields a different address.
        """
        return {
            "frontend": copy.deepcopy(dict(self.frontend_options)),
            "control_passes": [p.to_dict() for p in self.control_passes],
            "control_max_iterations": int(self.control_max_iterations),
            "bridge": bool(self.bridge),
            "data_passes": [p.to_dict() for p in self.data_passes],
            "data_max_iterations": int(self.data_max_iterations),
            "codegen": self.codegen.to_dict(),
        }

    def canonical_json(self) -> str:
        return json.dumps(self.cache_basis(), sort_keys=True, separators=(",", ":"))

    def content_id(self) -> str:
        """SHA-256 of the canonical serialization (stable across processes)."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    @classmethod
    def from_dict(cls, data: Mapping) -> "PipelineSpec":
        if not isinstance(data, Mapping):
            raise PipelineError(
                f"A pipeline spec must deserialize from a mapping, got {type(data).__name__}"
            )
        return cls(
            name=data.get("name"),
            description=data.get("description", ""),
            frontend_options=dict(data.get("frontend") or {}),
            control_passes=[PassSpec.of(p) for p in data.get("control_passes") or []],
            control_max_iterations=int(data.get("control_max_iterations", 3)),
            bridge=bool(data.get("bridge", False)),
            data_passes=[PassSpec.of(p) for p in data.get("data_passes") or []],
            data_max_iterations=int(data.get("data_max_iterations", 3)),
            codegen=CodegenOptions.from_dict(data.get("codegen")),
        )

    # -- convenience -----------------------------------------------------------------
    @property
    def label(self) -> str:
        """Display name: the registered name, or a content-derived tag."""
        return self.name or f"custom-{self.content_id()[:12]}"

    def copy(self) -> "PipelineSpec":
        """Deep, independent copy (mutating it never affects the original)."""
        return PipelineSpec.from_dict(self.to_dict())

    def derive(self, **changes) -> "PipelineSpec":
        """Deep copy with fields replaced — the ablation/sweep building block.

        The copy shares no mutable state with its parent, so editing its
        pass lists, options or codegen flags in place is safe.  Unless
        explicitly overridden, it is anonymous (name and description
        cleared): a derived pipeline is a *different* pipeline and must
        not content-alias its parent's registered name.
        """
        changes.setdefault("name", None)
        changes.setdefault("description", "")
        return replace(self.copy(), **changes)

    def without_pass(self, pass_name: str, **changes) -> "PipelineSpec":
        """Ablation helper: a derived spec with every ``pass_name`` removed.

        Raises :class:`PipelineError` when the spec contains no such pass —
        a typo'd ablation would otherwise content-alias its parent and
        silently report the parent's (cached) results under its own label.
        """
        control = [p for p in self.control_passes if p.name != pass_name]
        data = [p for p in self.data_passes if p.name != pass_name]
        if len(control) == len(self.control_passes) and len(data) == len(self.data_passes):
            from ..passbase import suggest

            present = [p.name for p in self.control_passes + self.data_passes]
            raise PipelineError(
                f"Pipeline {self.label!r} contains no pass {pass_name!r}; "
                + suggest(pass_name, present, "passes in this pipeline")
            )
        return self.derive(control_passes=control, data_passes=data, **changes)

    def with_codegen(self, **options) -> "PipelineSpec":
        """Derived spec with some codegen flags replaced (an option sweep step).

        Unknown option names raise :class:`PipelineError` — a typo'd flag
        would otherwise content-alias the parent and silently re-report its
        (cached) results.
        """
        known = self.codegen.to_dict()
        for name in options:
            if name not in known:
                from ..passbase import suggest

                raise PipelineError(
                    f"Unknown codegen option {name!r}; "
                    + suggest(name, list(known), "codegen options")
                )
        known.update(options)
        return self.derive(codegen=CodegenOptions.from_dict(known))

    def with_passes(self, stage: str, passes: Sequence["PassLike"], **changes) -> "PipelineSpec":
        """Derived spec with one stage's pass list replaced.

        ``stage`` is ``"control"`` or ``"data"`` — the two pass stages of
        the paper's composition (§4 / §6).
        """
        if stage == "control":
            return self.derive(control_passes=list(passes), **changes)
        if stage == "data":
            return self.derive(data_passes=list(passes), **changes)
        raise PipelineError(f"Unknown pass stage {stage!r}; choose 'control' or 'data'")

    def stage_passes(self, stage: str) -> List[PassSpec]:
        """The (live) pass list of one stage, by stage name."""
        if stage == "control":
            return self.control_passes
        if stage == "data":
            return self.data_passes
        raise PipelineError(f"Unknown pass stage {stage!r}; choose 'control' or 'data'")

    def swap_passes(self, stage: str, first: int, second: int, **changes) -> "PipelineSpec":
        """Derived spec with two passes of one stage exchanged (a reordering).

        Indices follow Python semantics (negatives count from the end);
        out-of-range indices raise :class:`PipelineError`.
        """
        passes = [PassSpec.of(p) for p in self.stage_passes(stage)]
        try:
            passes[first], passes[second] = passes[second], passes[first]
        except IndexError:
            raise PipelineError(
                f"Pass indices ({first}, {second}) out of range for the "
                f"{stage} stage of {self.label!r} ({len(passes)} passes)"
            ) from None
        return self.with_passes(stage, passes, **changes)

    def validate(self) -> "PipelineSpec":
        """Check pass names against the registries; raise :class:`PipelineError`.

        Called by ``generate_program`` before any compilation stage runs so
        misspelled pass names fail fast with a closest-match suggestion.
        """
        from ..passes import CONTROL_PASSES
        from ..transforms import DATA_PASSES

        for pass_spec in self.control_passes:
            CONTROL_PASSES.get(pass_spec.name)
        for pass_spec in self.data_passes:
            DATA_PASSES.get(pass_spec.name)
        if self.control_max_iterations < 1 or self.data_max_iterations < 1:
            raise PipelineError("max_iterations fields must be >= 1")
        try:
            self.canonical_json()
        except (TypeError, ValueError) as exc:
            raise PipelineError(
                "Pipeline options must be JSON-serializable (they form the "
                f"cache key and the on-disk payload): {exc}"
            ) from exc
        return self


#: Anything the public entry points accept as a pipeline designator.
PipelineLike = Union[str, PipelineSpec]


def pipeline_label(pipeline: PipelineLike) -> str:
    """Display label of a pipeline name or spec."""
    return pipeline if isinstance(pipeline, str) else pipeline.label
