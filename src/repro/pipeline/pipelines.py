"""Spec-driven compilation: frontend → control passes → (bridge → data
passes →) codegen.

All pipelines start from the same C source and end in executable Python;
they differ only in which optimizations run — mirroring the paper's
methodology of using the same flags for every compiler.  The six
compositions of the evaluation (§7) ship pre-registered
(:mod:`repro.pipeline.registry`):

========== ============================== ======== ============================
pipeline   control-centric passes          bridge   data-centric passes / codegen
========== ============================== ======== ============================
``gcc``    full suite                      —        native-style MLIR codegen
``clang``  full suite (minus memref-DCE)   —        native-style MLIR codegen
``mlir``   full suite                      —        Polygeist-style MLIR codegen
``dace``   none (coarse view)              yes      full §6 set, SDFG codegen
``dcir``   full suite                      yes      full §6 set, SDFG codegen
``dcir+vec`` as dcir                       yes      as dcir, vectorized maps
========== ============================== ======== ============================

Every entry point accepts a registered pipeline *name* or a
:class:`~repro.pipeline.spec.PipelineSpec` value, so custom compositions
(ablations, new orderings) are first-class — they compile, cache and batch
exactly like the built-in six.

The module is split into a *pure* compilation stage and artifact
construction so the service layer (:mod:`repro.service`) can cache the
former and cheaply redo the latter:

* :func:`generate_program` runs frontend → passes → (bridge →) codegen and
  returns a :class:`GeneratedProgram` — the emitted Python source plus
  serializable statistics, including a per-stage
  :class:`~repro.passbase.CompilationReport`.  No executable objects are
  created.
* :meth:`GeneratedProgram.to_result` / :func:`load_runner` turn generated
  code into a live :class:`CompileResult`; :func:`result_from_payload`
  rehydrates one from a cached payload without re-running any pass.
"""

from __future__ import annotations

import gc
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from ..codegen import (
    MovementReport,
    generate_mlir_code,
    generate_code as generate_sdfg_code,
    load_entry,
    sdfg_movement_report,
)
from ..codegen.sdfg_c import NativeCodegenError, generate_c_code
from ..conversion import mlir_to_sdfg, module_function_names, require_function
from ..errors import PipelineError
from ..frontend import compile_c_to_mlir
from ..frontend_py import ProgramLike, as_program, compile_python_to_mlir
from ..passbase import CompilationReport, PassRunner, StageReport
from ..passes import CONTROL_PASSES
from ..perf import PERF
from ..sdfg import SDFG
from ..transforms import DATA_PASSES
from .registry import PIPELINES, resolve_pipeline
from .spec import PipelineLike, PipelineSpec, pipeline_label

#: What the compilation entry points accept as a program: C source text
#: or a Python-frontend program (decorated/plain function or
#: :class:`~repro.frontend_py.PythonProgram`).
SourceLike = Union[str, ProgramLike]

#: Version tag of the serialized program payload; bump when the payload
#: layout or the semantics of generated code change incompatibly.
#: (v2: declarative-pipeline payloads carry the spec and stage timings;
#: v3: payloads carry the compile-time profiler counters;
#: v4: movement snapshots carry the loop/map iteration count the cost
#: model's iteration-overhead term scores;
#: v5: payloads carry the native (C) backend's emitted source and the
#: fallback diagnostic, and specs carry the ``codegen.backend`` axis;
#: v6: map schedules — generated code for parallel-annotated maps embeds
#: the fork/join executor (interpreted) or OpenMP pragmas (native), so
#: cached payloads from earlier versions would miss the schedule.)
PAYLOAD_VERSION = 6


@dataclass
class CompileResult:
    """Result of compiling a program through one pipeline."""

    pipeline: str
    function: Optional[str]
    code: str
    runner: Callable
    sdfg: Optional[SDFG] = None
    mlir_module: object = None
    compile_seconds: float = 0.0
    optimization_report: object = None
    #: Declarative spec of the pipeline that produced this result.
    spec: Optional[PipelineSpec] = None
    #: Per-stage compilation report (frontend/control/bridge/data/codegen).
    report: Optional[CompilationReport] = None
    #: True when this result was rehydrated from the compile cache rather
    #: than produced by a fresh run of the compilation pipeline.
    cache_hit: bool = False
    #: Execution backend of :attr:`runner`: ``"python"`` (interpreted) or
    #: ``"native"`` (compiled C).  A requested-but-unavailable native
    #: backend flips to ``"python"`` with :attr:`backend_diagnostic` set —
    #: at codegen time for inexpressible SDFGs, or at first call when the
    #: machine has no C compiler.
    backend: str = "python"
    #: Why the native backend was not used, when it was requested.
    backend_diagnostic: Optional[str] = None
    #: The emitted C translation unit (native backend only).
    native_code: Optional[str] = field(repr=False, default=None)
    #: How a failing native backend behaves at run time: ``"fallback"``
    #: degrades to the interpreted runner (recording why in
    #: :attr:`backend_diagnostic`); ``"strict"`` re-raises the typed error.
    degradation: str = "fallback"
    #: Deadline (seconds) threaded to the toolchain when the deferred
    #: native build runs (None: the toolchain's own default applies).
    timeout: Optional[float] = None
    _cached_movement: Optional[MovementReport] = field(repr=False, default=None)
    _cached_eliminated: Optional[List[str]] = field(repr=False, default=None)

    def run(self, **kwargs) -> Dict:
        return self.runner(**kwargs)

    @property
    def stage_seconds(self) -> Dict[str, float]:
        """Per-stage compile-time breakdown (empty when unknown)."""
        return self.report.stage_seconds if self.report is not None else {}

    def movement_report(self, symbols: Optional[Dict[str, float]] = None) -> Optional[MovementReport]:
        if self.sdfg is not None:
            return sdfg_movement_report(self.sdfg, symbols)
        # Rehydrated results carry the report computed at compile time with
        # default symbol values; honoring custom ``symbols`` needs the live
        # SDFG, so return None rather than silently wrong statistics.
        if symbols:
            return None
        return self._cached_movement

    @property
    def eliminated_containers(self) -> List[str]:
        if self.sdfg is not None:
            return list(self.sdfg.eliminated_containers)
        return list(self._cached_eliminated or [])


@dataclass
class RunResult:
    """Timing and output of executing a compiled program.

    ``seconds`` is the best-of-N runtime and ``outputs`` comes from that
    same best repetition (every repetition of a deterministic program
    computes identical outputs; recording the pair keeps them consistent
    even for programs that are not).  ``rep_seconds`` carries the
    individual repetition timings in execution order; ``warmup_seconds``
    carries the timings of discarded warm-up repetitions (never part of
    the best-of-N statistic).
    """

    pipeline: str
    seconds: float
    outputs: Dict
    allocations: int = 0
    rep_seconds: List[float] = field(default_factory=list)
    warmup_seconds: List[float] = field(default_factory=list)

    @property
    def return_value(self):
        return self.outputs.get("__return")


@dataclass
class GeneratedProgram:
    """Pure compilation artifact: generated code plus statistics.

    Everything needed to *execute* the program later is in :attr:`code`
    (self-contained Python source defining ``run(**kwargs)``); the live IR
    objects are kept only for fresh compiles and are excluded from the
    cacheable payload.
    """

    pipeline: str
    function: Optional[str]
    code: str
    compile_seconds: float = 0.0
    sdfg: Optional[SDFG] = None
    mlir_module: object = None
    optimization_report: object = None
    #: Declarative spec of the pipeline that produced this program.
    spec: Optional[PipelineSpec] = None
    #: Per-stage compilation report (frontend/control/bridge/data/codegen).
    report: Optional[CompilationReport] = None
    #: C translation unit emitted by the native backend (when requested
    #: and expressible); the Python :attr:`code` is always emitted too —
    #: it is the differential reference and the no-compiler fallback.
    native_code: Optional[str] = None
    #: Why a requested native backend fell back to Python at codegen time.
    native_fallback: Optional[str] = None

    @property
    def stage_seconds(self) -> Dict[str, float]:
        """Per-stage compile-time breakdown (empty when unknown)."""
        return self.report.stage_seconds if self.report is not None else {}

    def to_payload(self) -> Dict:
        """Serializable (JSON-safe) snapshot for the content-addressed cache."""
        movement = None
        eliminated: List[str] = []
        if self.sdfg is not None:
            report = sdfg_movement_report(self.sdfg)
            movement = {
                "elements_moved": report.elements_moved,
                "bytes_moved": report.bytes_moved,
                "allocations": report.allocations,
                "allocated_bytes": report.allocated_bytes,
                "iterations": report.iterations,
                "per_container": dict(report.per_container),
            }
            eliminated = list(self.sdfg.eliminated_containers)
        return {
            "version": PAYLOAD_VERSION,
            "pipeline": self.pipeline,
            "function": self.function,
            "code": self.code,
            "compile_seconds": self.compile_seconds,
            "movement": movement,
            "eliminated_containers": eliminated,
            "spec": self.spec.to_dict() if self.spec is not None else None,
            "stage_seconds": self.stage_seconds,
            "counters": dict(self.report.counters) if self.report is not None else {},
            "native_code": self.native_code,
            "native_fallback": self.native_fallback,
        }

    def to_result(self) -> CompileResult:
        """Construct the executable artifact from this program."""
        result = CompileResult(
            pipeline=self.pipeline,
            function=self.function,
            code=self.code,
            runner=load_runner(self.code, name=f"<{self.pipeline}>"),
            sdfg=self.sdfg,
            mlir_module=self.mlir_module,
            compile_seconds=self.compile_seconds,
            optimization_report=self.optimization_report,
            spec=self.spec,
            report=self.report,
        )
        _attach_backend(result, self.native_code, self.native_fallback)
        return result


def load_runner(code: str, name: str = "<generated>") -> Callable:
    """Load generated Python source into its ``run(**kwargs)`` callable."""
    return load_entry(code, entry="run", filename=name)


class _LazyNativeRunner:
    """Runner that compiles the emitted C on first call.

    Building a :class:`CompileResult` must stay cheap and side-effect free
    (the tuner rehydrates many candidates it will never execute, and
    repeat-run cache reuse is asserted to spawn zero work), so the
    toolchain — ``cc`` process, ``dlopen`` — is only touched when the
    program is actually run.  Under the result's default ``"fallback"``
    degradation mode a missing, failing, hung or corrupted toolchain
    degrades to the interpreted runner with a warning and a recorded
    diagnostic; under ``"strict"`` the typed error propagates to the
    caller (the diagnostic is still recorded first).
    """

    def __init__(self, result: CompileResult, native_code: str):
        self._result = result
        self._native_code = native_code
        self._callable: Optional[Callable] = None

    def __call__(self, **kwargs) -> Dict:
        if self._callable is None:
            from ..codegen.toolchain import CompiledNative
            from ..errors import PermanentError, TransientError

            try:
                self._callable = CompiledNative.from_code(
                    self._native_code,
                    name=self._result.pipeline,
                    timeout=self._result.timeout,
                ).run
            except (PermanentError, TransientError) as exc:
                self._result.backend = "python"
                self._result.backend_diagnostic = str(exc)
                if self._result.degradation == "strict":
                    raise
                warnings.warn(
                    f"Native backend unavailable for pipeline "
                    f"{self._result.pipeline!r} ({exc}); falling back to the "
                    "interpreted backend",
                    RuntimeWarning,
                    stacklevel=2,
                )
                PERF.increment("backend.degraded_runs")
                self._callable = load_runner(
                    self._result.code, name=f"<{self._result.pipeline}>"
                )
        return self._callable(**kwargs)


def _attach_backend(
    result: CompileResult,
    native_code: Optional[str],
    native_fallback: Optional[str],
) -> None:
    """Wire a result's execution backend from the generated artifacts."""
    if native_code:
        result.backend = "native"
        result.native_code = native_code
        result.runner = _LazyNativeRunner(result, native_code)
    elif native_fallback:
        result.backend = "python"
        result.backend_diagnostic = native_fallback


def result_from_payload(payload: Dict) -> CompileResult:
    """Rehydrate a :class:`CompileResult` from a cached payload.

    Only the generated code is re-``exec``-ed — no frontend, pass or codegen
    work runs.  The rehydrated result has no live SDFG/MLIR objects; the
    movement report, eliminated-container list and stage timings recorded
    at compile time stand in for them.
    """
    movement = None
    if payload.get("movement") is not None:
        snapshot = payload["movement"]
        movement = MovementReport(
            elements_moved=snapshot.get("elements_moved", 0.0),
            bytes_moved=snapshot.get("bytes_moved", 0.0),
            allocations=snapshot.get("allocations", 0.0),
            allocated_bytes=snapshot.get("allocated_bytes", 0.0),
            iterations=snapshot.get("iterations", 0.0),
            per_container=dict(snapshot.get("per_container", {})),
        )
    spec = None
    if payload.get("spec") is not None:
        spec = PipelineSpec.from_dict(payload["spec"])
    report = None
    if payload.get("stage_seconds"):
        report = CompilationReport(pipeline=payload["pipeline"])
        for stage, seconds in payload["stage_seconds"].items():
            report.add_stage(stage, seconds)
        # Profiler counters recorded by the original (cache-filling) compile.
        report.counters = dict(payload.get("counters") or {})
    result = CompileResult(
        pipeline=payload["pipeline"],
        function=payload.get("function"),
        code=payload["code"],
        runner=load_runner(payload["code"], name=f"<cached:{payload['pipeline']}>"),
        compile_seconds=payload.get("compile_seconds", 0.0),
        spec=spec,
        report=report,
        cache_hit=True,
        _cached_movement=movement,
        _cached_eliminated=list(payload.get("eliminated_containers", [])),
    )
    _attach_backend(result, payload.get("native_code"), payload.get("native_fallback"))
    return result


def available_functions(module) -> List[str]:
    """Names of the functions defined by a compiled MLIR module."""
    return module_function_names(module)


def compile_frontend(source, spec: PipelineSpec):
    """Frontend dispatch: C source text or a Python program → MLIR module.

    Every pipeline entry point funnels through here, so both frontends
    share the stack below this call — that is the frontend-agnosticism
    the paper's bridge claims, made structural.  Strings are C sources;
    :class:`~repro.frontend_py.PythonProgram` instances (or anything
    callable, coerced via :func:`~repro.frontend_py.as_program`) take the
    Python frontend.
    """
    if isinstance(source, str):
        return compile_c_to_mlir(source, **spec.frontend_options)
    return compile_python_to_mlir(as_program(source), **spec.frontend_options)


def _build_control_runner(spec: PipelineSpec) -> PassRunner:
    return PassRunner(
        [CONTROL_PASSES.build(p.name, p.params) for p in spec.control_passes],
        max_iterations=spec.control_max_iterations,
        stage="control",
    )


def _build_data_runner(spec: PipelineSpec) -> PassRunner:
    return PassRunner(
        [DATA_PASSES.build(p.name, p.params) for p in spec.data_passes],
        max_iterations=spec.data_max_iterations,
        stage="data",
    )


def generate_sdfg(
    source: SourceLike,
    pipeline: PipelineLike = "dcir",
    function: Optional[str] = None,
    stop_before: Optional[str] = None,
) -> SDFG:
    """Compile up to the data-centric stage and return the live SDFG.

    Runs frontend → control passes → bridge, then the spec's data-centric
    passes — all of them, or only those *before* the first occurrence of
    ``stop_before`` (the natural point to enumerate that pass's matches:
    the graph it would actually see).  The spec must cross the bridge.

    This is the workhorse of ``python -m repro transforms match``.
    """
    spec = resolve_pipeline(pipeline).validate()
    if not spec.bridge:
        raise PipelineError(
            f"Pipeline {spec.label!r} never builds an SDFG (bridge=False); "
            "pick a data-centric pipeline such as 'dcir'"
        )
    data_passes = list(spec.data_passes)
    if stop_before is not None:
        index = next(
            (i for i, p in enumerate(data_passes) if p.name == stop_before),
            len(data_passes),
        )
        data_passes = data_passes[:index]
        spec = spec.with_passes("data", data_passes,
                                name=spec.name, description=spec.description)

    module = compile_frontend(source, spec)
    require_function(module, function)
    if spec.control_passes:
        _build_control_runner(spec).run(module)
    sdfg = mlir_to_sdfg(module, function=function)
    if spec.data_passes:
        _build_data_runner(spec).run(sdfg)
    return sdfg


def generate_program(
    source: SourceLike, pipeline: PipelineLike = "dcir", function: Optional[str] = None
) -> GeneratedProgram:
    """Run the pure compilation stages for one pipeline.

    ``source`` is C text or a Python-frontend program (see
    :func:`compile_frontend`); ``pipeline`` is a registered name or a
    :class:`PipelineSpec`.  Frontend →
    control-centric passes → (SDFG bridge → data-centric passes →) code
    generation, producing a :class:`GeneratedProgram`.  This performs no
    ``exec`` and builds no callables, so the service layer can run it in a
    worker process and ship the payload back to the parent.
    """
    spec = resolve_pipeline(pipeline).validate()
    label = spec.label
    report = CompilationReport(pipeline=label)
    perf_before = PERF.snapshot()
    start = time.perf_counter()

    stage_start = time.perf_counter()
    PERF.increment("frontend.runs")
    module = compile_frontend(source, spec)
    require_function(module, function)
    report.add_stage("frontend", time.perf_counter() - stage_start)

    control_report: Optional[StageReport] = None
    if spec.control_passes:
        control_report = _build_control_runner(spec).run(module)
        report.stages.append(control_report)

    if not spec.bridge:
        stage_start = time.perf_counter()
        code = generate_mlir_code(
            module,
            function=function,
            native_scalars=spec.codegen.native_scalars,
            preallocate=spec.codegen.preallocate,
        )
        report.add_stage("codegen", time.perf_counter() - stage_start)
        report.counters = PERF.delta_since(perf_before)
        native_fallback = None
        if spec.codegen.backend == "native":
            native_fallback = (
                "the native backend lowers SDFGs; pipeline "
                f"{label!r} never crosses the bridge (bridge=False)"
            )
        return GeneratedProgram(
            pipeline=label,
            function=function,
            code=code,
            compile_seconds=time.perf_counter() - start,
            mlir_module=module,
            optimization_report=control_report,
            spec=spec,
            report=report,
            native_fallback=native_fallback,
        )

    # Data-centric pipelines: bridge to the SDFG IR and optimize there.
    stage_start = time.perf_counter()
    sdfg = mlir_to_sdfg(module, function=function)
    report.add_stage("bridge", time.perf_counter() - stage_start)
    data_report = _build_data_runner(spec).run(sdfg)
    report.stages.append(data_report)
    stage_start = time.perf_counter()
    code = generate_sdfg_code(sdfg, vectorize=spec.codegen.vectorize)
    native_code = None
    native_fallback = None
    if spec.codegen.backend == "native":
        # C emission is pure (no compiler involved), so it belongs to the
        # cacheable stage; building/loading the shared object is deferred
        # to the first run.  Python code is still emitted above — it is
        # the differential reference and the no-compiler fallback.
        try:
            native_code = generate_c_code(sdfg, vectorize=spec.codegen.vectorize)
            PERF.increment("codegen.native_programs")
        except NativeCodegenError as exc:
            native_fallback = str(exc)
            PERF.increment("codegen.native_fallbacks")
    report.add_stage("codegen", time.perf_counter() - stage_start)
    report.counters = PERF.delta_since(perf_before)
    return GeneratedProgram(
        pipeline=label,
        function=function,
        code=code,
        compile_seconds=time.perf_counter() - start,
        sdfg=sdfg,
        mlir_module=module,
        optimization_report=data_report,
        spec=spec,
        report=report,
        native_code=native_code,
        native_fallback=native_fallback,
    )


def compile_c(
    source: SourceLike, pipeline: PipelineLike = "dcir", function: Optional[str] = None
) -> CompileResult:
    """Compile a program through the requested pipeline (name or spec).

    Despite the historical name, ``source`` may be C text *or* a
    Python-frontend program — the frontends share everything below
    :func:`compile_frontend`.

    This is the main public entry point of the library: it reproduces the
    paper's Fig. 4 conversion pipeline for ``dcir`` and the baseline paths
    for the other pipeline names, and compiles any custom
    :class:`PipelineSpec` the same way.  For cached and batched compilation
    see :mod:`repro.service`.
    """
    return generate_program(source, pipeline, function=function).to_result()


def run_compiled(
    result: CompileResult,
    repetitions: int = 1,
    warmup: int = 0,
    disable_gc: bool = False,
    **kwargs,
) -> RunResult:
    """Execute a compiled program, returning the best-of-N runtime.

    The reported ``outputs`` (and the allocation count derived from them)
    come from the same repetition as the reported ``seconds``; per-rep
    timings are returned in ``RunResult.rep_seconds``.

    ``warmup`` repetitions run (and are timed into
    ``RunResult.warmup_seconds``) before the measured ones but never
    enter the best-of-N statistic — the first call pays one-time costs
    (native: compile + ``dlopen``; interpreted: bytecode warm-up) that
    are not the program's runtime.  ``disable_gc`` suspends the cyclic
    garbage collector around the timed section so a collection pause
    cannot land inside a measured repetition.
    """
    best = float("inf")
    outputs: Dict = {}
    rep_seconds: List[float] = []
    warmup_seconds: List[float] = []
    restore_gc = disable_gc and gc.isenabled()
    if restore_gc:
        gc.disable()
    try:
        for _ in range(max(0, warmup)):
            start = time.perf_counter()
            result.run(**kwargs)
            warmup_seconds.append(time.perf_counter() - start)
        for _ in range(max(1, repetitions)):
            start = time.perf_counter()
            current = result.run(**kwargs)
            elapsed = time.perf_counter() - start
            rep_seconds.append(elapsed)
            if elapsed < best:
                best = elapsed
                outputs = current
    finally:
        if restore_gc:
            gc.enable()
    return RunResult(
        pipeline=result.pipeline,
        seconds=best,
        outputs=outputs,
        allocations=int(outputs.get("__allocations", 0)),
        rep_seconds=rep_seconds,
        warmup_seconds=warmup_seconds,
    )


def compile_and_run(
    source: SourceLike, pipeline: PipelineLike = "dcir", repetitions: int = 1,
    function: Optional[str] = None, **kwargs,
) -> RunResult:
    """Convenience wrapper: compile then run."""
    return run_compiled(compile_c(source, pipeline, function=function), repetitions, **kwargs)
