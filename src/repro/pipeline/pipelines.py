"""The compiler pipelines compared in the paper's evaluation (§7).

All pipelines start from the same C source and end in executable Python;
they differ only in which optimizations run — mirroring the paper's
methodology of using the same flags for every compiler:

========== ============================== ======== ============================
pipeline   control-centric passes          bridge   data-centric passes / codegen
========== ============================== ======== ============================
``gcc``    full suite                      —        native-style MLIR codegen
``clang``  full suite (minus memref-DCE)   —        native-style MLIR codegen
``mlir``   full suite                      —        Polygeist-style MLIR codegen
``dace``   none (coarse view)              yes      full §6 set, SDFG codegen
``dcir``   full suite                      yes      full §6 set, SDFG codegen
``dcir+vec`` as dcir                       yes      as dcir, vectorized maps
========== ============================== ======== ============================
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..codegen import (
    MovementReport,
    compile_mlir,
    compile_sdfg,
    sdfg_movement_report,
)
from ..conversion import mlir_to_sdfg
from ..frontend import compile_c_to_mlir
from ..passes import control_centric_pipeline
from ..sdfg import SDFG
from ..transforms import data_centric_pipeline

PIPELINES = ("gcc", "clang", "dace", "mlir", "dcir", "dcir+vec")


@dataclass
class CompileResult:
    """Result of compiling a program through one pipeline."""

    pipeline: str
    function: Optional[str]
    code: str
    runner: Callable
    sdfg: Optional[SDFG] = None
    mlir_module: object = None
    compile_seconds: float = 0.0
    optimization_report: object = None

    def run(self, **kwargs) -> Dict:
        return self.runner(**kwargs)

    def movement_report(self, symbols: Optional[Dict[str, float]] = None) -> Optional[MovementReport]:
        if self.sdfg is None:
            return None
        return sdfg_movement_report(self.sdfg, symbols)

    @property
    def eliminated_containers(self) -> List[str]:
        if self.sdfg is None:
            return []
        return list(self.sdfg.eliminated_containers)


@dataclass
class RunResult:
    """Timing and output of executing a compiled program."""

    pipeline: str
    seconds: float
    outputs: Dict
    allocations: int = 0

    @property
    def return_value(self):
        return self.outputs.get("__return")


class PipelineError(Exception):
    """Raised for unknown pipelines or failed compilation stages."""


def compile_c(source: str, pipeline: str = "dcir", function: Optional[str] = None) -> CompileResult:
    """Compile C source through the requested pipeline.

    This is the main public entry point of the library: it reproduces the
    paper's Fig. 4 conversion pipeline for ``dcir`` and the baseline paths
    for the other pipeline names.
    """
    if pipeline not in PIPELINES:
        raise PipelineError(f"Unknown pipeline {pipeline!r}; choose one of {PIPELINES}")
    start = time.perf_counter()
    module = compile_c_to_mlir(source)

    if pipeline in ("gcc", "clang", "mlir", "dcir", "dcir+vec"):
        include_memref_dce = pipeline != "clang"
        control_report = control_centric_pipeline(include_memref_dce=include_memref_dce).run(module)
    else:
        control_report = None  # the DaCe C frontend performs no control-centric passes

    if pipeline in ("gcc", "clang", "mlir"):
        native = pipeline in ("gcc", "clang")
        compiled = compile_mlir(
            module, function=function, native_scalars=native, preallocate=native
        )
        return CompileResult(
            pipeline=pipeline,
            function=function,
            code=compiled.code,
            runner=compiled.run,
            mlir_module=module,
            compile_seconds=time.perf_counter() - start,
            optimization_report=control_report,
        )

    # Data-centric pipelines: bridge to the SDFG IR and optimize there.
    sdfg = mlir_to_sdfg(module, function=function)
    data_report = data_centric_pipeline().apply(sdfg)
    compiled = compile_sdfg(sdfg, vectorize=pipeline == "dcir+vec")
    return CompileResult(
        pipeline=pipeline,
        function=function,
        code=compiled.code,
        runner=compiled.run,
        sdfg=sdfg,
        mlir_module=module,
        compile_seconds=time.perf_counter() - start,
        optimization_report=data_report,
    )


def run_compiled(result: CompileResult, repetitions: int = 1, **kwargs) -> RunResult:
    """Execute a compiled program, returning the best-of-N runtime."""
    best = float("inf")
    outputs: Dict = {}
    for _ in range(max(1, repetitions)):
        start = time.perf_counter()
        outputs = result.run(**kwargs)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return RunResult(
        pipeline=result.pipeline,
        seconds=best,
        outputs=outputs,
        allocations=int(outputs.get("__allocations", 0)),
    )


def compile_and_run(
    source: str, pipeline: str = "dcir", repetitions: int = 1, function: Optional[str] = None,
    **kwargs,
) -> RunResult:
    """Convenience wrapper: compile then run."""
    return run_compiled(compile_c(source, pipeline, function=function), repetitions, **kwargs)
