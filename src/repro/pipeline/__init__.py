"""Public compilation pipelines: declarative specs, a name registry, and
the spec-driven compile entry points.

The six paper pipelines (``gcc``, ``clang``, ``dace``, ``mlir``, ``dcir``,
``dcir+vec``) are pre-registered specs; user code can build and register
its own (see :class:`PipelineSpec` and :func:`register_pipeline`).
"""

from ..passbase import CompilationReport, PassRecord, StageReport
from .registry import (
    CONTROL_SUITE,
    DATA_SUITE,
    PAPER_PIPELINES,
    PIPELINES,
    get_pipeline,
    list_pipelines,
    paper_control_passes,
    paper_data_passes,
    register_pipeline,
    resolve_pipeline,
    unregister_pipeline,
)
from .spec import (
    CodegenOptions,
    PassSpec,
    PipelineLike,
    PipelineSpec,
    pipeline_label,
)
from .pipelines import (
    CompileResult,
    GeneratedProgram,
    PipelineError,
    RunResult,
    available_functions,
    compile_and_run,
    compile_c,
    generate_program,
    generate_sdfg,
    load_runner,
    result_from_payload,
    run_compiled,
)

__all__ = [
    "CONTROL_SUITE",
    "CodegenOptions",
    "CompilationReport",
    "CompileResult",
    "DATA_SUITE",
    "GeneratedProgram",
    "PAPER_PIPELINES",
    "PIPELINES",
    "PassRecord",
    "PassSpec",
    "PipelineError",
    "PipelineLike",
    "PipelineSpec",
    "RunResult",
    "StageReport",
    "available_functions",
    "compile_and_run",
    "compile_c",
    "generate_program",
    "generate_sdfg",
    "get_pipeline",
    "list_pipelines",
    "load_runner",
    "paper_control_passes",
    "paper_data_passes",
    "pipeline_label",
    "register_pipeline",
    "resolve_pipeline",
    "result_from_payload",
    "run_compiled",
    "unregister_pipeline",
]
