"""Public compilation pipelines (gcc, clang, mlir, dace, dcir, dcir+vec)."""

from .pipelines import (
    PIPELINES,
    CompileResult,
    PipelineError,
    RunResult,
    compile_and_run,
    compile_c,
    run_compiled,
)

__all__ = [
    "CompileResult",
    "PIPELINES",
    "PipelineError",
    "RunResult",
    "compile_and_run",
    "compile_c",
    "run_compiled",
]
