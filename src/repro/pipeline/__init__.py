"""Public compilation pipelines (gcc, clang, mlir, dace, dcir, dcir+vec)."""

from .pipelines import (
    PIPELINES,
    CompileResult,
    GeneratedProgram,
    PipelineError,
    RunResult,
    available_functions,
    compile_and_run,
    compile_c,
    generate_program,
    load_runner,
    result_from_payload,
    run_compiled,
)

__all__ = [
    "CompileResult",
    "GeneratedProgram",
    "PIPELINES",
    "PipelineError",
    "RunResult",
    "available_functions",
    "compile_and_run",
    "compile_c",
    "generate_program",
    "load_runner",
    "result_from_payload",
    "run_compiled",
]
