"""Common subexpression elimination.

Performs block-local CSE on pure operations and — conservatively — on
``memref.load`` operations when no potentially conflicting write occurs
between the two loads.  The SDFG IR cannot natively express CSE because
tasklets are atomic (§2.2), which is exactly why the paper runs it on the
MLIR side before conversion.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..ir.core import Block, Operation, Value
from .pass_manager import Pass


def _attributes_key(op: Operation) -> Tuple:
    items = []
    for key in sorted(op.attributes):
        value = op.attributes[key]
        if isinstance(value, (list, tuple)):
            value = tuple(value)
        elif isinstance(value, dict):
            value = tuple(sorted(value.items()))
        items.append((key, str(value)))
    return tuple(items)


def _op_key(op: Operation) -> Tuple:
    return (
        op.name,
        tuple(id(operand) for operand in op.operands),
        _attributes_key(op),
        tuple(str(result.type) for result in op.results),
    )


def _is_memory_barrier(op: Operation) -> bool:
    """Whether the op may invalidate previously loaded values."""
    if op.name in ("memref.store", "memref.copy", "memref.dealloc", "func.call", "sdfg.store"):
        return True
    # Ops with regions may contain writes.
    if op.regions and op.has_side_effects():
        return True
    return False


class CommonSubexpressionElimination(Pass):
    """Block-local CSE for pure ops and loads."""

    NAME = "cse"

    def run_on_module(self, module: Operation) -> bool:
        changed = False
        for op in module.walk():
            for region in op.regions:
                for block in region.blocks:
                    if self._run_on_block(block):
                        changed = True
        return changed

    def _run_on_block(self, block: Block) -> bool:
        changed = False
        pure_exprs: Dict[Tuple, Operation] = {}
        load_exprs: Dict[Tuple, Operation] = {}
        for op in list(block.operations):
            if op.parent_block is None:
                continue
            if _is_memory_barrier(op):
                load_exprs.clear()
            if op.regions:
                continue  # handled when recursing into their blocks
            if not op.results:
                continue
            key = _op_key(op)
            if op.is_pure():
                existing = pure_exprs.get(key)
                if existing is not None:
                    self._replace(op, existing)
                    changed = True
                else:
                    pure_exprs[key] = op
            elif op.READS_MEMORY and not op.HAS_SIDE_EFFECTS:
                existing = load_exprs.get(key)
                if existing is not None:
                    self._replace(op, existing)
                    changed = True
                else:
                    load_exprs[key] = op
        return changed

    @staticmethod
    def _replace(op: Operation, existing: Operation) -> None:
        for old_result, new_result in zip(op.results, existing.results):
            old_result.replace_all_uses_with(new_result)
        op.erase()
