"""Scalar replacement: store-to-load forwarding on memref scalars.

Polygeist materializes every mutable C scalar as a one-element ``memref``
(the paper notes "every SSA value becomes a scalar data container", §6.1).
This pass performs block-local store-to-load and load-to-load forwarding so
that later passes (CSE, LICM, constant folding) see through those memory
cells, and removes stores that are overwritten before being read.

The analysis is deliberately conservative:

* forwarding happens only within one block,
* a store with non-constant differing indices, a call, a copy or a dealloc
  invalidates knowledge about the affected memref (calls invalidate all),
* memrefs whose address escapes (passed to calls) are never forwarded.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..ir.core import Block, Operation, Value, defining_op
from ..dialects.arith import ConstantOp
from .pass_manager import Pass


def _index_key(indices) -> Optional[Tuple]:
    """Hashable key for an index tuple; None if any index is non-constant."""
    key = []
    for index in indices:
        op = defining_op(index)
        if isinstance(op, ConstantOp):
            key.append(("const", op.value))
        else:
            key.append(("value", id(index)))
    return tuple(key)


def _escaping_memrefs(module: Operation) -> set:
    escaping = set()
    for op in module.walk():
        if op.name == "func.call":
            for operand in op.operands:
                escaping.add(id(operand))
        elif op.name == "func.return":
            for operand in op.operands:
                escaping.add(id(operand))
    return escaping


class ScalarReplacement(Pass):
    """Store-to-load / load-to-load forwarding within basic blocks."""

    NAME = "scalar-replacement"

    def run_on_module(self, module: Operation) -> bool:
        escaping = _escaping_memrefs(module)
        changed = False
        for op in module.walk():
            for region in op.regions:
                for block in region.blocks:
                    if self._run_on_block(block, escaping):
                        changed = True
        return changed

    def _run_on_block(self, block: Block, escaping: set) -> bool:
        changed = False
        # (memref id, index key) -> value currently known to be stored there
        known: Dict[Tuple, Value] = {}
        # (memref id, index key) -> last store op, used for dead-store removal
        last_store: Dict[Tuple, Operation] = {}

        def invalidate_memref(memref_id: int) -> None:
            for key in [key for key in known if key[0] == memref_id]:
                del known[key]
            for key in [key for key in last_store if key[0] == memref_id]:
                del last_store[key]

        for op in list(block.operations):
            if op.parent_block is None:
                continue
            name = op.name
            if name == "memref.store":
                memref = op.operand(1)
                indices = op.operands[2:]
                index_key = _index_key(indices)
                cell = (id(memref), index_key)
                # A store to an unknown index invalidates the whole memref.
                if any(part[0] == "value" for part in index_key):
                    invalidate_memref(id(memref))
                previous = last_store.get(cell)
                if previous is not None and id(memref) not in escaping:
                    # The previous store is overwritten without an
                    # intervening read: it is dead.
                    previous.erase()
                    changed = True
                known[cell] = op.operand(0)
                last_store[cell] = op
            elif name == "memref.load":
                memref = op.operand(0)
                indices = op.operands[1:]
                cell = (id(memref), _index_key(indices))
                forwarded = known.get(cell)
                if forwarded is not None and forwarded.type == op.result.type:
                    op.result.replace_all_uses_with(forwarded)
                    op.erase()
                    changed = True
                else:
                    known[cell] = op.result
                    # The cell has now been read: its last store is live.
                    last_store.pop(cell, None)
            elif name in ("memref.copy", "memref.dealloc"):
                invalidate_memref(id(op.operand(-1)))
                if name == "memref.copy":
                    invalidate_memref(id(op.operand(1)))
            elif name == "func.call" or (op.regions and op.has_side_effects()):
                known.clear()
                last_store.clear()
            elif op.regions:
                # Region ops without side effects may still read memory;
                # conservatively keep knowledge (they cannot write).
                continue
        return changed
