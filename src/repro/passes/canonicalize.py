"""Canonicalization: constant folding and algebraic simplification.

Folds ``arith`` and ``math`` operations whose operands are constants,
applies neutral/absorbing-element identities (``x + 0``, ``x * 1``,
``x * 0``), folds comparisons and selects over constants, and simplifies
``scf.if`` with a constant condition by splicing the taken branch into the
parent block.  This is the control-centric workhorse that both the GCC- and
MLIR-style baseline pipelines and DCIR share (§4 of the paper).
"""

from __future__ import annotations

from typing import Optional, Union

from ..dialects import arith, math_dialect
from ..dialects.arith import (
    BINARY_SEMANTICS,
    CMP_SEMANTICS,
    ConstantOp,
    is_integer_op,
)
from ..dialects.math_dialect import MATH_SEMANTICS
from ..ir.core import Builder, Operation, Value, defining_op
from ..ir.types import FloatType, IndexType, IntegerType
from .pass_manager import Pass


def constant_value(value: Value) -> Optional[Union[int, float]]:
    """The Python constant behind an SSA value, if its defining op is a constant."""
    op = defining_op(value)
    if isinstance(op, ConstantOp):
        return op.value
    return None


def _make_constant(builder: Builder, value, type) -> Value:
    if isinstance(type, (IntegerType, IndexType)):
        value = int(value)
    else:
        value = float(value)
    return builder.create(ConstantOp, value, type).result


class Canonicalize(Pass):
    """Constant folding + algebraic identities + trivial scf.if folding."""

    NAME = "canonicalize"

    def run_on_module(self, module: Operation) -> bool:
        changed = False
        # Iterate locally to a fixed point: folding one op may enable more.
        for _ in range(64):
            if not self._run_once(module):
                break
            changed = True
        return changed

    # -- one sweep -------------------------------------------------------------
    def _run_once(self, module: Operation) -> bool:
        changed = False
        for op in list(module.walk(post_order=True)):
            if op.parent_block is None:
                continue  # already erased by a previous rewrite
            if self._fold_op(op):
                changed = True
        return changed

    def _fold_op(self, op: Operation) -> bool:
        name = op.name
        if name in BINARY_SEMANTICS:
            return self._fold_binary(op)
        if name in MATH_SEMANTICS:
            return self._fold_math(op)
        if name in (arith.CmpIOp.OP_NAME, arith.CmpFOp.OP_NAME):
            return self._fold_compare(op)
        if name == arith.SelectOp.OP_NAME:
            return self._fold_select(op)
        if name in (
            arith.IndexCastOp.OP_NAME,
            arith.SIToFPOp.OP_NAME,
            arith.FPToSIOp.OP_NAME,
            arith.ExtFOp.OP_NAME,
            arith.TruncFOp.OP_NAME,
            arith.ExtSIOp.OP_NAME,
            arith.TruncIOp.OP_NAME,
        ):
            return self._fold_cast(op)
        if name == "scf.if":
            return self._fold_if(op)
        if name == arith.NegFOp.OP_NAME:
            value = constant_value(op.operand(0))
            if value is not None:
                self._replace_with_constant(op, -value)
                return True
        return False

    # -- folds ------------------------------------------------------------------
    def _replace_with_constant(self, op: Operation, value) -> None:
        builder = Builder.before(op)
        constant = _make_constant(builder, value, op.result.type)
        op.result.replace_all_uses_with(constant)
        op.erase()

    def _fold_binary(self, op: Operation) -> bool:
        lhs = constant_value(op.operand(0))
        rhs = constant_value(op.operand(1))
        semantics = BINARY_SEMANTICS[op.name]
        if lhs is not None and rhs is not None:
            if op.name in ("arith.divsi", "arith.remsi", "arith.divf") and rhs == 0:
                return False  # keep the (undefined) op rather than crash folding
            result = semantics(lhs, rhs)
            if is_integer_op(op.name):
                result = int(result)
            self._replace_with_constant(op, result)
            return True
        # Algebraic identities with one constant operand.
        base_name = op.name.split(".")[-1]
        if rhs is not None:
            if rhs == 0 and base_name in ("addi", "addf", "subi", "subf", "ori", "xori"):
                return self._replace_with_value(op, op.operand(0))
            if rhs == 1 and base_name in ("muli", "mulf", "divsi", "divf", "floordivsi"):
                return self._replace_with_value(op, op.operand(0))
            if rhs == 0 and base_name in ("muli", "andi"):
                self._replace_with_constant(op, 0)
                return True
            if rhs == 0.0 and base_name == "mulf":
                self._replace_with_constant(op, 0.0)
                return True
        if lhs is not None:
            if lhs == 0 and base_name in ("addi", "addf", "ori", "xori"):
                return self._replace_with_value(op, op.operand(1))
            if lhs == 1 and base_name in ("muli", "mulf"):
                return self._replace_with_value(op, op.operand(1))
            if lhs == 0 and base_name in ("muli", "andi"):
                self._replace_with_constant(op, 0)
                return True
        return False

    def _replace_with_value(self, op: Operation, value: Value) -> bool:
        op.result.replace_all_uses_with(value)
        op.erase()
        return True

    def _fold_math(self, op: Operation) -> bool:
        values = [constant_value(operand) for operand in op.operands]
        if any(value is None for value in values):
            return False
        try:
            result = MATH_SEMANTICS[op.name](*[float(value) for value in values])
        except (ValueError, OverflowError):
            return False
        self._replace_with_constant(op, result)
        return True

    def _fold_compare(self, op: Operation) -> bool:
        lhs = constant_value(op.operand(0))
        rhs = constant_value(op.operand(1))
        if lhs is None or rhs is None:
            return False
        predicate = op.attributes["predicate"]
        result = CMP_SEMANTICS[predicate](lhs, rhs)
        self._replace_with_constant(op, 1 if result else 0)
        return True

    def _fold_select(self, op: Operation) -> bool:
        condition = constant_value(op.operand(0))
        if condition is None:
            return False
        chosen = op.operand(1) if condition else op.operand(2)
        return self._replace_with_value(op, chosen)

    def _fold_cast(self, op: Operation) -> bool:
        value = constant_value(op.operand(0))
        if value is None:
            return False
        result_type = op.result.type
        if isinstance(result_type, (IntegerType, IndexType)):
            self._replace_with_constant(op, int(value))
        elif isinstance(result_type, FloatType):
            self._replace_with_constant(op, float(value))
        else:
            return False
        return True

    def _fold_if(self, op: Operation) -> bool:
        condition = constant_value(op.operand(0))
        if condition is None:
            return False
        from ..dialects.scf import IfOp

        assert isinstance(op, IfOp)
        taken = op.then_block if condition else op.else_block
        parent = op.parent_block
        if parent is None:
            return False
        if taken is None:
            # No else region: the whole op disappears (it cannot have results).
            if op.has_used_results():
                return False
            op.erase()
            return True
        # Splice the taken block's ops (except the terminator) before the if.
        yield_op = taken.terminator
        moved = [inner for inner in list(taken.operations) if inner is not yield_op]
        for inner in moved:
            taken.remove(inner)
            parent.insert_before(op, inner)
        if yield_op is not None:
            for result, operand in zip(op.results, yield_op.operands):
                result.replace_all_uses_with(operand)
        op.erase()
        return True
