"""Control-centric passes, the pass manager and the pass registry.

The standard pipelines (``gcc``, ``clang``, ``mlir`` and the MLIR half of
``dcir``) are assembled from these passes; see
:func:`control_centric_pipeline` for the canonical ordering used by the
paper's §4 conversion pipeline.  Passes are also registered by name in
:data:`CONTROL_PASSES` so declarative pipeline specs
(:class:`repro.pipeline.PipelineSpec`) can reference them.
"""

from .canonicalize import Canonicalize, constant_value
from .cse import CommonSubexpressionElimination
from .dce import DeadCodeElimination
from .inlining import Inlining
from .licm import LoopInvariantCodeMotion
from .memref_dce import DeadMemoryElimination
from .pass_manager import Pass, PassManager, PassPipelineReport, PassStatistics
from .registry import CONTROL_PASSES, list_control_passes, register_control_pass
from .scalar_replacement import ScalarReplacement


def control_centric_pipeline(
    include_memref_dce: bool = True, max_iterations: int = 3
) -> PassManager:
    """The control-centric pass suite of §4: inlining, canonicalization,
    scalar replacement, CSE, LICM and DCE, iterated to a fixed point."""
    passes = [
        Inlining(),
        Canonicalize(),
        ScalarReplacement(),
        CommonSubexpressionElimination(),
        LoopInvariantCodeMotion(),
        DeadCodeElimination(),
    ]
    if include_memref_dce:
        passes.append(DeadMemoryElimination())
    return PassManager(passes, max_iterations=max_iterations)


__all__ = [
    "CONTROL_PASSES",
    "Canonicalize",
    "CommonSubexpressionElimination",
    "DeadCodeElimination",
    "DeadMemoryElimination",
    "Inlining",
    "LoopInvariantCodeMotion",
    "Pass",
    "PassManager",
    "PassPipelineReport",
    "PassStatistics",
    "ScalarReplacement",
    "constant_value",
    "control_centric_pipeline",
    "list_control_passes",
    "register_control_pass",
]
