"""Dead scalar-memory elimination on the control-centric side.

Removes ``memref.alloca``/``memref.alloc`` allocations that are never read
— together with the stores and deallocations that target them — modelling
the register-promotion-style cleanups a general-purpose compiler performs.

By default the pass is restricted to *scalar* (single-element) memrefs.
Whole-array dead-memory elimination is deliberately left to the
data-centric side (Dead Dataflow Elimination and Array Elimination, §6.2):
production compilers do not remove the arrays in the paper's Fig. 2
example, and keeping this asymmetry is what reproduces that figure's shape.
"""

from __future__ import annotations

from ..ir.core import Operation
from ..ir.types import MemRefType
from .pass_manager import Pass


def _is_scalar_memref(memref_type: MemRefType) -> bool:
    return memref_type.num_elements() == 1 or memref_type.rank == 0


class DeadMemoryElimination(Pass):
    """Remove never-read (scalar, by default) allocations and their stores."""

    NAME = "memref-dce"

    def __init__(self, scalars_only: bool = True):
        self.scalars_only = scalars_only

    def run_on_module(self, module: Operation) -> bool:
        changed = False
        while self._run_once(module):
            changed = True
        return changed

    def _run_once(self, module: Operation) -> bool:
        changed = False
        for op in list(module.walk()):
            if op.parent_block is None:
                continue
            if op.name not in ("memref.alloc", "memref.alloca"):
                continue
            memref_type = op.result.type
            if not isinstance(memref_type, MemRefType):
                continue
            if self.scalars_only and not _is_scalar_memref(memref_type):
                continue
            users = op.result.users()
            removable = []
            dead = True
            for user in users:
                if user.name == "memref.store" and user.operand(1) is op.result:
                    removable.append(user)
                elif user.name == "memref.dealloc":
                    removable.append(user)
                else:
                    dead = False
                    break
            if not dead:
                continue
            for user in removable:
                user.erase()
            op.erase()
            changed = True
        return changed
