"""Loop-invariant code motion on ``scf.for`` loops.

Hoists operations whose operands are defined outside the loop and whose
execution cannot observe or be observed by the loop body: pure arithmetic
always, and ``memref.load`` when the loaded memref is not written anywhere
inside the loop.  This is the optimization the DaCe C frontend misses on
``syrk`` (Fig. 7) because its tasklets are indivisible — running it on the
MLIR side before conversion is precisely DCIR's point.
"""

from __future__ import annotations

from typing import Set

from ..ir.core import Operation, Value
from ..dialects.scf import ForOp
from .pass_manager import Pass


def _written_memrefs(loop: Operation) -> Set[int]:
    """ids of memref values that may be written inside ``loop``."""
    written: Set[int] = set()
    for op in loop.walk():
        if op is loop:
            continue
        if op.name == "memref.store":
            written.add(id(op.operand(1)))
        elif op.name == "memref.copy":
            written.add(id(op.operand(1)))
        elif op.name in ("memref.dealloc", "func.call"):
            # Conservative: unknown writes invalidate everything.
            return {-1}
        elif op.name == "sdfg.store":
            written.add(id(op.operand(1)))
    return written


def _values_defined_inside(loop: ForOp) -> Set[int]:
    inside: Set[int] = set()
    for block in loop.regions[0].blocks:
        inside.update(id(argument) for argument in block.arguments)
    for op in loop.walk():
        if op is loop:
            continue
        inside.update(id(result) for result in op.results)
        for region in op.regions:
            for block in region.blocks:
                inside.update(id(argument) for argument in block.arguments)
    return inside


class LoopInvariantCodeMotion(Pass):
    """Hoist loop-invariant pure ops and safe loads out of scf.for loops."""

    NAME = "licm"

    def run_on_module(self, module: Operation) -> bool:
        changed = False
        # Innermost loops first (post-order) so invariants bubble outwards.
        loops = [op for op in module.walk(post_order=True) if isinstance(op, ForOp)]
        for loop in loops:
            if loop.parent_block is None:
                continue
            while self._hoist_once(loop):
                changed = True
        return changed

    def _hoist_once(self, loop: ForOp) -> bool:
        inside = _values_defined_inside(loop)
        written = _written_memrefs(loop)
        everything_clobbered = -1 in written
        changed = False
        for op in list(loop.body.operations):
            if op.IS_TERMINATOR or op.regions:
                continue
            if any(id(operand) in inside for operand in op.operands):
                continue
            if op.is_pure():
                pass  # always hoistable
            elif op.READS_MEMORY and not op.HAS_SIDE_EFFECTS and not op.IS_ALLOCATION:
                if everything_clobbered:
                    continue
                memref_operand = op.operand(0)
                if id(memref_operand) in written:
                    continue
            else:
                continue
            op.move_before(loop)
            changed = True
        return changed
