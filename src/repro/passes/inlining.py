"""Function inlining.

Inlines ``func.call`` sites whose callee is defined in the same module,
has a single block, and ends with ``func.return``.  Inlining is part of the
control-centric pass suite DCIR applies before conversion (§4); it also
removes the reliance on link-time optimization that the paper identifies
as a weakness of compiling MLIR tasklets separately (§5.2).
"""

from __future__ import annotations

from typing import Optional

from ..dialects.builtin import ModuleOp
from ..dialects.func import CallOp, FuncOp
from ..ir.core import Operation
from .pass_manager import Pass


def _find_callee(module: Operation, name: str) -> Optional[FuncOp]:
    for op in module.walk():
        if isinstance(op, FuncOp) and op.sym_name == name:
            return op
    return None


def _is_inlinable(callee: FuncOp, max_ops: int) -> bool:
    if len(callee.regions[0].blocks) != 1:
        return False
    body = callee.body
    terminator = body.terminator
    if terminator is None or terminator.name != "func.return":
        return False
    # Recursive functions are not inlined.
    for op in callee.walk():
        if isinstance(op, CallOp) and op.callee == callee.sym_name:
            return False
    return len(body.operations) <= max_ops


class Inlining(Pass):
    """Inline small, single-block, non-recursive callees."""

    NAME = "inline"

    def __init__(self, max_callee_ops: int = 256, remove_inlined: bool = True):
        self.max_callee_ops = max_callee_ops
        self.remove_inlined = remove_inlined

    def run_on_module(self, module: Operation) -> bool:
        changed = False
        inlined_callees = set()
        for _ in range(8):  # bounded rounds handle call chains
            round_changed = False
            for op in list(module.walk()):
                if not isinstance(op, CallOp) or op.parent_block is None:
                    continue
                callee = _find_callee(module, op.callee)
                if callee is None or not _is_inlinable(callee, self.max_callee_ops):
                    continue
                self._inline_call(op, callee)
                inlined_callees.add(callee.sym_name)
                round_changed = True
            if not round_changed:
                break
            changed = True
        if changed and self.remove_inlined:
            self._remove_unused_callees(module, inlined_callees)
        return changed

    def _inline_call(self, call: CallOp, callee: FuncOp) -> None:
        parent = call.parent_block
        value_map = {}
        for argument, operand in zip(callee.body.arguments, call.operands):
            value_map[argument] = operand
        return_values = []
        for op in callee.body.operations:
            if op.name == "func.return":
                return_values = [value_map.get(v, v) for v in op.operands]
                continue
            clone = op.clone(value_map)
            parent.insert_before(call, clone)
        for result, value in zip(call.results, return_values):
            result.replace_all_uses_with(value)
        call.erase()

    def _remove_unused_callees(self, module: Operation, names: set) -> None:
        # Keep callees that are still called elsewhere or externally visible.
        still_called = set()
        for op in module.walk():
            if isinstance(op, CallOp):
                still_called.add(op.callee)
        for op in list(module.walk()):
            if (
                isinstance(op, FuncOp)
                and op.sym_name in names
                and op.sym_name not in still_called
                and op.get_attr("visibility") == "private"
            ):
                op.erase()
