"""Pass infrastructure for the MLIR-like IR.

A thin layer over the unified infrastructure in :mod:`repro.passbase`:
:class:`Pass` keeps the MLIR-flavoured ``run_on_module`` hook name and
:class:`PassManager` the ``verify_each`` convenience, while the report
types are the shared ones (``PassPipelineReport``/``PassStatistics`` are
aliases of :class:`~repro.passbase.StageReport`/
:class:`~repro.passbase.PassRecord`).
"""

from __future__ import annotations

from typing import Sequence

from ..ir.core import Operation
from ..ir.verifier import verify
from ..passbase import PassBase, PassRecord, PassRunner, StageReport

#: Backwards-compatible aliases for the historical control-centric names.
PassStatistics = PassRecord
PassPipelineReport = StageReport


class Pass(PassBase):
    """Base class for control-centric IR passes."""

    def run(self, target: Operation) -> bool:
        return self.run_on_module(target)

    def run_on_module(self, module: Operation) -> bool:
        """Transform ``module`` in place; return True if anything changed."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Pass {self.name}>"


class PassManager(PassRunner):
    """Runs an ordered sequence of passes over a module."""

    def __init__(
        self,
        passes: Sequence[Pass],
        verify_each: bool = False,
        max_iterations: int = 1,
    ):
        super().__init__(
            passes,
            max_iterations=max_iterations,
            validate=verify if verify_each else None,
            stage="control",
        )

    @property
    def verify_each(self) -> bool:
        return self.validate is not None
