"""Pass infrastructure for the MLIR-like IR.

Mirrors MLIR's homogenized pass infrastructure at a small scale: passes are
objects with a ``run_on_module`` method returning whether they changed the
IR, and a :class:`PassManager` runs an ordered list of them, optionally
repeating until a fixed point, while recording per-pass statistics that the
compile-time benchmark (§7.2) reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..ir.core import Operation
from ..ir.verifier import verify


class Pass:
    """Base class for IR passes."""

    #: Human-readable pass name (defaults to the class name).
    NAME: Optional[str] = None

    @property
    def name(self) -> str:
        return self.NAME or type(self).__name__

    def run_on_module(self, module: Operation) -> bool:
        """Transform ``module`` in place; return True if anything changed."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Pass {self.name}>"


@dataclass
class PassStatistics:
    """Execution record of a single pass invocation."""

    name: str
    changed: bool
    seconds: float


@dataclass
class PassPipelineReport:
    """Aggregated result of running a pass pipeline."""

    statistics: List[PassStatistics] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(stat.seconds for stat in self.statistics)

    @property
    def changed(self) -> bool:
        return any(stat.changed for stat in self.statistics)

    def by_pass(self) -> Dict[str, float]:
        """Total seconds spent per pass name."""
        totals: Dict[str, float] = {}
        for stat in self.statistics:
            totals[stat.name] = totals.get(stat.name, 0.0) + stat.seconds
        return totals

    def summary(self) -> str:
        lines = [f"{stat.name:<30} changed={stat.changed} {stat.seconds * 1e3:8.2f} ms"
                 for stat in self.statistics]
        lines.append(f"{'total':<30} {'':14} {self.total_seconds * 1e3:8.2f} ms")
        return "\n".join(lines)


class PassManager:
    """Runs an ordered sequence of passes over a module."""

    def __init__(
        self,
        passes: Sequence[Pass],
        verify_each: bool = False,
        max_iterations: int = 1,
    ):
        self.passes = list(passes)
        self.verify_each = verify_each
        self.max_iterations = max(1, max_iterations)

    def add(self, pass_obj: Pass) -> "PassManager":
        self.passes.append(pass_obj)
        return self

    def run(self, module: Operation) -> PassPipelineReport:
        report = PassPipelineReport()
        for _ in range(self.max_iterations):
            iteration_changed = False
            for pass_obj in self.passes:
                start = time.perf_counter()
                changed = bool(pass_obj.run_on_module(module))
                elapsed = time.perf_counter() - start
                report.statistics.append(PassStatistics(pass_obj.name, changed, elapsed))
                iteration_changed = iteration_changed or changed
                if self.verify_each:
                    verify(module)
            if not iteration_changed:
                break
        return report
