"""Dead code elimination on the MLIR-like IR.

Removes operations whose results are unused and that have no observable
side effects — including whole ``scf.for`` / ``scf.if`` nests whose bodies
are pure.  One of the "suite of typical control-centric passes" DCIR
applies before conversion (§4).
"""

from __future__ import annotations

from ..ir.core import Operation
from .pass_manager import Pass


def _is_trivially_dead(op: Operation) -> bool:
    if op.IS_TERMINATOR:
        return False
    if op.has_used_results():
        return False
    if op.name in ("func.func", "builtin.module", "sdfg.sdfg", "sdfg.state", "sdfg.edge"):
        return False
    # Allocations with no remaining uses are dead (nothing can observe them);
    # other side-effecting ops (stores, calls, deallocs) must stay.
    if op.IS_ALLOCATION and not op.has_used_results():
        return True
    if op.has_side_effects():
        return False
    return True


class DeadCodeElimination(Pass):
    """Iteratively erase unused, effect-free operations."""

    NAME = "dce"

    def run_on_module(self, module: Operation) -> bool:
        changed_any = False
        while True:
            changed = False
            for op in list(module.walk(post_order=True)):
                if op is module or op.parent_block is None:
                    continue
                if _is_trivially_dead(op):
                    op.erase()
                    changed = True
            if not changed:
                break
            changed_any = True
        return changed_any
