"""Name-keyed registry of control-centric passes.

Declarative pipeline specs (:class:`repro.pipeline.PipelineSpec`) reference
control-centric passes by these names; :func:`repro.pipeline.registry`'s
pre-registered paper pipelines and any user-defined spec resolve through
this registry.  Registering a new pass makes it immediately usable in
specs — no library internals need editing (the point of the redesign).
"""

from __future__ import annotations

from ..passbase import PassRegistry
from .canonicalize import Canonicalize
from .cse import CommonSubexpressionElimination
from .dce import DeadCodeElimination
from .inlining import Inlining
from .licm import LoopInvariantCodeMotion
from .memref_dce import DeadMemoryElimination
from .scalar_replacement import ScalarReplacement

#: The control-centric (MLIR-side) pass registry.
CONTROL_PASSES = PassRegistry("control-centric")

for _cls in (
    Inlining,
    Canonicalize,
    ScalarReplacement,
    CommonSubexpressionElimination,
    LoopInvariantCodeMotion,
    DeadCodeElimination,
    DeadMemoryElimination,
):
    CONTROL_PASSES.register(_cls)


def register_control_pass(cls=None, *, name=None, overwrite=False):
    """Register a control-centric pass class (usable as a decorator)."""
    return CONTROL_PASSES.register(cls, name=name, overwrite=overwrite)


def list_control_passes():
    """Names of all registered control-centric passes."""
    return CONTROL_PASSES.names()
