"""Raising MLIR tasklet bodies to Python tasklets (§5.2).

MLIR tasklets would otherwise be compiled as separate translation units
and only optimized via LTO; raising them to Python (DaCe-native) tasklets
inlines them during compilation and enables data-centric analyses.  The
raiser converts each operation in a tasklet body into an equivalent Python
expression: ``arith.addi %a, %b`` → ``a + b``, ``math.exp`` → ``math.exp``,
``sdfg.sym_value`` → the symbolic expression, and ``sdfg.return`` →
assignments to the output connectors.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..dialects.arith import (
    BINARY_PYTHON_OPERATORS,
    CMP_PYTHON_OPERATORS,
    ConstantOp,
)
from ..dialects.math_dialect import MATH_PYTHON_FUNCTIONS
from ..dialects.sdfg_dialect import TaskletOp
from ..ir.core import Operation, Value


class RaiseError(Exception):
    """Raised when a tasklet body cannot be raised to Python."""


def _render_operand(value: Value, expressions: Dict[Value, str]) -> str:
    if value in expressions:
        return expressions[value]
    raise RaiseError("Tasklet body references a value with no rendered expression")


def raise_tasklet(tasklet: TaskletOp) -> Tuple[str, List[str], List[str], str]:
    """Raise a tasklet op to Python code.

    Returns ``(code, input_names, output_names, language)``.  Code-form
    tasklets pass through unchanged; MLIR-body tasklets are converted
    operation by operation.
    """
    if tasklet.code is not None:
        input_names = list(tasklet.get_attr("input_names", []))
        outputs = [f"_out{i}" if len(tasklet.results) > 1 else "_out"
                   for i in range(len(tasklet.results))]
        return tasklet.code, input_names, outputs, tasklet.get_attr("language", "python")

    expressions: Dict[Value, str] = {}
    input_names: List[str] = []
    for index, argument in enumerate(tasklet.body.arguments):
        name = argument.name_hint or f"_in{index}"
        expressions[argument] = name
        input_names.append(name)

    statements: List[str] = []
    output_names: List[str] = []
    for op in tasklet.body.operations:
        name = op.name
        if name == "sdfg.return":
            for position, operand in enumerate(op.operands):
                out_name = "_out" if len(op.operands) == 1 else f"_out{position}"
                statements.append(f"{out_name} = {_render_operand(operand, expressions)}")
                output_names.append(out_name)
            continue
        rendered = _render_op(op, expressions)
        if rendered is None:
            # Unknown operation inside the body: fall back to MLIR language.
            from ..ir.printer import print_operation

            return print_operation(tasklet), input_names, ["_out"], "mlir"
        expressions[op.results[0]] = rendered

    code = "\n".join(statements) if statements else "pass"
    return code, input_names, output_names, "python"


def _render_op(op: Operation, expressions: Dict[Value, str]) -> Optional[str]:
    name = op.name
    if isinstance(op, ConstantOp) or name == "arith.constant":
        value = op.attributes["value"]
        return repr(value)
    if name == "sdfg.sym_value":
        text = op.attributes["expr"]
        return "(" + text.replace("Min(", "min(").replace("Max(", "max(") + ")"
    if name in BINARY_PYTHON_OPERATORS:
        lhs = _render_operand(op.operand(0), expressions)
        rhs = _render_operand(op.operand(1), expressions)
        return f"({lhs} {BINARY_PYTHON_OPERATORS[name]} {rhs})"
    if name in ("arith.minsi", "arith.minf"):
        return f"min({_render_operand(op.operand(0), expressions)}, {_render_operand(op.operand(1), expressions)})"
    if name in ("arith.maxsi", "arith.maxf"):
        return f"max({_render_operand(op.operand(0), expressions)}, {_render_operand(op.operand(1), expressions)})"
    if name in ("arith.cmpi", "arith.cmpf"):
        predicate = CMP_PYTHON_OPERATORS[op.attributes["predicate"]]
        lhs = _render_operand(op.operand(0), expressions)
        rhs = _render_operand(op.operand(1), expressions)
        return f"({lhs} {predicate} {rhs})"
    if name == "arith.select":
        condition = _render_operand(op.operand(0), expressions)
        true_value = _render_operand(op.operand(1), expressions)
        false_value = _render_operand(op.operand(2), expressions)
        return f"({true_value} if {condition} else {false_value})"
    if name == "arith.negf":
        return f"(-{_render_operand(op.operand(0), expressions)})"
    if name in MATH_PYTHON_FUNCTIONS:
        arguments = ", ".join(_render_operand(operand, expressions) for operand in op.operands)
        return f"{MATH_PYTHON_FUNCTIONS[name]}({arguments})"
    if name == "arith.sitofp":
        return f"float({_render_operand(op.operand(0), expressions)})"
    if name == "arith.fptosi":
        return f"int({_render_operand(op.operand(0), expressions)})"
    if name in ("arith.index_cast", "arith.extsi", "arith.trunci"):
        return f"int({_render_operand(op.operand(0), expressions)})"
    if name in ("arith.extf", "arith.truncf"):
        return f"float({_render_operand(op.operand(0), expressions)})"
    if name in ("arith.andi", "arith.ori", "arith.xori"):
        operator = {"arith.andi": "&", "arith.ori": "|", "arith.xori": "^"}[name]
        lhs = _render_operand(op.operand(0), expressions)
        rhs = _render_operand(op.operand(1), expressions)
        return f"({lhs} {operator} {rhs})"
    return None
