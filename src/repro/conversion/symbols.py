"""Symbolic evaluation of MLIR SSA values during conversion (§3.1, §5.1).

The converter tracks, for every SSA value it can, an equivalent symbolic
expression over SDFG symbols: constants, loop induction variables (which
become symbols when structured control flow is lowered to the state
machine), and integer arithmetic over those.  Memlet subsets, loop bounds
and state-transition conditions are then parametric — which is exactly the
visibility data-centric optimizations require (§1).

Values that cannot be represented symbolically (loads from memory,
floating-point math) are routed through scalar data containers instead,
and the scalar-to-symbol promotion pass (§6.1) may still lift them later.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..dialects import arith
from ..ir.core import Operation, Value, defining_op
from ..ir.types import FloatType, IndexType, IntegerType
from ..symbolic import (
    Compare,
    Expr,
    FloorDiv,
    Integer,
    Max,
    Min,
    Mod,
    Not,
    Float,
)

#: Integer arith ops with a direct symbolic counterpart.
_SYMBOLIC_BINARY = {
    "arith.addi": lambda a, b: a + b,
    "arith.subi": lambda a, b: a - b,
    "arith.muli": lambda a, b: a * b,
    "arith.divsi": lambda a, b: FloorDiv.make(a, b),
    "arith.floordivsi": lambda a, b: FloorDiv.make(a, b),
    "arith.remsi": lambda a, b: Mod.make(a, b),
    "arith.minsi": lambda a, b: Min.make(a, b),
    "arith.maxsi": lambda a, b: Max.make(a, b),
}

_SYMBOLIC_CMP = {
    "eq": "==",
    "ne": "!=",
    "slt": "<",
    "sle": "<=",
    "sgt": ">",
    "sge": ">=",
    "ult": "<",
    "ule": "<=",
    "ugt": ">",
    "uge": ">=",
}

_IDENTITY_CASTS = (
    "arith.index_cast",
    "arith.extsi",
    "arith.trunci",
)


class SymbolicEvaluator:
    """Maps SSA values to symbolic expressions where possible."""

    def __init__(self):
        self._table: Dict[Value, Expr] = {}

    def bind(self, value: Value, expression: Expr) -> None:
        self._table[value] = expression

    def get(self, value: Value) -> Optional[Expr]:
        """The symbolic expression of ``value``, deriving it on demand."""
        if value in self._table:
            return self._table[value]
        expression = self._derive(value)
        if expression is not None:
            self._table[value] = expression
        return expression

    def all_symbolic(self, values) -> bool:
        return all(self.get(value) is not None for value in values)

    # -- derivation -------------------------------------------------------------
    def _derive(self, value: Value) -> Optional[Expr]:
        op = defining_op(value)
        if op is None:
            return None
        name = op.name
        if name == "arith.constant":
            constant = op.attributes["value"]
            if isinstance(value.type, (IntegerType, IndexType)):
                return Integer(int(constant))
            return Float(float(constant))
        if name in _IDENTITY_CASTS:
            return self.get(op.operand(0))
        if name in _SYMBOLIC_BINARY:
            lhs = self.get(op.operand(0))
            rhs = self.get(op.operand(1))
            if lhs is None or rhs is None:
                return None
            if name in ("arith.divsi", "arith.remsi", "arith.floordivsi"):
                if not (rhs.is_constant() and rhs.evaluate({}) != 0):
                    # Avoid symbolic division by possibly-zero expressions.
                    if not rhs.free_symbols():
                        return None
            return _SYMBOLIC_BINARY[name](lhs, rhs)
        if name == "arith.cmpi":
            lhs = self.get(op.operand(0))
            rhs = self.get(op.operand(1))
            if lhs is None or rhs is None:
                return None
            return Compare.make(_SYMBOLIC_CMP[op.attributes["predicate"]], lhs, rhs)
        if name == "arith.select":
            # Selects are handled as tasklets; no symbolic form.
            return None
        if name == "arith.xori":
            # i1 negation idiom: xor with constant 1.
            rhs_expr = self.get(op.operand(1))
            lhs_expr = self.get(op.operand(0))
            if rhs_expr == Integer(1) and lhs_expr is not None:
                return Not.make(lhs_expr)
            return None
        if name in ("arith.andi", "arith.ori"):
            lhs = self.get(op.operand(0))
            rhs = self.get(op.operand(1))
            if lhs is None or rhs is None:
                return None
            from ..symbolic import And, Or

            if isinstance(value.type, IntegerType) and value.type.width == 1:
                return And.make(lhs, rhs) if name == "arith.andi" else Or.make(lhs, rhs)
            return None
        return None
