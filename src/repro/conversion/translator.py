"""Translator: ``sdfg`` dialect → SDFG IR (§5.2 of the paper).

Translation happens in two passes, exactly as described in the paper:
the first pass collects symbol, container and state metadata; the second
pass creates the graph — states with access nodes, tasklets and memlets,
and interstate edges with symbolic conditions and assignments.  Tasklet
bodies are raised from MLIR to Python on the way (``raise_tasklets``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..dialects.builtin import ModuleOp
from ..dialects.sdfg_dialect import (
    EdgeOp,
    MapOp,
    SdfgAllocOp,
    SdfgArrayType,
    SdfgCopyOp,
    SdfgLoadOp,
    SdfgStoreOp,
    SDFGOp,
    StateOp,
    TaskletOp,
)
from ..ir.core import Operation, Value
from ..sdfg import SDFG, AccessNode, InterstateEdge, Memlet, SDFGState, Tasklet
from ..sdfg.data import mlir_type_to_dtype
from ..symbolic import Integer, Subset, parse_expr
from .raise_tasklets import raise_tasklet


class TranslationError(Exception):
    """Raised when a dialect construct cannot be translated to the SDFG IR."""


class SDFGTranslator:
    """Translates one ``sdfg.sdfg`` operation into an :class:`SDFG`."""

    def __init__(self, sdfg_op: SDFGOp):
        self.sdfg_op = sdfg_op
        self.sdfg = SDFG(sdfg_op.sym_name)
        #: SSA value (block argument or alloc result) → container name.
        self.container_names: Dict[Value, str] = {}
        self.states: Dict[str, SDFGState] = {}

    # -- pass 1: metadata -------------------------------------------------------
    def collect_metadata(self) -> None:
        for name in self.sdfg_op.symbols:
            self.sdfg.add_symbol(name)

        for argument in self.sdfg_op.body.arguments:
            name = argument.name_hint or f"arg{argument.arg_index}"
            array_type = argument.type
            if not isinstance(array_type, SdfgArrayType):
                raise TranslationError(f"SDFG argument {name!r} has non-array type {array_type}")
            self._add_container(name, array_type, transient=False)
            self.container_names[argument] = name

        for op in self.sdfg_op.body.operations:
            if isinstance(op, SdfgAllocOp):
                name = op.container_name
                transient = op.get_attr("transient", True)
                if name in self.sdfg_op.get_attr("result_args", []):
                    transient = False
                self._add_container(
                    name,
                    op.array_type,
                    transient=transient,
                    on_stack=op.get_attr("on_stack", False),
                )
                self.container_names[op.result] = name

        self.sdfg.return_values = list(self.sdfg_op.get_attr("result_args", []))

        first = True
        for op in self.sdfg_op.body.operations:
            if isinstance(op, StateOp):
                state = self.sdfg.add_state(op.sym_name, is_start_state=first)
                first = False
                self.states[op.sym_name] = state

    def _add_container(
        self, name: str, array_type: SdfgArrayType, transient: bool, on_stack: bool = False
    ) -> None:
        dtype = mlir_type_to_dtype(array_type.element_type)
        if array_type.rank == 0:
            self.sdfg.add_scalar(name, dtype, transient=transient)
        else:
            storage = "stack" if on_stack else "heap"
            self.sdfg.add_array(
                name, list(array_type.shape), dtype, transient=transient, storage=storage
            )

    # -- pass 2: graph ------------------------------------------------------------
    def build_graph(self) -> None:
        for op in self.sdfg_op.body.operations:
            if isinstance(op, StateOp):
                self._translate_state(op)
            elif isinstance(op, EdgeOp):
                self._translate_edge(op)

    def _translate_edge(self, op: EdgeOp) -> None:
        src = self.states.get(op.src)
        dst = self.states.get(op.dst)
        if src is None or dst is None:
            raise TranslationError(f"Edge references unknown state {op.src!r} or {op.dst!r}")
        condition = parse_expr(op.condition) if op.condition not in ("", "1") else None
        assignments = {name: parse_expr(value) for name, value in op.assignments.items()}
        self.sdfg.add_edge(src, dst, InterstateEdge(condition, assignments))

    def _translate_state(self, state_op: StateOp) -> None:
        state = self.states[state_op.sym_name]
        # Latest access node per container (SSA-like within the state).
        current_node: Dict[str, AccessNode] = {}
        # Provenance of SSA values defined inside the state.
        provenance: Dict[Value, Tuple] = {}

        def read_node(data: str) -> AccessNode:
            node = current_node.get(data)
            if node is None:
                node = state.add_access(data)
                current_node[data] = node
            return node

        def write_node(data: str) -> AccessNode:
            node = state.add_access(data)
            current_node[data] = node
            return node

        def scalar_memlet(data: str, subset: Optional[Subset], wcr: Optional[str] = None) -> Memlet:
            memlet = Memlet(data=data, subset=subset, wcr=wcr)
            if subset is None:
                memlet.volume = Integer(1)
            return memlet

        for op in state_op.body.operations:
            if isinstance(op, SdfgLoadOp):
                data = self._container_of(op.operand(0))
                subset = self._subset_of(op)
                provenance[op.result] = ("read", data, subset)
            elif isinstance(op, TaskletOp):
                self._translate_tasklet(
                    state, op, provenance, read_node, write_node, scalar_memlet
                )
            elif isinstance(op, SdfgStoreOp):
                self._translate_store(
                    state, op, provenance, read_node, write_node, scalar_memlet
                )
            elif isinstance(op, SdfgCopyOp):
                source = self._container_of(op.operand(0))
                destination = self._container_of(op.operand(1))
                shape = self.sdfg.arrays[destination].shape
                memlet = Memlet(data=destination, subset=Subset.full(shape) if shape else None)
                state.add_edge(read_node(source), None, write_node(destination), None, memlet)
            elif isinstance(op, MapOp):
                raise TranslationError(
                    "sdfg.map translation is not implemented; parallel maps are created by "
                    "the LoopToMap data-centric transformation instead"
                )
            else:
                raise TranslationError(f"Unsupported op {op.name!r} inside sdfg.state")

    def _translate_tasklet(
        self, state, op: TaskletOp, provenance, read_node, write_node, scalar_memlet
    ) -> None:
        code, input_names, output_names, language = raise_tasklet(op)
        if not output_names and op.results:
            output_names = ["_out"] if len(op.results) == 1 else [
                f"_out{i}" for i in range(len(op.results))
            ]
        tasklet = state.add_tasklet(op.sym_name, [], [], code, language=language)

        for operand, in_name in zip(op.operands, input_names):
            self._connect_input(
                state, tasklet, operand, in_name, provenance, read_node, scalar_memlet
            )
        # Extra operands without names (defensive): connect positionally.
        for index, operand in enumerate(op.operands[len(input_names):], len(input_names)):
            self._connect_input(
                state, tasklet, operand, f"_in{index}", provenance, read_node, scalar_memlet
            )

        for result, out_name in zip(op.results, output_names):
            provenance[result] = ("tasklet", tasklet, out_name)

        # Tasklets that mutate whole containers in place (indirect stores).
        for container in op.get_attr("output_containers", []) or []:
            memlet = Memlet(
                data=container,
                subset=Subset.full(self.sdfg.arrays[container].shape)
                if self.sdfg.arrays[container].shape
                else None,
                dynamic=True,
            )
            state.add_edge(tasklet, None, write_node(container), None, memlet)

    def _connect_input(
        self, state, tasklet: Tasklet, operand: Value, in_name: str, provenance, read_node,
        scalar_memlet,
    ) -> None:
        info = provenance.get(operand)
        if info is not None and info[0] == "read":
            _, data, subset = info
            state.add_edge(read_node(data), None, tasklet, in_name, scalar_memlet(data, subset))
            return
        if info is not None and info[0] == "tasklet":
            _, source_node, out_conn = info
            state.add_edge(source_node, out_conn, tasklet, in_name, Memlet.empty())
            tasklet.add_in_connector(in_name)
            source_node.add_out_connector(out_conn)
            return
        container = self._container_of(operand, allow_missing=True)
        if container is not None:
            descriptor = self.sdfg.arrays[container]
            memlet = Memlet(
                data=container,
                subset=Subset.full(descriptor.shape) if descriptor.shape else None,
                dynamic=True,
            )
            state.add_edge(read_node(container), None, tasklet, in_name, memlet)
            return
        raise TranslationError(
            f"Tasklet {tasklet.label!r} operand has no provenance (connector {in_name!r})"
        )

    def _translate_store(
        self, state, op: SdfgStoreOp, provenance, read_node, write_node, scalar_memlet
    ) -> None:
        data = self._container_of(op.operand(1))
        subset = self._subset_of(op, operand_offset=2)
        wcr = op.wcr
        value = op.operand(0)
        info = provenance.get(value)
        memlet = scalar_memlet(data, subset, wcr)
        if info is not None and info[0] == "tasklet":
            _, source_node, out_conn = info
            state.add_edge(source_node, out_conn, write_node(data), None, memlet)
            return
        if info is not None and info[0] == "read":
            _, src_data, src_subset = info
            # Copy through a pass-through tasklet so both subsets are explicit.
            tasklet = state.add_tasklet("copy", ["_in"], ["_out"], "_out = _in")
            state.add_edge(
                read_node(src_data), None, tasklet, "_in", scalar_memlet(src_data, src_subset)
            )
            state.add_edge(tasklet, "_out", write_node(data), None, memlet)
            return
        container = self._container_of(value, allow_missing=True)
        if container is not None:
            state.add_edge(read_node(container), None, write_node(data), None, memlet)
            return
        raise TranslationError("sdfg.store of a value with no provenance")

    # -- helpers -----------------------------------------------------------------
    def _container_of(self, value: Value, allow_missing: bool = False) -> Optional[str]:
        name = self.container_names.get(value)
        if name is None and not allow_missing:
            raise TranslationError("Reference to an unknown container value")
        return name

    def _subset_of(self, op: Operation, operand_offset: int = 1) -> Optional[Subset]:
        symbolic_indices = op.get_attr("symbolic_indices")
        if symbolic_indices:
            return Subset.from_indices([parse_expr(index) for index in symbolic_indices])
        return None

    # -- entry point ----------------------------------------------------------------
    def translate(self) -> SDFG:
        self.collect_metadata()
        self.build_graph()
        return self.sdfg


def translate_module(module: ModuleOp, function: Optional[str] = None) -> SDFG:
    """Translate the (single) ``sdfg.sdfg`` op of a module into an SDFG."""
    candidates = [
        op
        for op in module.body.operations
        if isinstance(op, SDFGOp) and (function is None or op.sym_name == function)
    ]
    if not candidates:
        raise TranslationError("Module contains no sdfg.sdfg operation to translate")
    if len(candidates) > 1 and function is None:
        raise TranslationError(
            "Module contains multiple sdfg.sdfg operations; specify which to translate"
        )
    return SDFGTranslator(candidates[0]).translate()
