"""The MLIR ↔ SDFG bridge: converter (§5.1) and translator (§5.2)."""

from .raise_tasklets import RaiseError, raise_tasklet
from .symbols import SymbolicEvaluator
from .to_sdfg_dialect import ConversionError, SDFGDialectConverter, convert_to_sdfg_dialect
from .translator import SDFGTranslator, TranslationError, translate_module


def mlir_to_sdfg(module, function=None):
    """Full bridge: MLIR core dialects → sdfg dialect → SDFG IR.

    This is the red/blue hand-off point of the DCIR pipeline (Fig. 4).
    """
    dialect_module = convert_to_sdfg_dialect(module, function=function)
    return translate_module(dialect_module, function=function)


__all__ = [
    "ConversionError",
    "RaiseError",
    "SDFGDialectConverter",
    "SDFGTranslator",
    "SymbolicEvaluator",
    "TranslationError",
    "convert_to_sdfg_dialect",
    "mlir_to_sdfg",
    "raise_tasklet",
    "translate_module",
]
