"""The MLIR ↔ SDFG bridge: converter (§5.1) and translator (§5.2)."""

from .raise_tasklets import RaiseError, raise_tasklet
from .symbols import SymbolicEvaluator
from .to_sdfg_dialect import ConversionError, SDFGDialectConverter, convert_to_sdfg_dialect
from .translator import SDFGTranslator, TranslationError, translate_module


def module_function_names(module):
    """Names of the functions defined by a compiled MLIR module."""
    from ..dialects.func import FuncOp

    return [op.sym_name for op in module.body.operations if isinstance(op, FuncOp)]


def require_function(module, function):
    """Raise a clear ``PipelineError`` when ``function`` is not in ``module``."""
    if function is None:
        return
    names = module_function_names(module)
    if function not in names:
        from ..errors import PipelineError

        raise PipelineError(
            f"Function {function!r} not found in source; "
            f"available functions: {sorted(names)}"
        )


def mlir_to_sdfg(module, function=None):
    """Full bridge: MLIR core dialects → sdfg dialect → SDFG IR.

    This is the red/blue hand-off point of the DCIR pipeline (Fig. 4).
    """
    require_function(module, function)
    dialect_module = convert_to_sdfg_dialect(module, function=function)
    return translate_module(dialect_module, function=function)


__all__ = [
    "ConversionError",
    "RaiseError",
    "SDFGDialectConverter",
    "SDFGTranslator",
    "SymbolicEvaluator",
    "TranslationError",
    "convert_to_sdfg_dialect",
    "mlir_to_sdfg",
    "module_function_names",
    "require_function",
    "raise_tasklet",
    "translate_module",
]
