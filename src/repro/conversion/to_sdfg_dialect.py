"""Converter: MLIR core dialects → ``sdfg`` dialect (§5.1 of the paper).

The converter takes a function in the ``scf``/``arith``/``math``/``memref``
dialects and produces an ``sdfg.sdfg`` operation:

* memory allocation and load/store operations become
  ``sdfg.{alloc, load, store}``,
* arithmetic/mathematical computations (and unknown operations) become
  individual ``sdfg.tasklet`` operations, each placed in its own
  ``sdfg.state`` to retain program-order semantics (fused later by the
  data-centric passes, §6),
* ``scf`` constructs are lowered to state-machine subgraphs
  (``sdfg.state`` + ``sdfg.edge`` with symbolic conditions/assignments),
* every question mark in a ``memref`` size is replaced with a unique
  symbol, preserving the original MLIR semantics, and symbol values are
  propagated forward through references (§5.1, symbol "s_0" in Fig. 5).

SSA values that are not symbolically representable are routed through
scalar data containers — "every SSA value becomes a scalar data
container" (§6.1) — which the scalar-to-symbol promotion pass may later
lift.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..dialects import arith, math_dialect
from ..dialects.builtin import ModuleOp
from ..dialects.func import FuncOp
from ..dialects.sdfg_dialect import (
    EdgeOp,
    MapOp,
    SdfgAllocOp,
    SdfgArrayType,
    SdfgCopyOp,
    SdfgLoadOp,
    SdfgReturnOp,
    SdfgStoreOp,
    SDFGOp,
    StateOp,
    SymbolStore,
    SymValueOp,
    TaskletOp,
)
from ..dialects.scf import ForOp, IfOp, WhileOp
from ..ir.core import Block, Builder, Operation, Value
from ..ir.printer import print_operation
from ..ir.types import DYNAMIC, FloatType, IndexType, IntegerType, MemRefType, Type
from ..symbolic import Expr, Integer, Symbol
from .symbols import SymbolicEvaluator


class ConversionError(Exception):
    """Raised when MLIR code cannot be converted to the sdfg dialect."""


#: Ops handled symbolically when their operands are symbolic.
_SYMBOLIC_CANDIDATES = {
    "arith.constant",
    "arith.addi",
    "arith.subi",
    "arith.muli",
    "arith.divsi",
    "arith.floordivsi",
    "arith.remsi",
    "arith.minsi",
    "arith.maxsi",
    "arith.index_cast",
    "arith.extsi",
    "arith.trunci",
    "arith.cmpi",
}

#: Ops that always become tasklets.
_COMPUTE_OPS = set(arith.BINARY_SEMANTICS) | set(math_dialect.MATH_SEMANTICS) | {
    "arith.cmpi",
    "arith.cmpf",
    "arith.select",
    "arith.negf",
    "arith.sitofp",
    "arith.fptosi",
    "arith.extf",
    "arith.truncf",
    "arith.extsi",
    "arith.trunci",
    "arith.index_cast",
}


class SDFGDialectConverter:
    """Converts one ``func.func`` into one ``sdfg.sdfg`` operation."""

    def __init__(self, module: ModuleOp, func_op: FuncOp):
        self.module = module
        self.func_op = func_op
        self.symbol_store = SymbolStore()
        self.symbolic = SymbolicEvaluator()
        # SSA value (memref or scalar result) → container name.
        self.container_of_value: Dict[Value, str] = {}
        # Container name → SSA value usable as an operand (alloc result / block arg).
        self.container_value: Dict[str, Value] = {}
        self.container_type: Dict[str, SdfgArrayType] = {}
        self.sdfg_op: Optional[SDFGOp] = None
        self.alloc_builder: Optional[Builder] = None
        self.state_builder: Optional[Builder] = None
        self.tail: Optional[str] = None
        self._state_counter = 0
        self._container_counter = 0
        self._symbol_names: List[str] = []

    # ------------------------------------------------------------------ entry
    def convert(self) -> SDFGOp:
        arg_types: List[Type] = []
        arg_names: List[str] = []
        symbolic_args: List[Tuple[Value, str]] = []
        array_args: List[Tuple[Value, SdfgArrayType, str]] = []

        for argument in self.func_op.body.arguments:
            name = argument.name_hint or f"arg{argument.arg_index}"
            if isinstance(argument.type, MemRefType):
                shape: List[Union[int, Expr]] = []
                for dim in argument.type.shape:
                    if dim == DYNAMIC:
                        symbol = self.symbol_store.fresh("s")
                        self._symbol_names.append(symbol.name)
                        shape.append(symbol)
                    else:
                        shape.append(dim)
                array_type = SdfgArrayType(shape, argument.type.element_type)
                array_args.append((argument, array_type, name))
                arg_types.append(array_type)
                arg_names.append(name)
            elif isinstance(argument.type, (IntegerType, IndexType)):
                # Integer scalar parameters become SDFG symbols.
                self.symbol_store.define(name)
                self._symbol_names.append(name)
                symbolic_args.append((argument, name))
            else:
                # Floating-point scalar parameters become external scalars.
                array_type = SdfgArrayType([], argument.type)
                array_args.append((argument, array_type, name))
                arg_types.append(array_type)
                arg_names.append(name)

        sdfg_op = SDFGOp.build(
            self.func_op.sym_name, arg_types, arg_names, symbols=list(self._symbol_names)
        )
        self.sdfg_op = sdfg_op
        body = sdfg_op.body
        self.alloc_builder = Builder.at_start(body)
        self.state_builder = Builder.at_end(body)

        # Bind arguments.
        for (argument, array_type, name), block_arg in zip(
            array_args, [a for a in body.arguments]
        ):
            self.container_of_value[argument] = name
            self.container_value[name] = block_arg
            self.container_type[name] = array_type
        for argument, name in symbolic_args:
            self.symbolic.bind(argument, Symbol(name))

        # Return container.
        results = self.func_op.function_type.results
        if results:
            self._add_container("__return", SdfgArrayType([], results[0]), transient=False)
            sdfg_op.attributes["result_args"] = ["__return"]

        # Initial state.
        init = self._new_state("init")
        self.tail = init.sym_name

        self._convert_block(self.func_op.body)

        sdfg_op.attributes["symbols"] = list(self._symbol_names)
        return sdfg_op

    # ------------------------------------------------------------- state utils
    def _new_state(self, label: str) -> StateOp:
        name = f"{label}_{self._state_counter}"
        self._state_counter += 1
        state = StateOp.build(name)
        self.state_builder.insert(state)
        return state

    def _link(
        self,
        src: str,
        dst: str,
        condition: str = "1",
        assignments: Optional[Dict[str, str]] = None,
    ) -> None:
        edge = EdgeOp.build(src, dst, condition, assignments)
        self.state_builder.insert(edge)

    def _append_state(self, label: str) -> StateOp:
        state = self._new_state(label)
        self._link(self.tail, state.sym_name)
        self.tail = state.sym_name
        return state

    # -------------------------------------------------------------- containers
    def _add_container(
        self, name: str, array_type: SdfgArrayType, transient: bool = True
    ) -> str:
        alloc = SdfgAllocOp.build(array_type, name, transient=transient)
        self.alloc_builder.insert(alloc)
        self.container_value[name] = alloc.result
        self.container_type[name] = array_type
        return name

    def _fresh_container(
        self, prefix: str, element_type: Type, shape: Sequence = ()
    ) -> str:
        name = f"{prefix}_{self._container_counter}"
        self._container_counter += 1
        while name in self.container_value:
            name = f"{prefix}_{self._container_counter}"
            self._container_counter += 1
        return self._add_container(name, SdfgArrayType(list(shape), element_type))

    # --------------------------------------------------------------- operands
    def _edge_expr(self, value: Value) -> str:
        """Expression usable on an interstate edge: a symbolic expression or
        the name of the scalar container holding the value."""
        expression = self.symbolic.get(value)
        if expression is not None:
            return str(expression)
        container = self.container_of_value.get(value)
        if container is not None:
            return container
        raise ConversionError(
            f"Value produced by {value.owner.name if hasattr(value.owner, 'name') else value} "
            "has no symbolic or container representation"
        )

    def _scalar_source(self, builder: Builder, value: Value) -> Value:
        """SSA value holding ``value`` inside the current state: either a
        fresh ``sdfg.load`` of its scalar container, or a literal tasklet for
        symbolic expressions."""
        container = self.container_of_value.get(value)
        if container is not None:
            load = builder.create(SdfgLoadOp, self.container_value[container], [])
            return load.result
        expression = self.symbolic.get(value)
        if expression is not None:
            tasklet = builder.create(
                TaskletOp.build_with_code,
                "sym_literal",
                [],
                [],
                [value.type],
                f"_out = {_python_expr(expression)}",
            )
            return tasklet.results[0]
        raise ConversionError("Operand is neither symbolic nor stored in a container")

    # ----------------------------------------------------------------- dispatch
    def _convert_block(self, block: Block) -> None:
        for op in list(block.operations):
            name = op.name
            if name in ("scf.yield", "scf.condition"):
                continue
            if name == "func.return":
                self._convert_return(op)
                continue
            if name in _SYMBOLIC_CANDIDATES and self.symbolic.get(
                op.results[0] if op.results else None
            ) is not None:
                continue  # fully symbolic: nothing to materialize
            if name in ("memref.alloc", "memref.alloca"):
                self._convert_alloc(op)
            elif name == "memref.load":
                self._convert_load(op)
            elif name == "memref.store":
                self._convert_store(op)
            elif name == "memref.copy":
                self._convert_copy(op)
            elif name == "memref.dealloc":
                continue  # container lifetime is managed by the SDFG
            elif name == "memref.dim":
                self._convert_dim(op)
            elif name == "scf.for":
                self._convert_for(op)
            elif name == "scf.if":
                self._convert_if(op)
            elif name == "scf.while":
                self._convert_while(op)
            elif name in _COMPUTE_OPS:
                self._convert_compute(op)
            elif name == "func.call":
                raise ConversionError(
                    f"Unexpected call to {op.get_attr('callee')!r}: calls must be inlined "
                    "before conversion (§4)"
                )
            else:
                self._convert_opaque(op)

    # ------------------------------------------------------------ computations
    def _convert_compute(self, op: Operation) -> None:
        if not op.results:
            raise ConversionError(f"Cannot convert result-less op {op.name}")
        state = self._append_state(op.name.split(".")[-1])
        builder = Builder.at_end(state.body)

        tasklet_operands: List[Value] = []
        input_names: List[str] = []
        operand_specs: List[Tuple[str, object]] = []
        for operand in op.operands:
            expression = self.symbolic.get(operand)
            if expression is not None:
                operand_specs.append(("sym", (expression, operand.type)))
            else:
                container = self.container_of_value.get(operand)
                if container is None:
                    raise ConversionError(
                        f"Operand of {op.name} has no representation; conversion order broken"
                    )
                load = builder.create(SdfgLoadOp, self.container_value[container], [])
                operand_specs.append(("arg", len(tasklet_operands)))
                tasklet_operands.append(load.result)
                input_names.append(f"_in{len(input_names)}")

        tasklet = TaskletOp.build(
            op.name.replace(".", "_"),
            tasklet_operands,
            input_names,
            [op.results[0].type],
        )
        builder.insert(tasklet)
        inner_builder = Builder.at_end(tasklet.body)
        inner_operands: List[Value] = []
        for kind, payload in operand_specs:
            if kind == "arg":
                inner_operands.append(tasklet.body.arguments[payload])
            else:
                expression, operand_type = payload
                sym_value = inner_builder.create(SymValueOp, str(expression), operand_type)
                inner_operands.append(sym_value.result)
        value_map = {
            original: new for original, new in zip(op.operands, inner_operands)
        }
        cloned = op.clone(value_map)
        inner_builder.insert(cloned)
        inner_builder.create(SdfgReturnOp, [cloned.results[0]])

        result = op.results[0]
        out_container = self._fresh_container(
            "_" + op.name.split(".")[-1], result.type
        )
        builder.create(
            SdfgStoreOp, tasklet.results[0], self.container_value[out_container], []
        )
        self.container_of_value[result] = out_container

    def _convert_opaque(self, op: Operation) -> None:
        """Keep unsupported MLIR operations as opaque MLIR tasklets (§5.2)."""
        state = self._append_state("mlir_tasklet")
        builder = Builder.at_end(state.body)
        operands: List[Value] = []
        names: List[str] = []
        for index, operand in enumerate(op.operands):
            container = self.container_of_value.get(operand)
            if container is None:
                continue
            load = builder.create(SdfgLoadOp, self.container_value[container], [])
            operands.append(load.result)
            names.append(f"_in{index}")
        tasklet = builder.create(
            TaskletOp.build_with_code,
            "mlir_" + op.name.replace(".", "_"),
            operands,
            names,
            [result.type for result in op.results],
            print_operation(op),
            language="mlir",
        )
        for result, tasklet_result in zip(op.results, tasklet.results):
            container = self._fresh_container("_mlir", result.type)
            builder.create(SdfgStoreOp, tasklet_result, self.container_value[container], [])
            self.container_of_value[result] = container

    # --------------------------------------------------------------- memory ops
    def _convert_alloc(self, op: Operation) -> None:
        memref_type: MemRefType = op.results[0].type
        shape: List[Union[int, Expr]] = []
        dynamic_operands = list(op.operands)
        for dim in memref_type.shape:
            if dim == DYNAMIC:
                size_value = dynamic_operands.pop(0)
                expression = self.symbolic.get(size_value)
                if expression is None:
                    symbol = self.symbol_store.fresh("s")
                    self._symbol_names.append(symbol.name)
                    expression = symbol
                shape.append(expression)
            else:
                shape.append(dim)
        hint = op.results[0].name_hint
        base = hint if hint else "_arr"
        name = f"{base}_{self._container_counter}"
        self._container_counter += 1
        while name in self.container_value:
            name = f"{base}_{self._container_counter}"
            self._container_counter += 1
        array_type = SdfgArrayType(shape, memref_type.element_type)
        self._add_container(name, array_type, transient=True)
        # Stack allocations (allocas) keep that preference as a hint.
        self.container_value[name].owner.attributes["on_stack"] = op.name == "memref.alloca"
        self.container_of_value[op.results[0]] = name

    def _index_info(self, indices: Sequence[Value]) -> Tuple[bool, List[str], List[Value]]:
        """(all_symbolic, symbolic index strings, dynamic SSA index values)."""
        symbolic_indices: List[str] = []
        dynamic_values: List[Value] = []
        all_symbolic = True
        for index in indices:
            expression = self.symbolic.get(index)
            if expression is not None:
                symbolic_indices.append(str(expression))
            else:
                all_symbolic = False
                dynamic_values.append(index)
                symbolic_indices.append("?")
        return all_symbolic, symbolic_indices, dynamic_values

    def _convert_load(self, op: Operation) -> None:
        array = self.container_of_value.get(op.operand(0))
        if array is None:
            raise ConversionError("Load from an unknown memref")
        result = op.results[0]
        state = self._append_state("load")
        builder = Builder.at_end(state.body)
        out_container = self._fresh_container("_load", result.type)
        all_symbolic, symbolic_indices, _ = self._index_info(op.operands[1:])
        if all_symbolic:
            load = builder.create(
                SdfgLoadOp, self.container_value[array], [], symbolic_indices=symbolic_indices
            )
            builder.create(SdfgStoreOp, load.result, self.container_value[out_container], [])
        else:
            # Data-dependent (indirect) access: index inside a tasklet.
            operands = [self.container_value[array]]
            names = ["_array"]
            index_terms: List[str] = []
            for position, index in enumerate(op.operands[1:]):
                expression = self.symbolic.get(index)
                if expression is not None:
                    index_terms.append(f"int({_python_expr(expression)})")
                else:
                    operands.append(self._scalar_source(builder, index))
                    names.append(f"_i{position}")
                    index_terms.append(f"int(_i{position})")
            code = f"_out = _array[{', '.join(index_terms)}]"
            tasklet = builder.create(
                TaskletOp.build_with_code, "indirect_load", operands, names, [result.type], code
            )
            builder.create(
                SdfgStoreOp, tasklet.results[0], self.container_value[out_container], []
            )
        self.container_of_value[result] = out_container

    def _convert_store(self, op: Operation) -> None:
        array = self.container_of_value.get(op.operand(1))
        if array is None:
            raise ConversionError("Store to an unknown memref")
        state = self._append_state("store")
        builder = Builder.at_end(state.body)
        value = self._scalar_source(builder, op.operand(0))
        all_symbolic, symbolic_indices, _ = self._index_info(op.operands[2:])
        if all_symbolic:
            builder.create(
                SdfgStoreOp,
                value,
                self.container_value[array],
                [],
                symbolic_indices=symbolic_indices,
            )
        else:
            operands = [value, self.container_value[array]]
            names = ["_val", "_array"]
            index_terms: List[str] = []
            for position, index in enumerate(op.operands[2:]):
                expression = self.symbolic.get(index)
                if expression is not None:
                    index_terms.append(f"int({_python_expr(expression)})")
                else:
                    operands.append(self._scalar_source(builder, index))
                    names.append(f"_i{position}")
                    index_terms.append(f"int(_i{position})")
            code = f"_array[{', '.join(index_terms)}] = _val"
            builder.create(
                TaskletOp.build_with_code,
                "indirect_store",
                operands,
                names,
                [],
                code,
                output_containers=[array],
            )

    def _convert_copy(self, op: Operation) -> None:
        source = self.container_of_value.get(op.operand(0))
        destination = self.container_of_value.get(op.operand(1))
        if source is None or destination is None:
            raise ConversionError("memref.copy of unknown containers")
        state = self._append_state("copy")
        builder = Builder.at_end(state.body)
        builder.create(
            SdfgCopyOp, self.container_value[source], self.container_value[destination]
        )

    def _convert_dim(self, op: Operation) -> None:
        container = self.container_of_value.get(op.operand(0))
        if container is None:
            raise ConversionError("memref.dim of an unknown memref")
        dim_expr = self.symbolic.get(op.operand(1))
        if dim_expr is None or not dim_expr.is_constant():
            raise ConversionError("memref.dim requires a constant dimension index")
        shape = self.container_type[container].shape
        self.symbolic.bind(op.results[0], shape[dim_expr.as_int()])

    # ----------------------------------------------------------------- control flow
    def _unique_symbol(self, hint: str) -> str:
        name = hint or "i"
        if name in self.symbol_store or name in self.container_value:
            suffix = 0
            while f"{name}_{suffix}" in self.symbol_store:
                suffix += 1
            name = f"{name}_{suffix}"
        self.symbol_store.define(name)
        self._symbol_names.append(name)
        return name

    def _convert_for(self, op: ForOp) -> None:
        if op.iter_args_init:
            raise ConversionError("scf.for with iteration arguments is not supported")
        lower = self._edge_expr(op.lower_bound)
        upper = self._edge_expr(op.upper_bound)
        step = self._edge_expr(op.step)
        induction = self._unique_symbol(op.induction_variable.name_hint or "i")
        self.symbolic.bind(op.induction_variable, Symbol(induction))

        guard = self._new_state(f"guard_{induction}")
        self._link(self.tail, guard.sym_name, "1", {induction: lower})
        body_entry = self._new_state(f"body_{induction}")
        condition = f"{induction} < ({upper})"
        self._link(guard.sym_name, body_entry.sym_name, condition)
        self.tail = body_entry.sym_name
        self._convert_block(op.body)
        self._link(
            self.tail, guard.sym_name, "1", {induction: f"{induction} + ({step})"}
        )
        exit_state = self._new_state(f"endfor_{induction}")
        self._link(guard.sym_name, exit_state.sym_name, f"not ({condition})")
        self.tail = exit_state.sym_name

    def _convert_if(self, op: IfOp) -> None:
        if op.results:
            raise ConversionError("scf.if with results is not supported")
        condition_value = op.condition
        expression = self.symbolic.get(condition_value)
        if expression is not None:
            condition = str(expression)
        else:
            container = self.container_of_value.get(condition_value)
            if container is None:
                raise ConversionError("Branch condition has no representation")
            condition = container
        branch_tail = self.tail

        then_entry = self._new_state("then")
        self._link(branch_tail, then_entry.sym_name, condition)
        self.tail = then_entry.sym_name
        self._convert_block(op.then_block)
        then_exit = self.tail

        merge = self._new_state("ifmerge")
        else_block = op.else_block
        if else_block is not None and len(else_block.operations) > 1:
            else_entry = self._new_state("else")
            self._link(branch_tail, else_entry.sym_name, f"not ({condition})")
            self.tail = else_entry.sym_name
            self._convert_block(else_block)
            self._link(self.tail, merge.sym_name, "1")
        else:
            self._link(branch_tail, merge.sym_name, f"not ({condition})")
        self._link(then_exit, merge.sym_name, "1")
        self.tail = merge.sym_name

    def _convert_while(self, op: WhileOp) -> None:
        if op.operands:
            raise ConversionError("scf.while with loop-carried values is not supported")
        condition_entry = self._new_state("while_cond")
        self._link(self.tail, condition_entry.sym_name, "1")
        self.tail = condition_entry.sym_name
        self._convert_block(op.before_block)
        condition_tail = self.tail
        condition_op = op.before_block.terminator
        condition_expr = self._edge_expr(condition_op.operand(0))

        body_entry = self._new_state("while_body")
        self._link(condition_tail, body_entry.sym_name, condition_expr)
        exit_state = self._new_state("endwhile")
        self._link(condition_tail, exit_state.sym_name, f"not ({condition_expr})")

        self.tail = body_entry.sym_name
        self._convert_block(op.after_block)
        self._link(self.tail, condition_entry.sym_name, "1")
        self.tail = exit_state.sym_name

    def _convert_return(self, op: Operation) -> None:
        if not op.operands:
            return
        state = self._append_state("return")
        builder = Builder.at_end(state.body)
        value = self._scalar_source(builder, op.operand(0))
        builder.create(SdfgStoreOp, value, self.container_value["__return"], [])


def _python_expr(expression: Expr) -> str:
    """Render a symbolic expression as Python source (Min/Max → min/max)."""
    text = str(expression)
    return text.replace("Min(", "min(").replace("Max(", "max(")


def convert_to_sdfg_dialect(module: ModuleOp, function: Optional[str] = None) -> ModuleOp:
    """Convert the functions of ``module`` into ``sdfg.sdfg`` operations.

    Returns a new module containing one ``sdfg.sdfg`` op per converted
    function (other functions are expected to have been inlined away).
    """
    result = ModuleOp.build()
    builder = Builder.at_end(result.body)
    for op in list(module.body.operations):
        if not isinstance(op, FuncOp):
            continue
        if function is not None and op.sym_name != function:
            continue
        converter = SDFGDialectConverter(module, op)
        sdfg_op = converter.convert()
        builder.insert(sdfg_op)
    return result
