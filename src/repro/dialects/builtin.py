"""Builtin dialect: the top-level module operation."""

from __future__ import annotations

from typing import Iterator, Optional

from ..ir.core import Operation, Region, register_operation


@register_operation
class ModuleOp(Operation):
    """Top-level container holding functions (and sdfg.sdfg ops)."""

    OP_NAME = "builtin.module"
    IS_ISOLATED_FROM_ABOVE = True

    @staticmethod
    def build(name: Optional[str] = None) -> "ModuleOp":
        op = ModuleOp(ModuleOp.OP_NAME, regions=1)
        op.regions[0].add_block()
        if name:
            op.attributes["sym_name"] = name
        return op

    @property
    def body(self):
        return self.regions[0].entry_block

    def functions(self) -> Iterator[Operation]:
        """All function-like operations directly inside the module."""
        for op in self.body.operations:
            if op.name in ("func.func", "sdfg.sdfg"):
                yield op

    def lookup(self, symbol_name: str) -> Optional[Operation]:
        """Find a directly nested op by its ``sym_name`` attribute."""
        for op in self.body.operations:
            if op.get_attr("sym_name") == symbol_name:
                return op
        return None

    def print_custom(self, printer, depth: int):
        printer._emit(depth, "module {")
        printer._print_region(self.regions[0], depth)
        printer._emit(depth, "}")
        return True


@register_operation
class UnrealizedConversionCastOp(Operation):
    """Type adaptor used during dialect conversion (mirrors MLIR's op)."""

    OP_NAME = "builtin.unrealized_conversion_cast"

    @staticmethod
    def build(value, result_type) -> "UnrealizedConversionCastOp":
        return UnrealizedConversionCastOp(
            UnrealizedConversionCastOp.OP_NAME, operands=[value], result_types=[result_type]
        )
