"""``scf`` dialect: structured control flow (for, if, while).

Matches the dialect Polygeist emits for C control flow.  ``scf.for`` has a
positive step (the paper points out this limitation in §7.2, footnote 4 —
loops iterating by decrement lose their direction on the way through
Polygeist); the C frontend therefore normalizes downward-counting loops,
reproducing that semantic loss.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..ir.core import Block, Operation, Value, register_operation
from ..ir.types import Type
from ..ir.verifier import VerificationError


@register_operation
class YieldOp(Operation):
    """``scf.yield`` — terminator of scf region bodies."""

    OP_NAME = "scf.yield"
    IS_TERMINATOR = True

    @staticmethod
    def build(values: Sequence[Value] = ()) -> "YieldOp":
        return YieldOp(YieldOp.OP_NAME, operands=list(values))


@register_operation
class ConditionOp(Operation):
    """``scf.condition`` — terminator of the "before" region of scf.while."""

    OP_NAME = "scf.condition"
    IS_TERMINATOR = True

    @staticmethod
    def build(condition: Value, forwarded: Sequence[Value] = ()) -> "ConditionOp":
        return ConditionOp(ConditionOp.OP_NAME, operands=[condition, *forwarded])

    @property
    def condition(self) -> Value:
        return self.operand(0)

    @property
    def forwarded(self) -> Sequence[Value]:
        return self.operands[1:]


@register_operation
class ForOp(Operation):
    """``scf.for`` — counted loop with optional loop-carried values.

    Operands: ``[lower_bound, upper_bound, step, *initial_iter_args]``.
    The body block receives ``[induction_variable, *iter_args]`` and must
    terminate with ``scf.yield`` of the next iteration's values.
    """

    OP_NAME = "scf.for"
    REQUIRES_TERMINATOR = True

    @staticmethod
    def build(
        lower_bound: Value,
        upper_bound: Value,
        step: Value,
        iter_args: Sequence[Value] = (),
        induction_name: Optional[str] = None,
    ) -> "ForOp":
        op = ForOp(
            ForOp.OP_NAME,
            operands=[lower_bound, upper_bound, step, *iter_args],
            result_types=[value.type for value in iter_args],
            regions=1,
        )
        block = op.regions[0].add_block([lower_bound.type] + [value.type for value in iter_args])
        block.arguments[0].name_hint = induction_name or "i"
        return op

    # -- accessors --------------------------------------------------------------
    @property
    def lower_bound(self) -> Value:
        return self.operand(0)

    @property
    def upper_bound(self) -> Value:
        return self.operand(1)

    @property
    def step(self) -> Value:
        return self.operand(2)

    @property
    def iter_args_init(self) -> Sequence[Value]:
        return self.operands[3:]

    @property
    def body(self) -> Block:
        return self.regions[0].entry_block

    @property
    def induction_variable(self) -> Value:
        return self.body.arguments[0]

    @property
    def iter_args(self) -> Sequence[Value]:
        return self.body.arguments[1:]

    def yield_op(self) -> Operation:
        terminator = self.body.terminator
        if terminator is None:
            raise VerificationError("scf.for body lacks a terminator", self)
        return terminator

    def verify_op(self) -> None:
        if len(self.operands) < 3:
            raise VerificationError("scf.for requires lower bound, upper bound and step", self)
        iter_count = len(self.operands) - 3
        if len(self.results) != iter_count:
            raise VerificationError(
                "scf.for result count must match the number of iteration arguments", self
            )
        if len(self.body.arguments) != iter_count + 1:
            raise VerificationError(
                "scf.for body must take the induction variable plus the iteration arguments",
                self,
            )

    def print_custom(self, printer, depth: int):
        results = ""
        if self.results:
            results = ", ".join(printer._value(result) for result in self.results) + " = "
        induction = printer._value(self.induction_variable)
        lower = printer._value(self.lower_bound)
        upper = printer._value(self.upper_bound)
        step = printer._value(self.step)
        iter_text = ""
        if self.iter_args_init:
            pairs = ", ".join(
                f"{printer._value(arg)} = {printer._value(init)}"
                for arg, init in zip(self.iter_args, self.iter_args_init)
            )
            iter_text = f" iter_args({pairs})"
        printer._emit(
            depth, f"{results}scf.for {induction} = {lower} to {upper} step {step}{iter_text} {{"
        )
        for op in self.body.operations:
            printer._print_op(op, depth + 1)
        printer._emit(depth, "}")
        return True


@register_operation
class IfOp(Operation):
    """``scf.if`` — two-armed conditional; both regions yield the results."""

    OP_NAME = "scf.if"
    REQUIRES_TERMINATOR = True

    @staticmethod
    def build(
        condition: Value, result_types: Sequence[Type] = (), with_else: bool = True
    ) -> "IfOp":
        op = IfOp(
            IfOp.OP_NAME,
            operands=[condition],
            result_types=list(result_types),
            regions=2 if with_else else 1,
        )
        for region in op.regions:
            region.add_block()
        return op

    @property
    def condition(self) -> Value:
        return self.operand(0)

    @property
    def then_block(self) -> Block:
        return self.regions[0].entry_block

    @property
    def else_block(self) -> Optional[Block]:
        if len(self.regions) > 1 and self.regions[1].blocks:
            return self.regions[1].entry_block
        return None

    def verify_op(self) -> None:
        if len(self.operands) != 1:
            raise VerificationError("scf.if takes exactly one condition operand", self)
        if self.results and self.else_block is None:
            raise VerificationError("scf.if with results requires an else region", self)

    def print_custom(self, printer, depth: int):
        results = ""
        if self.results:
            results = ", ".join(printer._value(result) for result in self.results) + " = "
        printer._emit(depth, f"{results}scf.if {printer._value(self.condition)} {{")
        for op in self.then_block.operations:
            printer._print_op(op, depth + 1)
        else_block = self.else_block
        if else_block is not None and else_block.operations:
            printer._emit(depth, "} else {")
            for op in else_block.operations:
                printer._print_op(op, depth + 1)
        printer._emit(depth, "}")
        return True


@register_operation
class WhileOp(Operation):
    """``scf.while`` — general loop with a condition ("before") region and a
    body ("after") region."""

    OP_NAME = "scf.while"
    REQUIRES_TERMINATOR = True

    @staticmethod
    def build(initial_values: Sequence[Value] = ()) -> "WhileOp":
        types: List[Type] = [value.type for value in initial_values]
        op = WhileOp(
            WhileOp.OP_NAME,
            operands=list(initial_values),
            result_types=types,
            regions=2,
        )
        op.regions[0].add_block(types)
        op.regions[1].add_block(types)
        return op

    @property
    def before_block(self) -> Block:
        return self.regions[0].entry_block

    @property
    def after_block(self) -> Block:
        return self.regions[1].entry_block

    def verify_op(self) -> None:
        before_terminator = self.before_block.terminator
        if before_terminator is None or before_terminator.name != ConditionOp.OP_NAME:
            raise VerificationError(
                "scf.while 'before' region must terminate with scf.condition", self
            )


@register_operation
class ParallelOp(Operation):
    """``scf.parallel`` / ``affine.parallel`` stand-in — a parallel loop nest.

    Operands: ``[lb0, ub0, step0, lb1, ub1, step1, ...]``; the body receives
    one induction variable per dimension.  The converter maps this directly
    onto ``sdfg.map`` (the paper notes ``affine.parallel`` is the closest
    MLIR equivalent of parametric-parallel map scopes).
    """

    OP_NAME = "scf.parallel"
    REQUIRES_TERMINATOR = True

    @staticmethod
    def build(bounds: Sequence[Value]) -> "ParallelOp":
        if len(bounds) % 3 != 0 or not bounds:
            raise VerificationError("scf.parallel bounds must come in (lb, ub, step) triples")
        op = ParallelOp(ParallelOp.OP_NAME, operands=list(bounds), regions=1)
        dims = len(bounds) // 3
        block = op.regions[0].add_block([bounds[0].type] * dims)
        for index, argument in enumerate(block.arguments):
            argument.name_hint = f"i{index}"
        return op

    @property
    def num_dims(self) -> int:
        return len(self.operands) // 3

    @property
    def body(self) -> Block:
        return self.regions[0].entry_block

    def bound_triple(self, dim: int) -> tuple:
        return (self.operand(3 * dim), self.operand(3 * dim + 1), self.operand(3 * dim + 2))
