"""``func`` dialect: functions, returns and calls."""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..ir.core import Block, Operation, Value, register_operation
from ..ir.types import FunctionType, Type
from ..ir.verifier import VerificationError


@register_operation
class FuncOp(Operation):
    """A function definition ``func.func @name(args) -> results``."""

    OP_NAME = "func.func"
    IS_ISOLATED_FROM_ABOVE = True
    REQUIRES_TERMINATOR = True

    @staticmethod
    def build(
        name: str,
        function_type: FunctionType,
        arg_names: Optional[Sequence[str]] = None,
    ) -> "FuncOp":
        op = FuncOp(FuncOp.OP_NAME, regions=1)
        op.attributes["sym_name"] = name
        op.attributes["function_type"] = function_type
        block = op.regions[0].add_block(function_type.inputs)
        if arg_names:
            for argument, hint in zip(block.arguments, arg_names):
                argument.name_hint = hint
        else:
            for index, argument in enumerate(block.arguments):
                argument.name_hint = f"arg{index}"
        return op

    # -- accessors --------------------------------------------------------------
    @property
    def sym_name(self) -> str:
        return self.attributes["sym_name"]

    @property
    def function_type(self) -> FunctionType:
        return self.attributes["function_type"]

    @property
    def body(self) -> Block:
        return self.regions[0].entry_block

    @property
    def entry_arguments(self) -> List[Value]:
        return list(self.body.arguments)

    def verify_op(self) -> None:
        if not self.regions[0].blocks:
            raise VerificationError("func.func must have a body", self)
        body = self.body
        if len(body.arguments) != len(self.function_type.inputs):
            raise VerificationError(
                "func.func entry block arguments do not match the function type", self
            )
        terminator = body.terminator
        if terminator is not None and terminator.name == ReturnOp.OP_NAME:
            if len(terminator.operands) != len(self.function_type.results):
                raise VerificationError(
                    "func.return operand count does not match the function result count", self
                )

    def print_custom(self, printer, depth: int):
        args = ", ".join(
            f"{printer._value(arg)}: {arg.type}" for arg in self.body.arguments
        )
        results = self.function_type.results
        result_text = ""
        if len(results) == 1:
            result_text = f" -> {results[0]}"
        elif len(results) > 1:
            result_text = " -> (" + ", ".join(str(t) for t in results) + ")"
        printer._emit(depth, f"func.func @{self.sym_name}({args}){result_text} {{")
        for op in self.body.operations:
            printer._print_op(op, depth + 1)
        printer._emit(depth, "}")
        return True


@register_operation
class ReturnOp(Operation):
    """Function terminator ``func.return``."""

    OP_NAME = "func.return"
    IS_TERMINATOR = True

    @staticmethod
    def build(values: Sequence[Value] = ()) -> "ReturnOp":
        return ReturnOp(ReturnOp.OP_NAME, operands=list(values))


@register_operation
class CallOp(Operation):
    """Direct call ``func.call @callee(args)``."""

    OP_NAME = "func.call"
    HAS_SIDE_EFFECTS = True  # conservative: the callee may write memory

    @staticmethod
    def build(callee: str, arguments: Sequence[Value], result_types: Sequence[Type]) -> "CallOp":
        op = CallOp(CallOp.OP_NAME, operands=list(arguments), result_types=list(result_types))
        op.attributes["callee"] = callee
        return op

    @property
    def callee(self) -> str:
        return self.attributes["callee"]
