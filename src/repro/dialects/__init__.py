"""Dialect definitions for the MLIR-like IR.

Importing this package registers every operation class with the global
operation registry, so ``from repro import dialects`` is enough to make all
ops available to passes, printers and converters.
"""

from . import arith, builtin, func, math_dialect, memref, scf, sdfg_dialect
from .builtin import ModuleOp
from .func import CallOp, FuncOp, ReturnOp
from .sdfg_dialect import SdfgArrayType, SdfgStreamType, SymbolStore

__all__ = [
    "arith",
    "builtin",
    "func",
    "math_dialect",
    "memref",
    "scf",
    "sdfg_dialect",
    "CallOp",
    "FuncOp",
    "ModuleOp",
    "ReturnOp",
    "SdfgArrayType",
    "SdfgStreamType",
    "SymbolStore",
]
