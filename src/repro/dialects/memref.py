"""``memref`` dialect: memory allocation, loads, stores and copies.

This is the control-centric view of memory the paper contrasts with the
data-centric one: shaped references with load/store granularity and no
notion of moved subsets.  The DCIR converter turns these operations into
``sdfg.alloc`` / ``sdfg.load`` / ``sdfg.store`` with symbolic sizes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.core import Operation, Value, register_operation
from ..ir.types import DYNAMIC, MemRefType, Type
from ..ir.verifier import VerificationError


def _check_memref(op: Operation, value: Value, what: str) -> MemRefType:
    if not isinstance(value.type, MemRefType):
        raise VerificationError(f"{what} of {op.name} must be a memref, got {value.type}", op)
    return value.type


@register_operation
class AllocOp(Operation):
    """``memref.alloc`` — heap allocation (C ``malloc``)."""

    OP_NAME = "memref.alloc"
    IS_ALLOCATION = True

    @staticmethod
    def build(memref_type: MemRefType, dynamic_sizes: Sequence[Value] = ()) -> "AllocOp":
        op = AllocOp(
            AllocOp.OP_NAME, operands=list(dynamic_sizes), result_types=[memref_type]
        )
        return op

    @property
    def memref_type(self) -> MemRefType:
        return self.result.type

    def verify_op(self) -> None:
        memref_type = self.memref_type
        expected = memref_type.num_dynamic_dims()
        if len(self.operands) != expected:
            raise VerificationError(
                f"memref.alloc expects {expected} dynamic size operand(s), got "
                f"{len(self.operands)}",
                self,
            )


@register_operation
class AllocaOp(AllocOp):
    """``memref.alloca`` — stack allocation (C local arrays and scalars)."""

    OP_NAME = "memref.alloca"
    IS_ALLOCATION = True

    @staticmethod
    def build(memref_type: MemRefType, dynamic_sizes: Sequence[Value] = ()) -> "AllocaOp":
        return AllocaOp(
            AllocaOp.OP_NAME, operands=list(dynamic_sizes), result_types=[memref_type]
        )


@register_operation
class DeallocOp(Operation):
    """``memref.dealloc`` — frees a heap allocation (C ``free``)."""

    OP_NAME = "memref.dealloc"
    HAS_SIDE_EFFECTS = True

    @staticmethod
    def build(memref: Value) -> "DeallocOp":
        return DeallocOp(DeallocOp.OP_NAME, operands=[memref])

    @property
    def memref(self) -> Value:
        return self.operand(0)

    def verify_op(self) -> None:
        _check_memref(self, self.memref, "operand")


@register_operation
class LoadOp(Operation):
    """``memref.load`` — reads one element."""

    OP_NAME = "memref.load"
    READS_MEMORY = True

    @staticmethod
    def build(memref: Value, indices: Sequence[Value]) -> "LoadOp":
        memref_type = memref.type
        if not isinstance(memref_type, MemRefType):
            raise VerificationError(f"memref.load requires a memref, got {memref_type}")
        return LoadOp(
            LoadOp.OP_NAME,
            operands=[memref, *indices],
            result_types=[memref_type.element_type],
        )

    @property
    def memref(self) -> Value:
        return self.operand(0)

    @property
    def indices(self) -> Sequence[Value]:
        return self.operands[1:]

    def verify_op(self) -> None:
        memref_type = _check_memref(self, self.memref, "source")
        if len(self.indices) != memref_type.rank:
            raise VerificationError(
                f"memref.load has {len(self.indices)} indices for rank-{memref_type.rank} memref",
                self,
            )


@register_operation
class StoreOp(Operation):
    """``memref.store`` — writes one element."""

    OP_NAME = "memref.store"
    HAS_SIDE_EFFECTS = True

    @staticmethod
    def build(value: Value, memref: Value, indices: Sequence[Value]) -> "StoreOp":
        return StoreOp(StoreOp.OP_NAME, operands=[value, memref, *indices])

    @property
    def value(self) -> Value:
        return self.operand(0)

    @property
    def memref(self) -> Value:
        return self.operand(1)

    @property
    def indices(self) -> Sequence[Value]:
        return self.operands[2:]

    def verify_op(self) -> None:
        memref_type = _check_memref(self, self.memref, "destination")
        if len(self.indices) != memref_type.rank:
            raise VerificationError(
                f"memref.store has {len(self.indices)} indices for rank-{memref_type.rank} memref",
                self,
            )


@register_operation
class CopyOp(Operation):
    """``memref.copy`` — copies all elements from source to destination."""

    OP_NAME = "memref.copy"
    HAS_SIDE_EFFECTS = True
    READS_MEMORY = True

    @staticmethod
    def build(source: Value, destination: Value) -> "CopyOp":
        return CopyOp(CopyOp.OP_NAME, operands=[source, destination])

    @property
    def source(self) -> Value:
        return self.operand(0)

    @property
    def destination(self) -> Value:
        return self.operand(1)

    def verify_op(self) -> None:
        source_type = _check_memref(self, self.source, "source")
        destination_type = _check_memref(self, self.destination, "destination")
        if source_type.rank != destination_type.rank:
            raise VerificationError("memref.copy source/destination rank mismatch", self)
        for src_dim, dst_dim in zip(source_type.shape, destination_type.shape):
            if src_dim != DYNAMIC and dst_dim != DYNAMIC and src_dim != dst_dim:
                raise VerificationError(
                    f"memref.copy static size mismatch ({src_dim} vs {dst_dim})", self
                )


@register_operation
class DimOp(Operation):
    """``memref.dim`` — size of one dimension as an ``index`` value."""

    OP_NAME = "memref.dim"

    @staticmethod
    def build(memref: Value, dimension: Value) -> "DimOp":
        from ..ir.types import INDEX

        return DimOp(DimOp.OP_NAME, operands=[memref, dimension], result_types=[INDEX])

    @property
    def memref(self) -> Value:
        return self.operand(0)

    @property
    def dimension(self) -> Value:
        return self.operand(1)


@register_operation
class CastOp(Operation):
    """``memref.cast`` — converts between static and dynamic shapes."""

    OP_NAME = "memref.cast"

    @staticmethod
    def build(memref: Value, result_type: MemRefType) -> "CastOp":
        return CastOp(CastOp.OP_NAME, operands=[memref], result_types=[result_type])

    @property
    def source(self) -> Value:
        return self.operand(0)
