"""``arith`` dialect: constants, integer/float arithmetic, comparisons, casts.

The operation set mirrors the subset Polygeist emits for C programs.  All
binary operations share one implementation class parameterized by the op
name; a table at the bottom of the module maps each op name to its Python
semantics, which the canonicalizer (constant folding) and both code
generators reuse so that every pipeline computes identical results.
"""

from __future__ import annotations

import operator
from typing import Callable, Dict, Optional, Sequence, Union

from ..ir.core import Operation, Value, register_operation
from ..ir.types import F64, I1, INDEX, FloatType, IndexType, IntegerType, Type
from ..ir.verifier import VerificationError


@register_operation
class ConstantOp(Operation):
    """``arith.constant`` — integer, float or index literal."""

    OP_NAME = "arith.constant"

    @staticmethod
    def build(value: Union[int, float], type: Optional[Type] = None) -> "ConstantOp":
        if type is None:
            type = F64 if isinstance(value, float) else IntegerType(32)
        if isinstance(type, (IntegerType, IndexType)):
            value = int(value)
        else:
            value = float(value)
        op = ConstantOp(ConstantOp.OP_NAME, result_types=[type])
        op.attributes["value"] = value
        return op

    @property
    def value(self) -> Union[int, float]:
        return self.attributes["value"]

    def print_custom(self, printer, depth: int):
        name = printer._value(self.result)
        printer._emit(depth, f"{name} = arith.constant {self.value} : {self.result.type}")
        return True


class BinaryOp(Operation):
    """Shared implementation of two-operand, one-result arithmetic ops."""

    IS_COMMUTATIVE = False

    @classmethod
    def build(cls, lhs: Value, rhs: Value, result_type: Optional[Type] = None) -> "BinaryOp":
        result_type = result_type or lhs.type
        return cls(cls.OP_NAME, operands=[lhs, rhs], result_types=[result_type])

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)

    def verify_op(self) -> None:
        if len(self.operands) != 2:
            raise VerificationError(f"{self.name} requires exactly two operands", self)
        if len(self.results) != 1:
            raise VerificationError(f"{self.name} requires exactly one result", self)


def _binary(name: str, commutative: bool = False) -> type:
    cls = type(
        name.replace(".", "_"),
        (BinaryOp,),
        {"OP_NAME": name, "IS_COMMUTATIVE": commutative},
    )
    return register_operation(cls)


# Integer arithmetic
AddIOp = _binary("arith.addi", commutative=True)
SubIOp = _binary("arith.subi")
MulIOp = _binary("arith.muli", commutative=True)
DivSIOp = _binary("arith.divsi")
RemSIOp = _binary("arith.remsi")
FloorDivSIOp = _binary("arith.floordivsi")
MinSIOp = _binary("arith.minsi", commutative=True)
MaxSIOp = _binary("arith.maxsi", commutative=True)
AndIOp = _binary("arith.andi", commutative=True)
OrIOp = _binary("arith.ori", commutative=True)
XOrIOp = _binary("arith.xori", commutative=True)
ShLIOp = _binary("arith.shli")
ShRSIOp = _binary("arith.shrsi")

# Floating-point arithmetic
AddFOp = _binary("arith.addf", commutative=True)
SubFOp = _binary("arith.subf")
MulFOp = _binary("arith.mulf", commutative=True)
DivFOp = _binary("arith.divf")
RemFOp = _binary("arith.remf")
MinFOp = _binary("arith.minf", commutative=True)
MaxFOp = _binary("arith.maxf", commutative=True)


@register_operation
class NegFOp(Operation):
    """``arith.negf`` — floating point negation."""

    OP_NAME = "arith.negf"

    @staticmethod
    def build(value: Value) -> "NegFOp":
        return NegFOp(NegFOp.OP_NAME, operands=[value], result_types=[value.type])


@register_operation
class CmpIOp(Operation):
    """``arith.cmpi`` — integer comparison producing an ``i1``."""

    OP_NAME = "arith.cmpi"

    PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge")

    @staticmethod
    def build(predicate: str, lhs: Value, rhs: Value) -> "CmpIOp":
        if predicate not in CmpIOp.PREDICATES:
            raise VerificationError(f"Unknown cmpi predicate {predicate!r}")
        op = CmpIOp(CmpIOp.OP_NAME, operands=[lhs, rhs], result_types=[I1])
        op.attributes["predicate"] = predicate
        return op

    @property
    def predicate(self) -> str:
        return self.attributes["predicate"]


@register_operation
class CmpFOp(Operation):
    """``arith.cmpf`` — floating-point comparison producing an ``i1``."""

    OP_NAME = "arith.cmpf"

    PREDICATES = ("oeq", "one", "olt", "ole", "ogt", "oge", "ueq", "une")

    @staticmethod
    def build(predicate: str, lhs: Value, rhs: Value) -> "CmpFOp":
        if predicate not in CmpFOp.PREDICATES:
            raise VerificationError(f"Unknown cmpf predicate {predicate!r}")
        op = CmpFOp(CmpFOp.OP_NAME, operands=[lhs, rhs], result_types=[I1])
        op.attributes["predicate"] = predicate
        return op

    @property
    def predicate(self) -> str:
        return self.attributes["predicate"]


@register_operation
class SelectOp(Operation):
    """``arith.select`` — ternary selection based on an ``i1`` condition."""

    OP_NAME = "arith.select"

    @staticmethod
    def build(condition: Value, true_value: Value, false_value: Value) -> "SelectOp":
        return SelectOp(
            SelectOp.OP_NAME,
            operands=[condition, true_value, false_value],
            result_types=[true_value.type],
        )


class CastOp(Operation):
    """Shared implementation of one-operand type casts."""

    @classmethod
    def build(cls, value: Value, result_type: Type) -> "CastOp":
        return cls(cls.OP_NAME, operands=[value], result_types=[result_type])


def _cast(name: str) -> type:
    cls = type(name.replace(".", "_"), (CastOp,), {"OP_NAME": name})
    return register_operation(cls)


IndexCastOp = _cast("arith.index_cast")
SIToFPOp = _cast("arith.sitofp")
FPToSIOp = _cast("arith.fptosi")
ExtFOp = _cast("arith.extf")
TruncFOp = _cast("arith.truncf")
ExtSIOp = _cast("arith.extsi")
TruncIOp = _cast("arith.trunci")


# ---------------------------------------------------------------------------
# Python semantics of each operation (shared by folding and codegen)
# ---------------------------------------------------------------------------


def _int_div(a, b):
    # C semantics: truncation towards zero for signed division.
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return quotient


def _int_rem(a, b):
    return a - _int_div(a, b) * b


BINARY_SEMANTICS: Dict[str, Callable] = {
    "arith.addi": operator.add,
    "arith.subi": operator.sub,
    "arith.muli": operator.mul,
    "arith.divsi": _int_div,
    "arith.remsi": _int_rem,
    "arith.floordivsi": operator.floordiv,
    "arith.minsi": min,
    "arith.maxsi": max,
    "arith.andi": operator.and_,
    "arith.ori": operator.or_,
    "arith.xori": operator.xor,
    "arith.shli": operator.lshift,
    "arith.shrsi": operator.rshift,
    "arith.addf": operator.add,
    "arith.subf": operator.sub,
    "arith.mulf": operator.mul,
    "arith.divf": operator.truediv,
    "arith.remf": lambda a, b: a - b * int(a / b),
    "arith.minf": min,
    "arith.maxf": max,
}

#: Python source operator used by code generators for each binary op.
BINARY_PYTHON_OPERATORS: Dict[str, str] = {
    "arith.addi": "+",
    "arith.subi": "-",
    "arith.muli": "*",
    "arith.divsi": "//",
    "arith.remsi": "%",
    "arith.floordivsi": "//",
    "arith.andi": "&",
    "arith.ori": "|",
    "arith.xori": "^",
    "arith.shli": "<<",
    "arith.shrsi": ">>",
    "arith.addf": "+",
    "arith.subf": "-",
    "arith.mulf": "*",
    "arith.divf": "/",
    "arith.remf": "%",
}

CMP_SEMANTICS: Dict[str, Callable] = {
    "eq": operator.eq,
    "ne": operator.ne,
    "slt": operator.lt,
    "sle": operator.le,
    "sgt": operator.gt,
    "sge": operator.ge,
    "ult": operator.lt,
    "ule": operator.le,
    "ugt": operator.gt,
    "uge": operator.ge,
    "oeq": operator.eq,
    "one": operator.ne,
    "olt": operator.lt,
    "ole": operator.le,
    "ogt": operator.gt,
    "oge": operator.ge,
    "ueq": operator.eq,
    "une": operator.ne,
}

CMP_PYTHON_OPERATORS: Dict[str, str] = {
    "eq": "==",
    "ne": "!=",
    "slt": "<",
    "sle": "<=",
    "sgt": ">",
    "sge": ">=",
    "ult": "<",
    "ule": "<=",
    "ugt": ">",
    "uge": ">=",
    "oeq": "==",
    "one": "!=",
    "olt": "<",
    "ole": "<=",
    "ogt": ">",
    "oge": ">=",
    "ueq": "==",
    "une": "!=",
}


def is_integer_op(op_name: str) -> bool:
    """Whether the arith op operates on integers (affects folding types)."""
    return op_name.endswith(("addi", "subi", "muli", "divsi", "remsi", "floordivsi",
                             "minsi", "maxsi", "andi", "ori", "xori", "shli", "shrsi"))
