"""``math`` dialect: transcendental functions emitted for C math calls.

Each op takes one (or two for ``math.powf``/``math.atan2``) floating-point
operands and produces a result of the same type.  The table at the bottom
maps each op to the Python/numpy function used by code generation and
constant folding, so that every pipeline computes identical values.
"""

from __future__ import annotations

import math
from typing import Callable, Dict

from ..ir.core import Operation, Value, register_operation
from ..ir.verifier import VerificationError


class UnaryMathOp(Operation):
    """Shared implementation of single-operand math ops."""

    @classmethod
    def build(cls, value: Value) -> "UnaryMathOp":
        return cls(cls.OP_NAME, operands=[value], result_types=[value.type])

    def verify_op(self) -> None:
        if len(self.operands) != 1:
            raise VerificationError(f"{self.name} requires exactly one operand", self)


class BinaryMathOp(Operation):
    """Shared implementation of two-operand math ops (pow, atan2)."""

    @classmethod
    def build(cls, lhs: Value, rhs: Value) -> "BinaryMathOp":
        return cls(cls.OP_NAME, operands=[lhs, rhs], result_types=[lhs.type])

    def verify_op(self) -> None:
        if len(self.operands) != 2:
            raise VerificationError(f"{self.name} requires exactly two operands", self)


def _unary(name: str) -> type:
    return register_operation(type(name.replace(".", "_"), (UnaryMathOp,), {"OP_NAME": name}))


def _binary(name: str) -> type:
    return register_operation(type(name.replace(".", "_"), (BinaryMathOp,), {"OP_NAME": name}))


ExpOp = _unary("math.exp")
LogOp = _unary("math.log")
Log2Op = _unary("math.log2")
SqrtOp = _unary("math.sqrt")
AbsFOp = _unary("math.absf")
SinOp = _unary("math.sin")
CosOp = _unary("math.cos")
TanhOp = _unary("math.tanh")
FloorOp = _unary("math.floor")
CeilOp = _unary("math.ceil")
PowFOp = _binary("math.powf")
Atan2Op = _binary("math.atan2")


#: Python-level semantics for folding and interpretation.
MATH_SEMANTICS: Dict[str, Callable] = {
    "math.exp": math.exp,
    "math.log": math.log,
    "math.log2": math.log2,
    "math.sqrt": math.sqrt,
    "math.absf": abs,
    "math.sin": math.sin,
    "math.cos": math.cos,
    "math.tanh": math.tanh,
    "math.floor": math.floor,
    "math.ceil": math.ceil,
    "math.powf": math.pow,
    "math.atan2": math.atan2,
}

#: Function name used in generated Python code (``math.<name>``).
MATH_PYTHON_FUNCTIONS: Dict[str, str] = {
    "math.exp": "math.exp",
    "math.log": "math.log",
    "math.log2": "math.log2",
    "math.sqrt": "math.sqrt",
    "math.absf": "abs",
    "math.sin": "math.sin",
    "math.cos": "math.cos",
    "math.tanh": "math.tanh",
    "math.floor": "math.floor",
    "math.ceil": "math.ceil",
    "math.powf": "math.pow",
    "math.atan2": "math.atan2",
}

#: Vectorized (numpy) equivalents — used by the ICC/SLEEF-style backend.
MATH_NUMPY_FUNCTIONS: Dict[str, str] = {
    "math.exp": "np.exp",
    "math.log": "np.log",
    "math.log2": "np.log2",
    "math.sqrt": "np.sqrt",
    "math.absf": "np.abs",
    "math.sin": "np.sin",
    "math.cos": "np.cos",
    "math.tanh": "np.tanh",
    "math.floor": "np.floor",
    "math.ceil": "np.ceil",
    "math.powf": "np.power",
    "math.atan2": "np.arctan2",
}

#: C library names recognized by the frontend, mapped to math-dialect ops.
C_MATH_FUNCTIONS: Dict[str, str] = {
    "exp": "math.exp",
    "log": "math.log",
    "log2": "math.log2",
    "sqrt": "math.sqrt",
    "sqrtf": "math.sqrt",
    "fabs": "math.absf",
    "abs": "math.absf",
    "sin": "math.sin",
    "cos": "math.cos",
    "tanh": "math.tanh",
    "floor": "math.floor",
    "ceil": "math.ceil",
    "pow": "math.powf",
    "atan2": "math.atan2",
}
