"""The ``sdfg`` MLIR dialect — the core bridge of the paper (§3, Table 1).

The dialect exists as a convertible target from the standard dialects and
as a representation directly translatable to the SDFG IR.  Its distinctive
features, reproduced here:

* **Symbolic sizes** (§3.1): the ``!sdfg.array<sym("2*N") x i32>`` type
  carries symbolic expressions in its shape, enabling parametric dataflow
  analysis and compile-time size verification (Fig. 3).
* **Table 1 operations**: ``sdfg.sdfg``, ``sdfg.state``, ``sdfg.edge``,
  ``sdfg.tasklet``, ``sdfg.load``, ``sdfg.store`` (with optional
  write-conflict resolution), ``sdfg.alloc``, ``sdfg.map`` and
  ``sdfg.consume``.
* **Symbol store**: symbols are defined per ``sdfg.sdfg`` scope by name and
  are read-only throughout their lifetime.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..ir.core import Block, Operation, Value, register_operation
from ..ir.types import Type
from ..ir.verifier import VerificationError
from ..symbolic import Expr, Integer, Symbol, definitely_nonzero, sympify


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


class SdfgArrayType(Type):
    """``!sdfg.array<sym("N") x 4 x f64>`` — array with symbolic shape."""

    __slots__ = ("shape", "element_type")

    def __init__(self, shape: Sequence[Union[int, str, Expr]], element_type: Type):
        self.shape: Tuple[Expr, ...] = tuple(sympify(dim) for dim in shape)
        self.element_type = element_type

    def key(self) -> tuple:
        return ("sdfg.array", tuple(dim.key() for dim in self.shape), self.element_type.key())

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def is_scalar(self) -> bool:
        return len(self.shape) == 0 or all(dim == Integer(1) for dim in self.shape)

    def num_elements(self) -> Expr:
        total: Expr = Integer(1)
        for dim in self.shape:
            total = total * dim
        return total

    def free_symbols(self) -> frozenset:
        result: frozenset = frozenset()
        for dim in self.shape:
            result |= dim.free_symbols()
        return result

    def __str__(self) -> str:
        parts = []
        for dim in self.shape:
            if isinstance(dim, Integer):
                parts.append(str(dim.value))
            else:
                parts.append(f'sym("{dim}")')
        if parts:
            return f"!sdfg.array<{' x '.join(parts)} x {self.element_type}>"
        return f"!sdfg.array<{self.element_type}>"


class SdfgStreamType(Type):
    """``!sdfg.stream<f64>`` — FIFO queue container."""

    __slots__ = ("element_type",)

    def __init__(self, element_type: Type):
        self.element_type = element_type

    def key(self) -> tuple:
        return ("sdfg.stream", self.element_type.key())

    def __str__(self) -> str:
        return f"!sdfg.stream<{self.element_type}>"


# ---------------------------------------------------------------------------
# Symbol store (§3.1)
# ---------------------------------------------------------------------------


class SymbolStore:
    """Tracks the symbols defined in an ``sdfg.sdfg`` scope.

    MLIR disallows referencing function parameters inside parameter types,
    so the dialect maintains symbols globally per scope by name; they are
    read-only throughout their lifetime.
    """

    def __init__(self):
        self._symbols: Dict[str, str] = {}
        self._counter = 0

    def define(self, name: str, dtype: str = "int64") -> Symbol:
        self._symbols.setdefault(name, dtype)
        return Symbol(name)

    def fresh(self, prefix: str = "s") -> Symbol:
        """Create a new unique symbol (used for every ``?`` dimension)."""
        while True:
            name = f"{prefix}_{self._counter}"
            self._counter += 1
            if name not in self._symbols:
                return self.define(name)

    def __contains__(self, name: str) -> bool:
        return name in self._symbols

    def __iter__(self):
        return iter(self._symbols)

    def items(self):
        return self._symbols.items()

    def names(self) -> List[str]:
        return list(self._symbols)

    def __len__(self) -> int:
        return len(self._symbols)


# ---------------------------------------------------------------------------
# Operations (Table 1)
# ---------------------------------------------------------------------------


@register_operation
class SDFGOp(Operation):
    """``sdfg.sdfg`` — top-level stateful dataflow multigraph container.

    Block arguments are the externally visible data containers; the
    ``symbols`` attribute lists the symbols defined for this scope, and
    ``result_args`` names which arguments act as outputs.
    """

    OP_NAME = "sdfg.sdfg"
    IS_ISOLATED_FROM_ABOVE = True

    @staticmethod
    def build(
        name: str,
        arg_types: Sequence[Type],
        arg_names: Sequence[str],
        symbols: Optional[Sequence[str]] = None,
        result_args: Optional[Sequence[str]] = None,
    ) -> "SDFGOp":
        op = SDFGOp(SDFGOp.OP_NAME, regions=1)
        op.attributes["sym_name"] = name
        op.attributes["symbols"] = list(symbols or [])
        op.attributes["result_args"] = list(result_args or [])
        block = op.regions[0].add_block(arg_types)
        for argument, hint in zip(block.arguments, arg_names):
            argument.name_hint = hint
        return op

    @property
    def sym_name(self) -> str:
        return self.attributes["sym_name"]

    @property
    def symbols(self) -> List[str]:
        return self.attributes["symbols"]

    @property
    def body(self) -> Block:
        return self.regions[0].entry_block

    def states(self) -> List["StateOp"]:
        return [op for op in self.body.operations if isinstance(op, StateOp)]

    def edges(self) -> List["EdgeOp"]:
        return [op for op in self.body.operations if isinstance(op, EdgeOp)]

    def state_by_name(self, name: str) -> Optional["StateOp"]:
        for state in self.states():
            if state.sym_name == name:
                return state
        return None

    def argument_by_name(self, name: str) -> Optional[Value]:
        for argument in self.body.arguments:
            if argument.name_hint == name:
                return argument
        return None

    def verify_op(self) -> None:
        state_names = [state.sym_name for state in self.states()]
        if len(state_names) != len(set(state_names)):
            raise VerificationError("sdfg.sdfg contains duplicate state names", self)
        known = set(state_names)
        for edge in self.edges():
            if edge.src not in known or edge.dst not in known:
                raise VerificationError(
                    f"sdfg.edge references unknown state ({edge.src} -> {edge.dst})", self
                )


@register_operation
class StateOp(Operation):
    """``sdfg.state @name { ... }`` — groups operations; the state machine
    ensures a correct order of execution and prevents data races."""

    OP_NAME = "sdfg.state"

    @staticmethod
    def build(name: str) -> "StateOp":
        op = StateOp(StateOp.OP_NAME, regions=1)
        op.attributes["sym_name"] = name
        op.regions[0].add_block()
        return op

    @property
    def sym_name(self) -> str:
        return self.attributes["sym_name"]

    @property
    def body(self) -> Block:
        return self.regions[0].entry_block


@register_operation
class EdgeOp(Operation):
    """``sdfg.edge @src -> @dst`` — state transition with a symbolic
    condition and symbol assignments."""

    OP_NAME = "sdfg.edge"

    @staticmethod
    def build(
        src: str,
        dst: str,
        condition: str = "1",
        assignments: Optional[Dict[str, str]] = None,
    ) -> "EdgeOp":
        op = EdgeOp(EdgeOp.OP_NAME)
        op.attributes["src"] = src
        op.attributes["dst"] = dst
        op.attributes["condition"] = condition
        op.attributes["assignments"] = dict(assignments or {})
        return op

    @property
    def src(self) -> str:
        return self.attributes["src"]

    @property
    def dst(self) -> str:
        return self.attributes["dst"]

    @property
    def condition(self) -> str:
        return self.attributes["condition"]

    @property
    def assignments(self) -> Dict[str, str]:
        return self.attributes["assignments"]


@register_operation
class TaskletOp(Operation):
    """``sdfg.tasklet`` — encapsulated unit of computation with no external
    dataflow except for parameters and return values."""

    OP_NAME = "sdfg.tasklet"
    IS_ISOLATED_FROM_ABOVE = True
    REQUIRES_TERMINATOR = True

    @staticmethod
    def build(
        name: str,
        inputs: Sequence[Value],
        input_names: Sequence[str],
        result_types: Sequence[Type],
    ) -> "TaskletOp":
        op = TaskletOp(
            TaskletOp.OP_NAME,
            operands=list(inputs),
            result_types=list(result_types),
            regions=1,
        )
        op.attributes["sym_name"] = name
        block = op.regions[0].add_block([value.type for value in inputs])
        for argument, hint in zip(block.arguments, input_names):
            argument.name_hint = hint
        return op

    @staticmethod
    def build_with_code(
        name: str,
        inputs: Sequence[Value],
        input_names: Sequence[str],
        result_types: Sequence[Type],
        code: str,
        output_containers: Optional[Sequence[str]] = None,
        language: str = "python",
    ) -> "TaskletOp":
        """Build a tasklet whose behaviour is given directly as (Python) code
        over its connector names instead of an MLIR body region — the
        "raised" form of §5.2."""
        op = TaskletOp(
            TaskletOp.OP_NAME,
            operands=list(inputs),
            result_types=list(result_types),
            regions=1,
        )
        op.attributes["sym_name"] = name
        op.attributes["code"] = code
        op.attributes["input_names"] = list(input_names)
        op.attributes["language"] = language
        if output_containers:
            op.attributes["output_containers"] = list(output_containers)
        return op

    @property
    def sym_name(self) -> str:
        return self.attributes["sym_name"]

    @property
    def code(self) -> Optional[str]:
        return self.attributes.get("code")

    @property
    def body(self) -> Block:
        return self.regions[0].entry_block

    def verify_op(self) -> None:
        if "code" in self.attributes:
            return  # code-form tasklets have no body region to check
        if len(self.body.arguments) != len(self.operands):
            raise VerificationError(
                "sdfg.tasklet body arguments must match its operands", self
            )


@register_operation
class SdfgReturnOp(Operation):
    """``sdfg.return`` — terminator of tasklet and map bodies."""

    OP_NAME = "sdfg.return"
    IS_TERMINATOR = True

    @staticmethod
    def build(values: Sequence[Value] = ()) -> "SdfgReturnOp":
        return SdfgReturnOp(SdfgReturnOp.OP_NAME, operands=list(values))


@register_operation
class SdfgLoadOp(Operation):
    """``sdfg.load %A[indices]`` — loads a value from an array.

    Indices are either SSA values (operands after the array) or symbolic
    expressions stored in the ``symbolic_indices`` attribute.
    """

    OP_NAME = "sdfg.load"
    READS_MEMORY = True

    @staticmethod
    def build(
        array: Value,
        indices: Sequence[Value] = (),
        symbolic_indices: Optional[Sequence[str]] = None,
    ) -> "SdfgLoadOp":
        if not isinstance(array.type, SdfgArrayType):
            raise VerificationError(f"sdfg.load requires an sdfg.array, got {array.type}")
        op = SdfgLoadOp(
            SdfgLoadOp.OP_NAME,
            operands=[array, *indices],
            result_types=[array.type.element_type],
        )
        if symbolic_indices is not None:
            op.attributes["symbolic_indices"] = [str(index) for index in symbolic_indices]
        return op

    @property
    def array(self) -> Value:
        return self.operand(0)

    @property
    def indices(self) -> Sequence[Value]:
        return self.operands[1:]

    @property
    def symbolic_indices(self) -> Optional[List[str]]:
        return self.attributes.get("symbolic_indices")


@register_operation
class SdfgStoreOp(Operation):
    """``sdfg.store %v, %A[indices]`` — stores (or updates via ``wcr``)."""

    OP_NAME = "sdfg.store"
    HAS_SIDE_EFFECTS = True

    @staticmethod
    def build(
        value: Value,
        array: Value,
        indices: Sequence[Value] = (),
        symbolic_indices: Optional[Sequence[str]] = None,
        wcr: Optional[str] = None,
    ) -> "SdfgStoreOp":
        if not isinstance(array.type, SdfgArrayType):
            raise VerificationError(f"sdfg.store requires an sdfg.array, got {array.type}")
        op = SdfgStoreOp(SdfgStoreOp.OP_NAME, operands=[value, array, *indices])
        if symbolic_indices is not None:
            op.attributes["symbolic_indices"] = [str(index) for index in symbolic_indices]
        if wcr is not None:
            op.attributes["wcr"] = wcr
        return op

    @property
    def value(self) -> Value:
        return self.operand(0)

    @property
    def array(self) -> Value:
        return self.operand(1)

    @property
    def indices(self) -> Sequence[Value]:
        return self.operands[2:]

    @property
    def symbolic_indices(self) -> Optional[List[str]]:
        return self.attributes.get("symbolic_indices")

    @property
    def wcr(self) -> Optional[str]:
        return self.attributes.get("wcr")


@register_operation
class SdfgAllocOp(Operation):
    """``sdfg.alloc() : !sdfg.array<...>`` — declares a data container.

    Allocation in the generated code is implicit (DaCe manages container
    lifetime); the op only declares the container, its symbolic size, and
    whether it is *transient* (managed by the SDFG) or externally visible.
    """

    OP_NAME = "sdfg.alloc"
    IS_ALLOCATION = True

    @staticmethod
    def build(
        array_type: SdfgArrayType, name: str, transient: bool = True, on_stack: bool = False
    ) -> "SdfgAllocOp":
        op = SdfgAllocOp(SdfgAllocOp.OP_NAME, result_types=[array_type])
        op.attributes["container_name"] = name
        op.attributes["transient"] = transient
        op.attributes["on_stack"] = on_stack
        return op

    @property
    def container_name(self) -> str:
        return self.attributes["container_name"]

    @property
    def transient(self) -> bool:
        return self.attributes["transient"]

    @property
    def array_type(self) -> SdfgArrayType:
        return self.result.type


@register_operation
class SdfgCopyOp(Operation):
    """``sdfg.copy %src, %dst`` — whole-container copy with parametric size
    verification (Fig. 3b): mismatching symbolic sizes are a compile-time
    error."""

    OP_NAME = "sdfg.copy"
    HAS_SIDE_EFFECTS = True
    READS_MEMORY = True

    @staticmethod
    def build(source: Value, destination: Value) -> "SdfgCopyOp":
        op = SdfgCopyOp(SdfgCopyOp.OP_NAME, operands=[source, destination])
        op.verify_op()
        return op

    @property
    def source(self) -> Value:
        return self.operand(0)

    @property
    def destination(self) -> Value:
        return self.operand(1)

    def verify_op(self) -> None:
        src_type = self.source.type
        dst_type = self.destination.type
        if not isinstance(src_type, SdfgArrayType) or not isinstance(dst_type, SdfgArrayType):
            raise VerificationError("sdfg.copy operands must be sdfg.array values", self)
        if src_type.rank != dst_type.rank:
            raise VerificationError(
                f"sdfg.copy rank mismatch: {src_type} vs {dst_type}", self
            )
        for src_dim, dst_dim in zip(src_type.shape, dst_type.shape):
            # Sizes are positive quantities: a difference provably nonzero
            # under that assumption (e.g. 2*N vs N) is a compile-time error,
            # exactly the check Fig. 3b demonstrates.
            if definitely_nonzero(src_dim - dst_dim):
                raise VerificationError(
                    f"sdfg.copy size mismatch: dimension {src_dim} != {dst_dim}", self
                )


@register_operation
class MapOp(Operation):
    """``sdfg.map (%i) = (0) to (sym("N")) step (1) { ... }`` — parametric
    parallelism: a scope executed in parallel over its iteration space."""

    OP_NAME = "sdfg.map"
    REQUIRES_TERMINATOR = True

    @staticmethod
    def build(
        params: Sequence[str],
        ranges: Sequence[str],
        index_type: Type,
    ) -> "MapOp":
        if len(params) != len(ranges):
            raise VerificationError("sdfg.map requires one range per parameter")
        op = MapOp(MapOp.OP_NAME, regions=1)
        op.attributes["params"] = list(params)
        op.attributes["ranges"] = [str(rng) for rng in ranges]
        block = op.regions[0].add_block([index_type] * len(params))
        for argument, hint in zip(block.arguments, params):
            argument.name_hint = hint
        return op

    @property
    def params(self) -> List[str]:
        return self.attributes["params"]

    @property
    def ranges(self) -> List[str]:
        return self.attributes["ranges"]

    @property
    def body(self) -> Block:
        return self.regions[0].entry_block


@register_operation
class SymValueOp(Operation):
    """``sdfg.sym_value`` — reads the value of a symbolic expression.

    Symbols are read-only throughout their lifetime and therefore "readily
    accessible" inside tasklets (§3.2); this op is how an IsolatedFromAbove
    tasklet body references them without breaking SSA visibility rules.
    """

    OP_NAME = "sdfg.sym_value"

    @staticmethod
    def build(expression: str, result_type: Type) -> "SymValueOp":
        op = SymValueOp(SymValueOp.OP_NAME, result_types=[result_type])
        op.attributes["expr"] = str(expression)
        return op

    @property
    def expression(self) -> str:
        return self.attributes["expr"]


@register_operation
class ConsumeOp(Operation):
    """``sdfg.consume`` — producer/consumer scope over a stream.

    No MLIR core dialect converts to it, but the construct exists for full
    commutability between data-centric and control-centric optimizations
    (§3.2); it is exercised by the unit tests and the streaming example.
    """

    OP_NAME = "sdfg.consume"
    REQUIRES_TERMINATOR = True

    @staticmethod
    def build(stream: Value, num_pes: int = 1) -> "ConsumeOp":
        if not isinstance(stream.type, SdfgStreamType):
            raise VerificationError("sdfg.consume requires an sdfg.stream operand")
        op = ConsumeOp(ConsumeOp.OP_NAME, operands=[stream], regions=1)
        op.attributes["num_pes"] = num_pes
        op.regions[0].add_block([stream.type.element_type])
        return op

    @property
    def stream(self) -> Value:
        return self.operand(0)

    @property
    def body(self) -> Block:
        return self.regions[0].entry_block
