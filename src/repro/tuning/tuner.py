"""The tuner: search a pipeline space for one kernel, report, register.

:func:`tune` wires the subsystem together: a
:class:`~repro.tuning.space.SearchSpace` proposes candidate specs, a
:class:`~repro.tuning.strategy.Strategy` decides which to evaluate, an
:class:`~repro.tuning.evaluate.Evaluator` scores them — every batch
dispatched in parallel through :func:`repro.service.compile_specs` on the
session's :class:`~repro.service.CompileCache`, so repeat runs over the
same space rehydrate every previously evaluated candidate with zero
frontend/pass work (the report's ``counters`` prove it).

The result is a :class:`TuningReport`: a JSON-stable, self-describing
document (library version, kernel, sizes, strategy/evaluator config, and
per-candidate spec ``content_id`` + full spec + score + provenance) whose
ranking is deterministic for deterministic evaluators — ties and float
scores break on the content address, so two seeded runs in different
processes produce the same winner digest.  The winning spec can be
registered back into the pipeline registry (:func:`register_winner`) and
then used anywhere a pipeline name is accepted.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..errors import PipelineError
from ..pipeline import PipelineSpec, register_pipeline
from ..pipeline.spec import PipelineLike
from ..service import Session
from .evaluate import EvaluatedCandidate, Evaluator, StaticEvaluator
from .space import SearchSpace
from .strategy import ExhaustiveStrategy, RandomStrategy, Strategy

#: JSON schema tag of the emitted tuning document.
TUNE_SCHEMA = "repro-tune/v1"


@dataclass
class TuningReport:
    """Ranked outcome of one tuning run (JSON-stable via :meth:`to_dict`)."""

    kernel: str
    base_id: str
    base_label: str
    strategy: Dict = field(default_factory=dict)
    evaluator: str = ""
    sizes: Optional[Dict[str, int]] = None
    #: Evaluated candidates, best first (rank 1).  Unscorable candidates
    #: (compile errors, unsound ablations, missing movement reports) sort
    #: after every scored one.
    ranking: List[EvaluatedCandidate] = field(default_factory=list)
    #: Aggregate compile-work counters of the run: the summed profiler
    #: deltas of every *fresh* compile (cache hits contribute nothing, so
    #: a fully cached re-run reports an empty dict — the "zero work" proof).
    counters: Dict[str, float] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    wall_seconds: float = 0.0

    # -- results ---------------------------------------------------------------------
    @property
    def winner(self) -> Optional[EvaluatedCandidate]:
        """Best scored candidate (None when nothing could be scored)."""
        return self.ranking[0] if self.ranking and self.ranking[0].ok else None

    @property
    def winner_id(self) -> Optional[str]:
        """Content digest of the winning spec — the reproducibility token."""
        winner = self.winner
        return winner.content_id if winner is not None else None

    def winner_spec(self) -> PipelineSpec:
        """The winning spec (raises :class:`PipelineError` if none won)."""
        winner = self.winner
        if winner is None:
            raise PipelineError(
                f"Tuning of {self.kernel!r} produced no scorable candidate"
            )
        return winner.candidate.spec.copy()

    def best_registered(self) -> Optional[EvaluatedCandidate]:
        """Best-ranked candidate that is a pre-registered pipeline seed."""
        for entry in self.ranking:
            if entry.ok and entry.candidate.origin.startswith("registered:"):
                return entry
        return None

    # -- serialization ---------------------------------------------------------------
    def to_dict(self) -> Dict:
        """Self-describing JSON document (version + content ids throughout)."""
        from .. import __version__

        return {
            "schema": TUNE_SCHEMA,
            "version": __version__,
            "kernel": self.kernel,
            "sizes": self.sizes,
            "base": {"label": self.base_label, "content_id": self.base_id},
            "strategy": dict(self.strategy),
            "evaluator": self.evaluator,
            "candidates": [
                dict(entry.to_dict(), rank=rank)
                for rank, entry in enumerate(self.ranking, start=1)
            ],
            "winner": (
                {
                    "content_id": self.winner.content_id,
                    "origin": self.winner.candidate.origin,
                    "score": self.winner.score,
                    "spec": self.winner.candidate.spec.to_dict(),
                }
                if self.winner is not None
                else None
            ),
            "counters": dict(self.counters),
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "wall_seconds": self.wall_seconds,
        }

    def write(self, path) -> Path:
        """Write the report as pretty-printed JSON."""
        path = Path(path)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return path

    def table(self, limit: Optional[int] = 15) -> str:
        """Aligned text ranking (top ``limit`` candidates)."""
        header = f"{'rank':>4}  {'score':>14}  {'compile':>9}  {'cache':>5}  origin"
        lines = [header, "-" * len(header)]
        shown = self.ranking if limit is None else self.ranking[:limit]
        for rank, entry in enumerate(shown, start=1):
            if entry.ok:
                score = f"{entry.score:.6g}"
            else:
                score = f"[{entry.error_type or 'error'}]"
            lines.append(
                f"{rank:>4}  {score:>14}  {entry.compile_seconds * 1e3:>7.1f}ms"
                f"  {'hit' if entry.cache_hit else 'miss':>5}  {entry.candidate.origin}"
            )
        if limit is not None and len(self.ranking) > limit:
            lines.append(f"... {len(self.ranking) - limit} more candidates")
        lines.append(
            f"{len(self.ranking)} candidates, {self.cache_hits} cache hits, "
            f"wall {self.wall_seconds:.2f}s"
        )
        if self.winner is not None:
            lines.append(f"winner: {self.winner_id} ({self.winner.candidate.origin})")
        return "\n".join(lines)


def rank_candidates(evaluated: List[EvaluatedCandidate]) -> List[EvaluatedCandidate]:
    """Deterministic ranking: score ascending, content address as tiebreak.

    Unscorable candidates follow all scored ones, ordered by content
    address so the full ranking — not just the winner — is reproducible.
    """
    scored = sorted(
        (entry for entry in evaluated if entry.ok),
        key=lambda entry: (entry.score, entry.content_id),
    )
    unscored = sorted(
        (entry for entry in evaluated if not entry.ok),
        key=lambda entry: entry.content_id,
    )
    return scored + unscored


def tune(
    source: str,
    base: PipelineLike = "dcir",
    strategy: Optional[Strategy] = None,
    evaluator: Optional[Evaluator] = None,
    space: Optional[SearchSpace] = None,
    session: Optional[Session] = None,
    function: Optional[str] = None,
    kernel: str = "<source>",
    sizes: Optional[Dict[str, int]] = None,
) -> TuningReport:
    """Search the pipeline space for ``source`` and rank the candidates.

    Defaults: a :class:`SearchSpace` around ``base`` seeded with every
    registered pipeline, exhaustive search, and the deterministic static
    (cost-model) evaluator.  Pass a :class:`RuntimeEvaluator` to score by
    measured runtime, a budgeted :class:`RandomStrategy`/ ``seed`` for
    reproducible sampling, or a pre-warmed :class:`~repro.service.Session`
    to share its compile cache across tuning runs.
    """
    space = space if space is not None else SearchSpace(base)
    strategy = strategy if strategy is not None else ExhaustiveStrategy()
    evaluator = evaluator if evaluator is not None else StaticEvaluator()
    session = session if session is not None else Session()

    stats_before = session.cache.stats.snapshot()
    start = time.perf_counter()
    evaluated = strategy.run(
        space,
        lambda batch: evaluator.evaluate(
            source, list(batch), session, function=function, base=space.base
        ),
    )
    wall = time.perf_counter() - start
    stats_after = session.cache.stats

    # Every entry's counters count, including candidates later disqualified
    # during scoring (unsound ablations, unscorable backends) and scoring-
    # time recompiles of cache-hit candidates (the static evaluator's
    # custom-symbols path): the "counters == {} means zero compile work"
    # contract must account for all work performed, not just the work that
    # produced a ranking score.  Cache hits served without work contribute
    # empty dicts by construction.
    counters: Dict[str, float] = {}
    for entry in evaluated:
        for name, value in entry.counters.items():
            counters[name] = counters.get(name, 0) + value

    return TuningReport(
        kernel=kernel,
        base_id=space.base.content_id(),
        base_label=space.base_label,
        strategy=strategy.describe(),
        evaluator=evaluator.name,
        sizes=dict(sizes) if sizes else None,
        ranking=rank_candidates(evaluated),
        counters=counters,
        cache_hits=stats_after.hits - stats_before.hits,
        cache_misses=stats_after.misses - stats_before.misses,
        wall_seconds=wall,
    )


def tune_kernel(
    name: str,
    sizes: Optional[Dict[str, int]] = None,
    base: PipelineLike = "dcir",
    budget: Optional[int] = None,
    seed: Optional[int] = None,
    **options,
) -> TuningReport:
    """Tune a named PolyBench kernel (the ``python -m repro tune`` core).

    When ``budget`` is given the search is seeded random sampling
    (``seed`` defaults to 0) — byte-reproducible across processes;
    otherwise it is exhaustive.  Further keyword arguments pass through to
    :func:`tune`.
    """
    from ..workloads import default_sizes, get_kernel

    source = get_kernel(name, sizes)
    bound = dict(default_sizes(name))
    bound.update(sizes or {})
    if "strategy" not in options or options["strategy"] is None:
        if budget is not None:
            options["strategy"] = RandomStrategy(budget=budget, seed=seed or 0)
        elif seed is not None:
            # Mirrors the CLI: a seed without a budget would silently run
            # an unseeded exhaustive search.
            raise PipelineError(
                "seed only applies to seeded random sampling; pass budget "
                "to select it (or a RandomStrategy instance)"
            )
        else:
            options["strategy"] = ExhaustiveStrategy()
    elif budget is not None or seed is not None:
        raise PipelineError("Pass either a strategy instance or budget/seed, not both")
    return tune(source, base=base, kernel=name, sizes=bound, **options)


def register_winner(report: TuningReport, name: str, overwrite: bool = False) -> PipelineSpec:
    """Register a tuning run's winning spec under a pipeline name.

    The registered spec is the winner's content (same ``content_id`` —
    names are display-only and excluded from the canonical serialization),
    so compiles through the new name hit the cache entries the tuning run
    already created.
    """
    spec = report.winner_spec()
    spec.name = name
    spec.description = (
        f"Tuned for {report.kernel} ({report.evaluator} evaluator, "
        f"origin {report.ranking[0].candidate.origin})"
    )
    return register_pipeline(spec, overwrite=overwrite)
