"""Candidate evaluators: score a batch of pipeline specs for one kernel.

Both evaluators dispatch every candidate batch through
:func:`repro.service.compile_specs` on the session's executor, so the
content-addressed :class:`~repro.service.CompileCache` deduplicates
shared candidates (two strategies proposing the same spec, or a repeat
tuning run over the same space) into zero-work rehydrations — re-running
a search costs ~nothing.

* :class:`StaticEvaluator` scores by the data-movement cost model
  (:func:`repro.codegen.movement_score`): fully deterministic, so seeded
  searches are byte-reproducible across processes — the default.
* :class:`RuntimeEvaluator` scores by measured best-of-N runtime of the
  generated program, and differentially checks every candidate's return
  value against the base pipeline's — an unsound ablation (one that
  changes the computed result) is disqualified rather than ranked.

Scores are "lower is better" in both cases; a candidate that cannot be
scored (compile error, missing movement report, mismatching output)
carries ``score=None`` plus the reason, and ranks after every scored one.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..codegen import movement_score, sdfg_movement_report
from ..errors import PipelineError
from ..passbase import suggest
from ..perf import PERF
from ..pipeline import generate_program, run_compiled
from ..pipeline.spec import PipelineSpec
from ..service import compile_specs
from .space import Candidate


@dataclass
class EvaluatedCandidate:
    """One scored point of the search: candidate + score + how it was obtained."""

    candidate: Candidate
    score: Optional[float] = None
    compile_seconds: float = 0.0
    cache_hit: bool = False
    run_seconds: Optional[float] = None
    #: Individual measured repetition timings (runtime evaluation only);
    #: ``run_seconds`` is their minimum.  Warm-up reps are excluded.
    rep_seconds: List[float] = field(default_factory=list)
    moved_bytes: Optional[float] = None
    allocations: Optional[float] = None
    #: Compile-time profiler counters recorded by the compile that produced
    #: this candidate's program (empty for cache hits served without work).
    counters: Dict[str, float] = field(default_factory=dict)
    error: Optional[str] = None
    error_type: Optional[str] = None
    #: Live compile result, populated during evaluation (not serialized).
    result: Optional[object] = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return self.error is None and self.score is not None

    @property
    def content_id(self) -> str:
        return self.candidate.content_id

    def to_dict(self) -> Dict:
        """JSON-stable entry for the tuning report."""
        return {
            "origin": self.candidate.origin,
            "label": self.candidate.label,
            "content_id": self.content_id,
            "spec": self.candidate.spec.to_dict(),
            "score": self.score,
            "compile_seconds": self.compile_seconds,
            "cache_hit": self.cache_hit,
            "run_seconds": self.run_seconds,
            "rep_seconds": list(self.rep_seconds),
            "moved_bytes": self.moved_bytes,
            "allocations": self.allocations,
            "counters": dict(self.counters),
            "error": self.error,
            "error_type": self.error_type,
        }


class Evaluator:
    """Scores batches of candidates for a fixed source program."""

    #: Registry/CLI name of the evaluator.
    name = "abstract"

    def evaluate(
        self,
        source: str,
        candidates: Sequence[Candidate],
        session,
        function: Optional[str] = None,
        base: Optional[PipelineSpec] = None,
    ) -> List[EvaluatedCandidate]:
        raise NotImplementedError

    # -- shared compile plumbing ----------------------------------------------------
    def _compile(
        self, source: str, candidates: Sequence[Candidate], session, function: Optional[str]
    ) -> List[EvaluatedCandidate]:
        """Compile every candidate through the session's cache + executor.

        Returns index-aligned :class:`EvaluatedCandidate` shells with
        compile facts filled in and ``score`` still None; compile errors
        are already recorded per-candidate.
        """
        outcomes = compile_specs(
            source,
            [candidate.spec for candidate in candidates],
            function=function,
            labels=[candidate.origin for candidate in candidates],
            executor=session.executor,
            max_workers=session.max_workers,
            cache=session.cache,
        )
        evaluated: List[EvaluatedCandidate] = []
        for candidate, outcome in zip(candidates, outcomes):
            entry = EvaluatedCandidate(
                candidate=candidate,
                compile_seconds=outcome.seconds,
                cache_hit=outcome.cache_hit,
            )
            if not outcome.ok:
                entry.error = outcome.error
                entry.error_type = outcome.error_type
            else:
                entry.result = outcome.result  # live handle for the scoring phase
                if not outcome.cache_hit and outcome.result.report is not None:
                    entry.counters = dict(outcome.result.report.counters)
            evaluated.append(entry)
        return evaluated


def _release_results(evaluated: List[EvaluatedCandidate]) -> List[EvaluatedCandidate]:
    """Drop the live compile handles once scoring is done.

    Only score/counters/identity are read after evaluation, and a ranking
    of dozens of candidates would otherwise pin every exec'd program
    module (and any live SDFG) for the lifetime of the TuningReport.
    """
    for entry in evaluated:
        entry.result = None
    return evaluated


class StaticEvaluator(Evaluator):
    """Rank candidates by the data-movement cost model — deterministic.

    Only data-centric (``bridge=True``) pipelines carry a movement report;
    control-centric candidates score ``None`` and rank last (the model has
    no visibility into the MLIR backend's movement).  ``symbols`` supplies
    values for any free size symbols — PolyBench kernels bake their sizes
    in as constants, so it is normally unnecessary, and it costs: results
    arriving from the batch/cache layer carry only the movement snapshot
    computed with default symbol values, so honoring custom symbols forces
    one in-process recompile per data-centric candidate (no cache reuse).
    """

    name = "static"

    def __init__(self, symbols: Optional[Dict[str, float]] = None):
        self.symbols = dict(symbols) if symbols else None

    def evaluate(self, source, candidates, session, function=None, base=None):
        evaluated = self._compile(source, candidates, session, function)
        for entry in evaluated:
            if entry.error is not None:
                continue
            movement = entry.result.movement_report(self.symbols)
            if movement is None and self.symbols and entry.candidate.spec.bridge:
                # Batch results are payload rehydrations without a live
                # SDFG; custom symbols need one, so redo the pure compile —
                # and book the work onto the candidate's counters, or the
                # report would claim a zero-work run while N full compiles
                # executed.
                before = PERF.snapshot()
                try:
                    program = generate_program(
                        source, entry.candidate.spec, function=function
                    )
                except Exception as exc:
                    entry.error = str(exc)
                    entry.error_type = type(exc).__name__
                    continue
                finally:
                    for name, value in PERF.delta_since(before).items():
                        entry.counters[name] = entry.counters.get(name, 0) + value
                if program.sdfg is not None:
                    movement = sdfg_movement_report(program.sdfg, self.symbols)
            if movement is None:
                entry.error = (
                    "no movement report (static scoring needs a data-centric "
                    "pipeline)"
                )
                entry.error_type = "Unscorable"
                continue
            entry.score = movement_score(movement)
            entry.moved_bytes = movement.bytes_moved
            entry.allocations = movement.allocations
        return _release_results(evaluated)


class RuntimeEvaluator(Evaluator):
    """Rank candidates by measured best-of-N runtime of the generated code.

    Every candidate's return value is differentially checked against the
    base pipeline's (the suite runner's correctness oracle): a candidate
    whose checksum disagrees is an *unsound* ablation and is disqualified
    (``score=None``) instead of being allowed to win by computing less.
    """

    name = "runtime"

    def __init__(self, repetitions: int = 3, rel_tolerance: float = 1e-6, warmup: int = 1):
        self.repetitions = max(1, int(repetitions))
        self.rel_tolerance = float(rel_tolerance)
        # One discarded warm-up rep absorbs first-call costs (native
        # compile + dlopen, interpreted bytecode warm-up) that would
        # otherwise be charged to whichever candidate ran first.
        self.warmup = max(0, int(warmup))
        self._references: Dict[str, Optional[float]] = {}

    def evaluate(self, source, candidates, session, function=None, base=None):
        evaluated = self._compile(source, candidates, session, function)
        reference = self._reference(source, session, function, base)
        for entry in evaluated:
            if entry.error is not None:
                continue
            try:
                # GC stays off during the timed reps so a collection pause
                # cannot decide a ranking.
                run = run_compiled(
                    entry.result,
                    repetitions=self.repetitions,
                    warmup=self.warmup,
                    disable_gc=True,
                )
            except Exception as exc:  # a mis-ablated pipeline may only fail at runtime
                entry.error = str(exc)
                entry.error_type = type(exc).__name__
                continue
            entry.run_seconds = run.seconds
            entry.rep_seconds = list(run.rep_seconds)
            entry.allocations = float(run.allocations)
            value = run.return_value
            if reference is not None and value is not None:
                scale = max(abs(reference), 1.0)
                if not (abs(float(value) - reference) <= self.rel_tolerance * scale):
                    entry.error = (
                        f"return value {value!r} disagrees with the base "
                        f"pipeline's {reference!r} (unsound candidate)"
                    )
                    entry.error_type = "ResultMismatch"
                    continue
            entry.score = run.seconds
        return _release_results(evaluated)

    def _reference(self, source, session, function, base) -> Optional[float]:
        """Base pipeline's return value for this source (memoized per source)."""
        if base is None:
            return None
        key = hashlib.sha256(
            (base.content_id() + "\0" + source).encode("utf-8")
        ).hexdigest()
        if key not in self._references:
            try:
                result = session.compile(source, base, function=function)
                value = run_compiled(result, repetitions=1).return_value
                self._references[key] = float(value) if value is not None else None
            except Exception:
                self._references[key] = None  # candidates then skip the check
        return self._references[key]


#: Registered evaluator constructors, by CLI name.
EVALUATORS = {
    StaticEvaluator.name: StaticEvaluator,
    RuntimeEvaluator.name: RuntimeEvaluator,
}


def get_evaluator(name: str, **options) -> Evaluator:
    """Build an evaluator by registered name (``static`` or ``runtime``)."""
    try:
        factory = EVALUATORS[name]
    except KeyError:
        raise PipelineError(
            f"Unknown evaluator {name!r}; " + suggest(name, list(EVALUATORS), "evaluators")
        ) from None
    return factory(**options)
