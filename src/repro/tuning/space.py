"""The pipeline search space: candidate specs derived from a base pipeline.

The paper's evaluation (§7) compares six *fixed* pipeline compositions;
the interesting space is between them — which pass ablations, orderings
and codegen options actually win per kernel.  A :class:`SearchSpace`
enumerates that neighbourhood of a base :class:`~repro.PipelineSpec`:

* **seeds** — the base spec itself and (optionally) every registered
  pipeline, so a search can never do worse than the best pre-registered
  composition under the chosen evaluator;
* **ablations** — ``base.without_pass(name)`` for every pass in the spec
  (the §6.3-style single-pass ablation study);
* **reorderings** — adjacent-pass swaps within each stage (pass order
  *within* a stage is the free variable; the control → bridge → data
  stage order is the paper's fixed architecture);
* **iteration variants** — running a stage's fixpoint loop only once;
* **codegen variants** — toggling the backend's
  :class:`~repro.CodegenOptions` flags (only the flags that affect the
  spec's selected backend, so every candidate is a *distinct* compilation);
* **parameter variants** — for every data pass whose transformation class
  declares tunable :attr:`~repro.transforms.Transformation.PARAMS` axes,
  each preset value of each parameter (``param:stack-promotion:
  max_elements=1024``);
* **additions** — appending an ``ADDABLE`` parameterized scheduling
  transform the spec lacks (``MapTiling``, ``MapInterchange``,
  ``MapCollapse``, ``Vectorization``) with each preset of its primary
  parameter — the tiled/vectorized schedules the paper's evaluation
  hand-picks;
* **match-limit variants** — capping a pattern-based pass at one
  application (``max_applications=1``), the coarse form of per-match
  enable subsets (``only_matches`` remains available through explicit
  pass params);
* **schedule variants** — appending the ``parallelize`` pass
  (``schedule:parallel``, ``schedule:parallel(n_threads=N)``), the
  parallel-schedule axis.  ``Parallelize`` is deliberately excluded from
  the generic addition axis: a schedule is a *request* the safety proof
  may refuse, so it gets its own origin family with an explicit
  thread-count sweep instead of being enumerated like a rewrite.

Candidates are deduplicated by spec :meth:`~repro.PipelineSpec.content_id`
and enumerated in a deterministic order — the foundation of the seeded,
byte-reproducible searches in :mod:`repro.tuning.strategy`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from ..errors import PipelineError
from ..pipeline import resolve_pipeline
from ..pipeline.spec import PipelineLike, PipelineSpec

#: Mutation stages a :class:`SearchSpace` can vary, in generation order.
STAGES = ("control", "data", "codegen")


@dataclass(frozen=True)
class Candidate:
    """One point of the search space: a spec plus its provenance.

    ``origin`` says how the candidate was derived (``"base"``,
    ``"registered:gcc"``, ``"ablate:map-fusion"``, ``"swap:data:3"``,
    ``"codegen:vectorize=True"`` …) — reports keep it next to the spec's
    content address so rankings read as an ablation study.
    """

    spec: PipelineSpec
    origin: str
    content_id: str = field(default="")

    def __post_init__(self):
        if not self.content_id:
            object.__setattr__(self, "content_id", self.spec.content_id())

    @property
    def label(self) -> str:
        return self.spec.name or self.origin


class SearchSpace:
    """Deterministic candidate enumeration around a base pipeline spec."""

    def __init__(
        self,
        base: PipelineLike = "dcir",
        include_registered: bool = True,
        ablations: bool = True,
        reorderings: bool = True,
        iteration_variants: bool = True,
        codegen_variants: bool = True,
        parameter_variants: bool = True,
        additions: bool = True,
        limit_variants: bool = True,
        schedule_variants: bool = True,
    ):
        self.base = resolve_pipeline(base).validate()
        self.base_label = base if isinstance(base, str) else self.base.label
        self.include_registered = include_registered
        self.ablations = ablations
        self.reorderings = reorderings
        self.iteration_variants = iteration_variants
        self.codegen_variants = codegen_variants
        self.parameter_variants = parameter_variants
        self.additions = additions
        self.limit_variants = limit_variants
        self.schedule_variants = schedule_variants
        self._candidates: "List[Candidate] | None" = None

    # -- enumeration -----------------------------------------------------------------
    def candidates(self) -> List[Candidate]:
        """Every candidate: seeds first, then the base spec's neighbourhood.

        Deduplicated by content address (first origin wins) in a stable
        order, so the same registry state always yields the same list —
        seeded random sampling over it is reproducible across processes.

        Enumerating derives and content-hashes dozens of specs, so the
        result is computed once and cached: the space is a snapshot of the
        registry as of the first enumeration (pipelines registered later
        do not appear as seeds).
        """
        if self._candidates is None:
            self._candidates = _dedupe(list(self.seeds()) + self.neighbours(self.base))
        return list(self._candidates)

    def seeds(self) -> Iterable[Candidate]:
        """The base spec and (optionally) every registered pipeline."""
        yield Candidate(spec=self.base, origin="base")
        if not self.include_registered:
            return
        from ..pipeline import get_pipeline, list_pipelines

        for name in list_pipelines():
            yield Candidate(spec=get_pipeline(name), origin=f"registered:{name}")

    def neighbours(self, spec: PipelineSpec) -> List[Candidate]:
        """All single-step mutations of ``spec``, across every stage."""
        found: List[Candidate] = []
        for stage in STAGES:
            found.extend(self.stage_mutations(spec, stage))
        return _dedupe(found)

    def stage_mutations(self, spec: PipelineSpec, stage: str) -> List[Candidate]:
        """Single-step mutations touching only one stage of ``spec``.

        The greedy strategy optimizes stage by stage; exhaustive search
        concatenates all three stages via :meth:`neighbours`.
        """
        if stage == "codegen":
            return self._codegen_mutations(spec)
        if stage not in ("control", "data"):
            raise PipelineError(f"Unknown search stage {stage!r}; choose one of {STAGES}")
        found: List[Candidate] = []
        passes = spec.stage_passes(stage)
        if self.ablations:
            seen: set = set()
            for pass_spec in passes:
                if pass_spec.name in seen:
                    continue  # without_pass removes every occurrence
                seen.add(pass_spec.name)
                found.append(Candidate(
                    spec=spec.without_pass(pass_spec.name),
                    origin=f"ablate:{pass_spec.name}",
                ))
        if self.reorderings:
            for index in range(len(passes) - 1):
                found.append(Candidate(
                    spec=spec.swap_passes(stage, index, index + 1),
                    origin=f"swap:{stage}:{passes[index].name}<->{passes[index + 1].name}",
                ))
        if self.iteration_variants and passes:
            field_name = f"{stage}_max_iterations"
            if getattr(spec, field_name) != 1:
                found.append(Candidate(
                    spec=spec.derive(**{field_name: 1}),
                    origin=f"iterations:{stage}=1",
                ))
        if stage == "data":
            if self.parameter_variants:
                found.extend(self._parameter_variants(spec))
            if self.limit_variants:
                found.extend(self._limit_variants(spec))
            if self.additions:
                found.extend(self._additions(spec))
            if self.schedule_variants:
                found.extend(self._schedule_variants(spec))
        return found

    # -- transformation-parameter axes -------------------------------------------------
    def _parameter_variants(self, spec: PipelineSpec) -> List[Candidate]:
        """Preset sweeps for every declared parameter of present data passes."""
        from ..transforms import DATA_PASSES
        from ..transforms.rewrite import Transformation, transformation_parameters

        found: List[Candidate] = []
        for index, pass_spec in enumerate(spec.data_passes):
            cls = DATA_PASSES.get(pass_spec.name)
            if not issubclass(cls, Transformation) or not cls.PARAMS:
                continue
            defaults = transformation_parameters(cls)
            for param, presets in cls.PARAMS.items():
                current = pass_spec.params.get(param, defaults.get(param))
                for value in presets:
                    if value == current:
                        continue  # identical compilation, wasted candidate
                    passes = list(spec.data_passes)
                    passes[index] = pass_spec.with_params(**{param: value})
                    found.append(Candidate(
                        spec=spec.with_passes("data", passes),
                        origin=f"param:{pass_spec.name}:{param}={value}",
                    ))
        return found

    def _limit_variants(self, spec: PipelineSpec) -> List[Candidate]:
        """Cap each pattern-based data pass at a single application."""
        from ..transforms import DATA_PASSES
        from ..transforms.rewrite import Transformation

        found: List[Candidate] = []
        for index, pass_spec in enumerate(spec.data_passes):
            cls = DATA_PASSES.get(pass_spec.name)
            if not issubclass(cls, Transformation):
                continue
            if pass_spec.params.get("max_applications") == 1:
                continue
            passes = list(spec.data_passes)
            passes[index] = pass_spec.with_params(max_applications=1)
            found.append(Candidate(
                spec=spec.with_passes("data", passes),
                origin=f"limit:{pass_spec.name}=1",
            ))
        return found

    def _additions(self, spec: PipelineSpec) -> List[Candidate]:
        """Append absent ADDABLE scheduling transforms, one preset per candidate."""
        from ..transforms import DATA_PASSES
        from ..transforms.rewrite import Transformation

        if not spec.bridge:
            return []  # scheduling transforms act on the SDFG side only
        present = {pass_spec.name for pass_spec in spec.data_passes}
        found: List[Candidate] = []
        for name in DATA_PASSES.names():
            cls = DATA_PASSES.get(name)
            if not issubclass(cls, Transformation) or not cls.ADDABLE:
                continue
            if name in present:
                continue
            variants: List[Dict] = [{}]
            if cls.PARAMS:
                primary, presets = next(iter(cls.PARAMS.items()))
                variants = [{primary: value} for value in presets]
            for params in variants:
                passes = list(spec.data_passes) + [(name, params)]
                label = ", ".join(f"{k}={v}" for k, v in params.items())
                found.append(Candidate(
                    spec=spec.with_passes("data", passes),
                    origin=f"add:{name}({label})" if label else f"add:{name}",
                ))
        return found

    def _schedule_variants(self, spec: PipelineSpec) -> List[Candidate]:
        """The parallel-schedule axis: append the ``parallelize`` pass.

        One candidate per thread-count preset, plus the ``None`` preset
        (worker count resolved at run time from ``REPRO_NUM_THREADS`` or
        the machine).  Maps the safety proof refuses simply stay
        sequential, so every candidate is a valid compilation.
        """
        from ..transforms import DATA_PASSES
        from ..transforms.parallelize import Parallelize

        if not spec.bridge:
            return []  # schedules annotate SDFG maps
        if Parallelize.NAME not in DATA_PASSES.names():
            return []
        if any(pass_spec.name == Parallelize.NAME for pass_spec in spec.data_passes):
            return []
        found: List[Candidate] = []
        for value in Parallelize.PARAMS.get("n_threads", (None,)):
            params = {} if value is None else {"n_threads": value}
            origin = (
                "schedule:parallel" if value is None
                else f"schedule:parallel(n_threads={value})"
            )
            passes = list(spec.data_passes) + [(Parallelize.NAME, params)]
            found.append(Candidate(
                spec=spec.with_passes("data", passes),
                origin=origin,
            ))
        return found

    def _codegen_mutations(self, spec: PipelineSpec) -> List[Candidate]:
        if not self.codegen_variants:
            return []
        # Only flags that reach the spec's backend: toggling an ignored
        # flag would create a new content address for a byte-identical
        # compilation (a wasted candidate).
        flags = ("vectorize",) if spec.bridge else ("native_scalars", "preallocate")
        found: List[Candidate] = []
        for flag in flags:
            value = not getattr(spec.codegen, flag)
            found.append(Candidate(
                spec=spec.with_codegen(**{flag: value}),
                origin=f"codegen:{flag}={value}",
            ))
        if spec.bridge and spec.codegen.backend != "native":
            from ..codegen.toolchain import have_compiler

            # The native-backend axis is only a real candidate on machines
            # that can build it; without a compiler it would execute the
            # identical interpreted program under a new content address.
            if have_compiler():
                found.append(Candidate(
                    spec=spec.with_codegen(backend="native"),
                    origin="codegen:backend=native",
                ))
        return found

    def __len__(self) -> int:
        return len(self.candidates())

    def __repr__(self) -> str:
        return (
            f"SearchSpace(base={self.base_label!r}, "
            f"candidates={len(self.candidates())})"
        )


def _dedupe(candidates: Iterable[Candidate]) -> List[Candidate]:
    """Drop content-duplicate candidates, keeping the first origin."""
    unique: Dict[str, Candidate] = {}
    for candidate in candidates:
        unique.setdefault(candidate.content_id, candidate)
    return list(unique.values())
