"""Pipeline auto-tuning: search the space between the paper's pipelines.

The evaluation (§7) compares six fixed compositions; this subsystem
searches the space *between* them per kernel — single-pass ablations,
in-stage reorderings and codegen-option sweeps of a base
:class:`~repro.PipelineSpec` — with pluggable search strategies and
evaluators, all candidate batches dispatched in parallel through the
content-addressed compile cache (repeat runs cost ~zero)::

    from repro.tuning import RandomStrategy, SearchSpace, tune_kernel

    report = tune_kernel("gemm", budget=8, seed=0)   # deterministic search
    print(report.table())
    print(report.winner_id)                          # reproducible digest

    from repro.tuning import register_winner
    register_winner(report, "gemm-tuned")            # now a named pipeline

Entry points: :func:`tune` (any C source), :func:`tune_kernel` (PolyBench
by name), ``python -m repro tune`` (CLI), and
``benchmarks/bench_tuning.py`` (end-to-end benchmark).
"""

from .evaluate import (
    EVALUATORS,
    EvaluatedCandidate,
    Evaluator,
    RuntimeEvaluator,
    StaticEvaluator,
    get_evaluator,
)
from .space import STAGES, Candidate, SearchSpace
from .strategy import (
    STRATEGIES,
    ExhaustiveStrategy,
    GreedyStrategy,
    RandomStrategy,
    Strategy,
    get_strategy,
)
from .tuner import (
    TUNE_SCHEMA,
    TuningReport,
    rank_candidates,
    register_winner,
    tune,
    tune_kernel,
)

__all__ = [
    "Candidate",
    "EVALUATORS",
    "EvaluatedCandidate",
    "Evaluator",
    "ExhaustiveStrategy",
    "GreedyStrategy",
    "RandomStrategy",
    "RuntimeEvaluator",
    "STAGES",
    "STRATEGIES",
    "SearchSpace",
    "StaticEvaluator",
    "Strategy",
    "TUNE_SCHEMA",
    "TuningReport",
    "get_evaluator",
    "get_strategy",
    "rank_candidates",
    "register_winner",
    "tune",
    "tune_kernel",
]
