"""Search strategies: which candidates to evaluate, in what order.

A :class:`Strategy` drives the search over a
:class:`~repro.tuning.space.SearchSpace` by feeding candidate batches to
an evaluation callback (provided by the tuner; it dispatches the batch in
parallel through the compile cache).  Three are built in:

* :class:`ExhaustiveStrategy` — every candidate of the space, one batch;
* :class:`GreedyStrategy` — stage-by-stage hill climbing: evaluate all
  single-step mutations of the incumbent's control stage, adopt the best
  improvement, then the data stage, then codegen, repeating for up to
  ``rounds`` sweeps (so it can discover *combinations* of mutations the
  one-step space never contains);
* :class:`RandomStrategy` — seeded uniform sampling with an evaluation
  budget; the sample is drawn with :class:`random.Random` over the
  space's deterministic candidate order, so the same seed yields the same
  candidates (and hence the same winner) in any process.

Every strategy honors ``budget`` (maximum candidate evaluations) and the
base spec is always evaluated first — a search can report "nothing beat
the base" but never "we didn't look at it".
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence

from ..errors import PipelineError
from ..passbase import suggest
from .evaluate import EvaluatedCandidate
from .space import STAGES, Candidate, SearchSpace

#: Evaluation callback: scores a candidate batch, index-aligned.
EvaluateFn = Callable[[Sequence[Candidate]], List[EvaluatedCandidate]]


class Strategy:
    """Explores a search space through an evaluation callback."""

    #: Registry/CLI name of the strategy.
    name = "abstract"

    def __init__(self, budget: Optional[int] = None):
        if budget is not None and budget < 1:
            raise PipelineError(f"Strategy budget must be >= 1, got {budget}")
        self.budget = budget

    def run(self, space: SearchSpace, evaluate: EvaluateFn) -> List[EvaluatedCandidate]:
        """Search the space; returns every evaluated candidate (any order)."""
        raise NotImplementedError

    def describe(self) -> dict:
        """JSON-stable description recorded in the tuning report."""
        return {"name": self.name, "budget": self.budget}

    def _clip(self, candidates: List[Candidate], spent: int) -> List[Candidate]:
        """Trim a batch to what the remaining budget allows."""
        if self.budget is None:
            return candidates
        return candidates[: max(0, self.budget - spent)]


class ExhaustiveStrategy(Strategy):
    """Evaluate every candidate in the space (one parallel batch)."""

    name = "exhaustive"

    def run(self, space, evaluate):
        return evaluate(self._clip(space.candidates(), 0))


class RandomStrategy(Strategy):
    """Seeded uniform sampling of the space under an evaluation budget."""

    name = "random"

    def __init__(self, budget: Optional[int] = 16, seed: int = 0):
        super().__init__(budget=budget if budget is not None else 16)
        self.seed = int(seed)

    def describe(self) -> dict:
        return {"name": self.name, "budget": self.budget, "seed": self.seed}

    def run(self, space, evaluate):
        pool = space.candidates()
        base, rest = pool[0], pool[1:]
        count = min(len(rest), max(0, self.budget - 1))
        # The pool order is deterministic for a given registry state, so
        # Random(seed).sample picks identical candidates in every process.
        sample = random.Random(self.seed).sample(rest, count)
        return evaluate([base] + sample)


class GreedyStrategy(Strategy):
    """Stage-by-stage hill climbing from the base spec.

    Each round sweeps the stages in order, evaluating every single-step
    mutation of the current incumbent within that stage and adopting the
    best strict improvement.  Stops after ``rounds`` sweeps, when a full
    sweep yields no improvement, or when the budget runs out.
    """

    name = "greedy"

    def __init__(self, budget: Optional[int] = None, rounds: int = 2):
        super().__init__(budget=budget)
        if rounds < 1:
            raise PipelineError(f"Greedy rounds must be >= 1, got {rounds}")
        self.rounds = int(rounds)

    def describe(self) -> dict:
        return {"name": self.name, "budget": self.budget, "rounds": self.rounds}

    def run(self, space, evaluate):
        evaluated: List[EvaluatedCandidate] = list(evaluate([Candidate(space.base, "base")]))
        best = evaluated[0] if evaluated[0].ok else None
        seen = {entry.content_id for entry in evaluated}
        for _ in range(self.rounds):
            if best is None:  # the base itself failed; nothing to climb from
                break
            improved = False
            for stage in STAGES:
                batch = [
                    candidate
                    for candidate in space.stage_mutations(best.candidate.spec, stage)
                    if candidate.content_id not in seen
                ]
                batch = self._clip(batch, len(evaluated))
                if not batch:
                    continue
                seen.update(candidate.content_id for candidate in batch)
                results = evaluate(batch)
                evaluated.extend(results)
                scored = [entry for entry in results if entry.ok]
                if not scored:
                    continue
                top = min(scored, key=lambda entry: (entry.score, entry.content_id))
                if top.score < best.score:
                    best = top
                    improved = True
            if not improved:
                break
        return evaluated


#: Registered strategy constructors, by CLI name.
STRATEGIES = {
    ExhaustiveStrategy.name: ExhaustiveStrategy,
    GreedyStrategy.name: GreedyStrategy,
    RandomStrategy.name: RandomStrategy,
}


def get_strategy(name: str, **options) -> Strategy:
    """Build a strategy by registered name (``exhaustive``/``greedy``/``random``)."""
    try:
        factory = STRATEGIES[name]
    except KeyError:
        raise PipelineError(
            f"Unknown strategy {name!r}; " + suggest(name, list(STRATEGIES), "strategies")
        ) from None
    return factory(**options)
