"""Content-addressed compilation cache.

Compiling the same kernel through the same pipeline always produces the
same generated code (codegen is deterministic — a regression-tested
invariant), so compilation results can be memoized by content address: the
SHA-256 of the *normalized* C source, the pipeline's canonical spec
serialization, the requested function and the library version.  Keying on
the :meth:`~repro.pipeline.PipelineSpec.cache_basis` rather than a name
means custom (even anonymous) pipeline specs are content-addressed
correctly: a registered name and an equivalent hand-built spec share one
entry, while any change to the pass list, pass options or codegen flags
produces a new address.  Two stores back the cache:

* an in-memory LRU holding serialized payloads (never live objects — every
  hit rehydrates a fresh :class:`~repro.pipeline.CompileResult`, so cached
  results share no mutable state between callers);
* an optional on-disk store (one JSON file per key) that survives
  processes, letting consecutive test or benchmark invocations skip
  compilation entirely.  Set the ``REPRO_CACHE_DIR`` environment variable
  to give every default-constructed cache a persistent directory.

The disk store is self-healing.  Entries are envelopes carrying a format
stamp and a SHA-256 checksum of the payload (``CACHE_FORMAT``); writes
are write-to-scratch + atomic rename, so a killed writer can never leave
a torn entry under the real name.  Readers verify everything anyway —
files written by older library versions, truncated by a non-atomic
writer, or garbled by the disk are *quarantined* (moved into a
``quarantine/`` subdirectory, counted under the
``compile_cache.corrupt_evicted`` profiler counter and
``CacheStats.quarantined``) and reported as a miss, never an exception:
a corrupt cache costs a recompile, not a batch.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from .. import __version__
from ..faults import active_plan
from ..perf import PERF
from ..pipeline import (
    CompileResult,
    generate_program,
    resolve_pipeline,
    result_from_payload,
)
from ..pipeline.pipelines import PAYLOAD_VERSION
from ..pipeline.spec import PipelineLike

#: Environment variable naming the default on-disk cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Format stamp of on-disk entries.  Entries are checksummed envelopes:
#: ``{"format": CACHE_FORMAT, "sha256": <hex>, "payload": {...}}``.
#: Bump when the envelope layout changes; payload compatibility is
#: versioned separately (``PAYLOAD_VERSION`` inside the payload).
CACHE_FORMAT = "repro-cache-entry/v2"

#: Subdirectory corrupted/alien entries are moved into (kept, not
#: deleted: quarantined files are forensic evidence of torn writes).
QUARANTINE_DIR = "quarantine"


def payload_digest(payload: Dict) -> str:
    """Canonical content checksum of a payload (sorted-key JSON, SHA-256)."""
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def normalize_source(source) -> str:
    """Normalize a program for content addressing.

    For C sources, line endings and per-line trailing whitespace are
    canonicalized and surrounding blank lines dropped — formatting
    variations that cannot change the compiled program.  Anything further
    (comments, internal whitespace) is left alone: the frontend sees
    exactly what we hash.

    Python-frontend programs (``PythonProgram`` or plain functions) hash
    their own canonical digest basis — dedented, decorator-stripped
    source plus sorted size bindings (see
    :meth:`~repro.frontend_py.PythonProgram.cache_source`) — so the same
    function source with the same sizes addresses the same entry in every
    process and under every ``PYTHONHASHSEED``.
    """
    if not isinstance(source, str):
        from ..frontend_py import as_program

        return as_program(source).cache_source()
    lines = source.replace("\r\n", "\n").replace("\r", "\n").split("\n")
    return "\n".join(line.rstrip() for line in lines).strip("\n")


def cache_key(source, pipeline: PipelineLike = "dcir", function: Optional[str] = None) -> str:
    """Content address of one compilation request.

    ``pipeline`` is a registered name or a
    :class:`~repro.pipeline.PipelineSpec`; either way the key is computed
    from the spec's canonical serialization, so equivalent pipelines share
    a key regardless of how (or whether) they are named.
    """
    basis = json.dumps(
        {
            "source": normalize_source(source),
            "pipeline": resolve_pipeline(pipeline).cache_basis(),
            "function": function,
            "version": __version__,
        },
        sort_keys=True,
    )
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Counters describing how a cache instance has been used."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    stores: int = 0
    evictions: int = 0
    #: Disk entries that failed integrity validation and were moved aside.
    quarantined: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.disk_hits, self.stores,
                          self.evictions, self.quarantined)

    def __str__(self) -> str:
        return (
            f"CacheStats(hits={self.hits} (disk {self.disk_hits}), "
            f"misses={self.misses}, stores={self.stores}, "
            f"evictions={self.evictions}, quarantined={self.quarantined})"
        )


def _valid_payload(payload) -> bool:
    """Whether a deserialized disk entry is a usable, current payload."""
    return (
        isinstance(payload, dict)
        and "code" in payload
        and payload.get("version") == PAYLOAD_VERSION
    )


class CompileCache:
    """In-memory LRU + optional on-disk store of compilation payloads."""

    def __init__(
        self,
        max_entries: int = 256,
        directory: Optional[os.PathLike] = None,
        use_env_directory: bool = True,
    ):
        if directory is None and use_env_directory:
            directory = os.environ.get(CACHE_DIR_ENV) or None
        self.directory = Path(directory) if directory is not None else None
        self.max_entries = max(1, int(max_entries))
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._memory: "OrderedDict[str, Dict]" = OrderedDict()

    # -- store layers ---------------------------------------------------------------
    def _disk_path(self, key: str) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / f"{key}.json"

    def _memory_put(self, key: str, payload: Dict) -> None:
        # Caller holds the lock.
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a failed entry aside; corruption costs a recompile, never a crash."""
        PERF.increment("compile_cache.corrupt_evicted")
        with self._lock:
            self.stats.quarantined += 1
            sequence = self.stats.quarantined
        target = path.parent / QUARANTINE_DIR / f"{path.name}.{os.getpid()}.{sequence}"
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            path.replace(target)
        except OSError:
            try:
                path.unlink()  # quarantine dir unusable: evict in place
            except OSError:
                pass  # racing reader already moved it, or read-only store

    def _read_disk(self, key: str) -> Optional[Dict]:
        """Read and *verify* a disk entry; None for missing/corrupt/stale.

        The single source of truth for disk-entry validity — ``lookup`` and
        ``__contains__`` both route through it, so they can never disagree
        on whether a stale or incompatible entry "exists".  Anything that
        fails verification — unparseable JSON (truncated by a torn
        write), an alien envelope format, a checksum mismatch, a stale
        payload version — is quarantined and reported as a miss; this
        method never raises for bad data.
        """
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None  # unreadable (permissions, racing unlink): plain miss
        try:
            document = json.loads(text)
        except ValueError:
            self._quarantine(path, "unparseable JSON (torn write?)")
            return None
        if not isinstance(document, dict):
            self._quarantine(path, "entry is not a JSON object")
            return None
        if "format" in document:
            if document.get("format") != CACHE_FORMAT:
                self._quarantine(path, f"alien entry format {document.get('format')!r}")
                return None
            payload = document.get("payload")
            if not isinstance(payload, dict):
                self._quarantine(path, "envelope carries no payload object")
                return None
            if document.get("sha256") != payload_digest(payload):
                self._quarantine(path, "payload checksum mismatch")
                return None
        else:
            # Pre-envelope entry (a bare payload written by an older
            # library version): no checksum to verify, validated below.
            payload = document
        if not _valid_payload(payload):
            self._quarantine(path, "stale or incompatible payload version")
            return None
        return payload

    def lookup(self, key: str) -> Optional[Dict]:
        """Fetch a payload by key, promoting disk entries into memory."""
        with self._lock:
            payload = self._memory.get(key)
            if payload is not None:
                self._memory.move_to_end(key)
                self.stats.hits += 1
                return payload
        payload = self._read_disk(key)
        if payload is not None:
            with self._lock:
                self._memory_put(key, payload)
                self.stats.hits += 1
                self.stats.disk_hits += 1
            return payload
        with self._lock:
            self.stats.misses += 1
        return None

    def store(self, key: str, payload: Dict) -> None:
        """Insert a payload into the memory LRU and (if enabled) the disk store.

        Disk entries are checksummed envelopes written to a scratch file
        and atomically renamed into place: a writer killed at any point
        leaves either the previous entry or a stray scratch file — never
        a torn entry under the real name.
        """
        with self._lock:
            self._memory_put(key, payload)
            self.stats.stores += 1
        path = self._disk_path(key)
        if path is None:
            return
        text = json.dumps(
            {"format": CACHE_FORMAT, "sha256": payload_digest(payload), "payload": payload}
        )
        plan = active_plan()
        if plan is not None:
            # Fault seam: a torn (truncated) write, as a non-atomic writer
            # killed mid-write would produce.  Written under the real name
            # on purpose — it must exercise the reader's quarantine path.
            text = plan.corrupt_cache_text(text)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            scratch = path.with_name(f".{path.name}.{os.getpid()}.tmp")
            scratch.write_text(text, encoding="utf-8")
            scratch.replace(path)  # atomic: concurrent readers see old or new
        except OSError:
            pass  # a read-only or full disk must not fail compilation

    def clear(self, disk: bool = False) -> None:
        """Drop the in-memory entries (and optionally the on-disk store)."""
        with self._lock:
            self._memory.clear()
        if disk and self.directory is not None and self.directory.exists():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._memory:
                return True
        # Same validation as ``lookup`` (without stats or promotion): a
        # stale or corrupt disk entry is absent, not present.
        return self._read_disk(key) is not None

    def contains_compile(
        self, source, pipeline: PipelineLike = "dcir", function: Optional[str] = None
    ) -> bool:
        """Whether a compilation *request* is already cached (no compile runs).

        Request-level companion of ``key in cache``: computes the content
        address of (source, pipeline, function) and probes both stores
        without touching statistics — lets sweep drivers predict which
        items a batch will get for free without spelling out cache keys.
        """
        return cache_key(source, pipeline, function) in self

    # -- the cached compile entry point ---------------------------------------------
    def get_or_compile(
        self, source, pipeline: PipelineLike = "dcir", function: Optional[str] = None
    ) -> CompileResult:
        """Compile through the cache (``pipeline`` is a name or spec).

        On a hit, a fresh :class:`CompileResult` is rehydrated from the
        stored payload (``cache_hit=True``) without running any compiler
        stage; on a miss the full pipeline runs and its payload is stored.
        """
        spec = resolve_pipeline(pipeline)
        key = cache_key(source, spec, function)
        payload = self.lookup(key)
        if payload is not None:
            PERF.increment("compile_cache.hits")
            return result_from_payload(payload)
        PERF.increment("compile_cache.misses")
        program = generate_program(source, spec, function=function)
        self.store(key, program.to_payload())
        return program.to_result()
