"""Parallel batch compilation.

Evaluation sweeps compile many independent (kernel × pipeline) pairs; the
compilation stages are pure (no shared mutable state), so they parallelize
naturally.  :func:`compile_many` fans the cold items out over a
``concurrent.futures`` executor — processes by default when more than one
CPU is available (compilation is CPU-bound pure Python, so threads cannot
exceed one core's throughput under the GIL) — and captures per-item errors
so one failing kernel never aborts a sweep.

Requests name pipelines by registered string *or* carry a full
:class:`~repro.pipeline.PipelineSpec`.  Names are resolved to specs in the
parent before submission — the registry is per-process state, so this is
what lets user-*registered* pipelines work under a process pool: workers
receive the serialized spec, not a name they could not resolve.  The same
caveat applies one level down to *pass* names: a spec referencing a pass
registered at runtime (rather than at ``import repro``) resolves in fork
workers but not under a spawn start method, where the worker re-imports a
registry that never saw the registration — use ``executor="thread"`` or
``"serial"`` for such specs on spawn platforms.

Workers run only the *pure* stage (:func:`repro.pipeline.generate_program`)
and return the serializable payload; the parent rehydrates results and
warms its compile cache, which is also how results cross process
boundaries without pickling live IR objects.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..errors import PipelineError
from ..frontend_py import PythonProgram
from ..perf import PERF
from ..pipeline import CompileResult, generate_program, resolve_pipeline, result_from_payload
from ..pipeline.spec import PipelineLike, pipeline_label
from .cache import CompileCache, cache_key


@dataclass(frozen=True)
class CompileRequest:
    """One item of a batch: a (source, pipeline, function) triple.

    ``pipeline`` is a registered pipeline name or a
    :class:`~repro.pipeline.PipelineSpec`.
    """

    #: C source text or a Python-frontend program (both are picklable and
    #: content-addressable; see :func:`repro.service.cache.normalize_source`).
    source: object
    pipeline: PipelineLike = "dcir"
    function: Optional[str] = None
    name: Optional[str] = None  # display label; defaults to the pipeline name

    @property
    def label(self) -> str:
        return self.name if self.name is not None else pipeline_label(self.pipeline)


@dataclass
class BatchOutcome:
    """Per-item result of :func:`compile_many`: a result or a captured error."""

    request: CompileRequest
    result: Optional[CompileResult] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    error_traceback: Optional[str] = None
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def cache_hit(self) -> bool:
        return bool(self.result is not None and self.result.cache_hit)


RequestLike = Union[CompileRequest, Tuple, Dict, str, "PythonProgram"]


def as_request(item: RequestLike) -> CompileRequest:
    """Coerce tuples/dicts/strings/Python programs into a :class:`CompileRequest`."""
    if isinstance(item, CompileRequest):
        return item
    if isinstance(item, str):
        return CompileRequest(source=item)
    if isinstance(item, PythonProgram):
        return CompileRequest(source=item, name=item.name)
    if isinstance(item, dict):
        return CompileRequest(**item)
    if isinstance(item, tuple):
        return CompileRequest(*item)
    raise TypeError(f"Cannot interpret {type(item).__name__} as a compile request")


def default_executor() -> str:
    """Executor kind used when none is requested."""
    return "process" if (os.cpu_count() or 1) > 1 else "thread"


def _compile_payload(request: CompileRequest) -> Dict:
    """Worker: run the pure compile stage, returning payload or error info.

    Must stay module-level and return only pickle-friendly data so it works
    identically under ``ProcessPoolExecutor`` (pickled across the fork)
    and ``ThreadPoolExecutor``.
    """
    start = time.perf_counter()
    try:
        payload = generate_program(
            request.source, request.pipeline, function=request.function
        ).to_payload()
        return {"ok": True, "payload": payload, "seconds": time.perf_counter() - start}
    except Exception as exc:  # per-item isolation: a bad kernel must not kill the sweep
        return {
            "ok": False,
            "error": str(exc),
            "error_type": type(exc).__name__,
            "error_traceback": traceback.format_exc(),
            "seconds": time.perf_counter() - start,
        }


def compile_many(
    items: Iterable[RequestLike],
    executor: Optional[str] = None,
    max_workers: Optional[int] = None,
    cache: Optional[CompileCache] = None,
) -> List[BatchOutcome]:
    """Compile a batch of requests, in parallel, with per-item error capture.

    ``executor`` is ``"process"``, ``"thread"`` or ``"serial"`` (default:
    picked by :func:`default_executor`).  When a ``cache`` is given, hits
    are served without entering the pool and fresh payloads are stored back,
    so a batch both benefits from and warms the cache.  The returned list
    is index-aligned with ``items``; failed items carry the error message,
    type and traceback instead of a result.
    """
    requests = [as_request(item) for item in items]
    outcomes: List[Optional[BatchOutcome]] = [None] * len(requests)

    # Resolve pipeline designators and cache keys up front: unknown names
    # and unserializable specs fail per-item here (not inside a worker, and
    # never aborting the batch), and resolved specs travel to workers by
    # value, so pipelines registered only in this process still batch.
    resolved: List[Optional[CompileRequest]] = [None] * len(requests)
    keys: List[Optional[str]] = [None] * len(requests)
    pending: List[int] = []
    for index, request in enumerate(requests):
        try:
            spec = resolve_pipeline(request.pipeline)
            if cache is not None:
                keys[index] = cache_key(request.source, spec, request.function)
        except (PipelineError, TypeError, ValueError) as exc:
            outcomes[index] = BatchOutcome(
                request=request,
                error=str(exc),
                error_type=type(exc).__name__,
                error_traceback=traceback.format_exc(),
            )
            continue
        resolved[index] = replace(request, pipeline=spec)
        if cache is not None:
            payload = cache.lookup(keys[index])
            if payload is not None:
                PERF.increment("compile_cache.hits")
                outcomes[index] = BatchOutcome(request=request, result=result_from_payload(payload))
                continue
            PERF.increment("compile_cache.misses")
        pending.append(index)

    kind = executor or default_executor()
    if kind not in ("process", "thread", "serial"):
        raise ValueError(f"Unknown executor {kind!r}; choose 'process', 'thread' or 'serial'")

    def finish(index: int, report: Dict) -> None:
        request = requests[index]
        if report["ok"]:
            payload = report["payload"]
            if cache is not None:
                cache.store(keys[index], payload)
            result = result_from_payload(payload)
            result.cache_hit = False  # freshly compiled, merely shipped as a payload
            outcomes[index] = BatchOutcome(request=request, result=result, seconds=report["seconds"])
        else:
            outcomes[index] = BatchOutcome(
                request=request,
                error=report["error"],
                error_type=report["error_type"],
                error_traceback=report["error_traceback"],
                seconds=report["seconds"],
            )

    if kind == "serial" or len(pending) <= 1:
        for index in pending:
            finish(index, _compile_payload(resolved[index]))
    else:
        pool_cls = ProcessPoolExecutor if kind == "process" else ThreadPoolExecutor
        workers = max_workers or min(len(pending), os.cpu_count() or 1)
        try:
            pool = pool_cls(max_workers=max(1, workers))
        except (OSError, PermissionError):
            # Sandboxes without fork/spawn support: degrade to serial.
            for index in pending:
                finish(index, _compile_payload(resolved[index]))
        else:
            with pool:
                futures = {}
                degraded = False
                for index in pending:
                    if not degraded:
                        try:
                            futures[pool.submit(_compile_payload, resolved[index])] = index
                            continue
                        except (OSError, PermissionError, RuntimeError):
                            # Worker creation is lazy: a sandbox that denies
                            # fork/spawn fails here, not at pool construction.
                            # Degrade the rest of the batch to serial.
                            degraded = True
                    finish(index, _compile_payload(resolved[index]))
                for future, index in futures.items():
                    try:
                        finish(index, future.result())
                    except Exception as exc:
                        # A crashed worker (e.g. OOM-killed: BrokenProcessPool)
                        # must not abort the sweep; collateral pending items
                        # get the same honest error instead of a result.
                        outcomes[index] = BatchOutcome(
                            request=requests[index],
                            error=str(exc) or type(exc).__name__,
                            error_type=type(exc).__name__,
                            error_traceback=traceback.format_exc(),
                        )

    missing = [index for index, outcome in enumerate(outcomes) if outcome is None]
    if missing:  # pragma: no cover - every path above populates its index
        raise RuntimeError(f"compile_many left outcomes unset at indices {missing}")
    return outcomes


def compile_specs(
    source,
    pipelines: Iterable[PipelineLike],
    function: Optional[str] = None,
    labels: Optional[Iterable[Optional[str]]] = None,
    executor: Optional[str] = None,
    max_workers: Optional[int] = None,
    cache: Optional[CompileCache] = None,
) -> List[BatchOutcome]:
    """Compile *one* source through many pipelines — the sweep/tuning shape.

    Thin wrapper over :func:`compile_many` for the common evaluation batch
    where the kernel is fixed and the pipeline varies (ablation studies,
    the auto-tuner's candidate evaluation).  The shared source is hashed
    once per pipeline by the cache key, so equivalent specs — however the
    caller produced them — deduplicate onto a single compilation.
    """
    pipelines = list(pipelines)
    labels = list(labels) if labels is not None else [None] * len(pipelines)
    if len(labels) != len(pipelines):
        raise ValueError(
            f"compile_specs got {len(pipelines)} pipelines but {len(labels)} labels"
        )
    return compile_many(
        [
            CompileRequest(source=source, pipeline=pipeline, function=function, name=label)
            for pipeline, label in zip(pipelines, labels)
        ],
        executor=executor,
        max_workers=max_workers,
        cache=cache,
    )
