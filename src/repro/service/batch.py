"""Parallel batch compilation.

Evaluation sweeps compile many independent (kernel × pipeline) pairs; the
compilation stages are pure (no shared mutable state), so they parallelize
naturally.  :func:`compile_many` fans the cold items out over a
``concurrent.futures`` executor — processes by default when more than one
CPU is available (compilation is CPU-bound pure Python, so threads cannot
exceed one core's throughput under the GIL) — and captures per-item errors
so one failing kernel never aborts a sweep.

Requests name pipelines by registered string *or* carry a full
:class:`~repro.pipeline.PipelineSpec`.  Names are resolved to specs in the
parent before submission — the registry is per-process state, so this is
what lets user-*registered* pipelines work under a process pool: workers
receive the serialized spec, not a name they could not resolve.  The same
caveat applies one level down to *pass* names: a spec referencing a pass
registered at runtime (rather than at ``import repro``) resolves in fork
workers but not under a spawn start method, where the worker re-imports a
registry that never saw the registration — use ``executor="thread"`` or
``"serial"`` for such specs on spawn platforms.

Workers run only the *pure* stage (:func:`repro.pipeline.generate_program`)
and return the serializable payload; the parent rehydrates results and
warms its compile cache, which is also how results cross process
boundaries without pickling live IR objects.

The batch survives a hostile environment.  Per-request deadlines
(``CompileRequest.timeout``) bound every item; transient failures (see
the taxonomy in :mod:`repro.errors`) are retried under a
:class:`~repro.service.resilience.RetryPolicy` with deterministic
backoff; and a SIGKILL'd or OOM'd pool worker (``BrokenProcessPool``
takes every in-flight future with it) triggers exactly one pool respawn
with only the *lost* requests re-dispatched — if the fresh pool dies
too, the survivors get typed :class:`~repro.errors.WorkerLost` outcomes
instead of the batch crashing.  Every outcome records how many attempts
it consumed and, on failure, its taxonomy kind.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..errors import (
    KIND_WORKER_LOST,
    CompileTimeout,
    PipelineError,
    TransientError,
    failure_kind,
)
from ..faults import active_plan, mark_pool_worker
from ..frontend_py import PythonProgram
from ..perf import PERF
from ..pipeline import CompileResult, generate_program, resolve_pipeline, result_from_payload
from ..pipeline.spec import PipelineLike, pipeline_label
from .cache import CompileCache, cache_key
from .resilience import RetryPolicy


@dataclass(frozen=True)
class CompileRequest:
    """One item of a batch: a (source, pipeline, function) triple.

    ``pipeline`` is a registered pipeline name or a
    :class:`~repro.pipeline.PipelineSpec`.  ``timeout`` is this request's
    deadline in seconds: pure compile stages check it cooperatively (a
    worker reports :class:`~repro.errors.CompileTimeout` when it is
    exceeded), and it is threaded down to the toolchain's hard
    process-group deadline for native builds.
    """

    #: C source text or a Python-frontend program (both are picklable and
    #: content-addressable; see :func:`repro.service.cache.normalize_source`).
    source: object
    pipeline: PipelineLike = "dcir"
    function: Optional[str] = None
    name: Optional[str] = None  # display label; defaults to the pipeline name
    #: Per-request deadline in seconds (None: unbounded pure stages; the
    #: toolchain still enforces its own ``REPRO_CC_TIMEOUT`` default).
    timeout: Optional[float] = None

    @property
    def label(self) -> str:
        return self.name if self.name is not None else pipeline_label(self.pipeline)


@dataclass
class BatchOutcome:
    """Per-item result of :func:`compile_many`: a result or a captured error.

    ``attempts`` counts every dispatch of the request, including ones
    lost to worker death; ``failure_kind`` is the taxonomy bucket of the
    final error (see :func:`repro.errors.failure_kind`) so reports can
    aggregate *classes* of failure instead of string-matching messages.
    """

    request: CompileRequest
    result: Optional[CompileResult] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    error_traceback: Optional[str] = None
    seconds: float = 0.0
    attempts: int = 1
    failure_kind: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def cache_hit(self) -> bool:
        return bool(self.result is not None and self.result.cache_hit)

    @property
    def degraded(self) -> Optional[str]:
        """Why this item's execution backend degraded, when it did."""
        return self.result.backend_diagnostic if self.result is not None else None


RequestLike = Union[CompileRequest, Tuple, Dict, str, "PythonProgram"]


def as_request(item: RequestLike) -> CompileRequest:
    """Coerce tuples/dicts/strings/Python programs into a :class:`CompileRequest`."""
    if isinstance(item, CompileRequest):
        return item
    if isinstance(item, str):
        return CompileRequest(source=item)
    if isinstance(item, PythonProgram):
        return CompileRequest(source=item, name=item.name)
    if isinstance(item, dict):
        return CompileRequest(**item)
    if isinstance(item, tuple):
        return CompileRequest(*item)
    raise TypeError(f"Cannot interpret {type(item).__name__} as a compile request")


def default_executor() -> str:
    """Executor kind used when none is requested."""
    return "process" if (os.cpu_count() or 1) > 1 else "thread"


def _compile_payload(request: CompileRequest) -> Dict:
    """Worker: run the pure compile stage, returning payload or error info.

    Must stay module-level and return only pickle-friendly data so it works
    identically under ``ProcessPoolExecutor`` (pickled across the fork)
    and ``ThreadPoolExecutor``.  The request's deadline is enforced
    cooperatively: pure Python stages cannot be preempted, so it is
    checked before starting and after finishing — a blown deadline
    reports :class:`~repro.errors.CompileTimeout` rather than returning
    late work as if nothing happened.
    """
    plan = active_plan()
    if plan is not None:
        plan.maybe_kill_worker()  # no-op outside marked pool workers
    start = time.perf_counter()
    try:
        budget = request.timeout
        if budget is not None and budget <= 0:
            raise CompileTimeout(
                f"request deadline of {budget:g}s was already spent before "
                "compilation started",
                seconds=budget,
            )
        payload = generate_program(
            request.source, request.pipeline, function=request.function
        ).to_payload()
        elapsed = time.perf_counter() - start
        if budget is not None and elapsed > budget:
            raise CompileTimeout(
                f"pure compile stages took {elapsed:.3f}s, past the "
                f"request's {budget:g}s deadline",
                seconds=budget,
            )
        return {"ok": True, "payload": payload, "seconds": elapsed}
    except Exception as exc:  # per-item isolation: a bad kernel must not kill the sweep
        return {
            "ok": False,
            "error": str(exc) or type(exc).__name__,
            "error_type": type(exc).__name__,
            "error_traceback": traceback.format_exc(),
            "failure_kind": failure_kind(exc),
            "transient": isinstance(exc, TransientError),
            "seconds": time.perf_counter() - start,
        }


def compile_many(
    items: Iterable[RequestLike],
    executor: Optional[str] = None,
    max_workers: Optional[int] = None,
    cache: Optional[CompileCache] = None,
    retry_policy: Optional[RetryPolicy] = None,
    timeout: Optional[float] = None,
) -> List[BatchOutcome]:
    """Compile a batch of requests, in parallel, with per-item error capture.

    ``executor`` is ``"process"``, ``"thread"`` or ``"serial"`` (default:
    picked by :func:`default_executor`).  When a ``cache`` is given, hits
    are served without entering the pool and fresh payloads are stored back,
    so a batch both benefits from and warms the cache.  The returned list
    is index-aligned with ``items``; failed items carry the error message,
    type, traceback, attempt count and taxonomy kind instead of a result.

    ``timeout`` is a default per-request deadline applied to requests that
    do not carry their own.  Transient failures are re-dispatched under
    ``retry_policy`` (default: :meth:`RetryPolicy.from_env`) with its
    backoff between waves; permanent failures are never retried.  A dead
    pool worker takes its whole process pool down — the batch respawns
    the pool once and re-dispatches only the requests whose futures were
    lost, so one OOM-killed worker costs one wave, not the sweep.
    """
    requests = [as_request(item) for item in items]
    if timeout is not None:
        requests = [
            request if request.timeout is not None else replace(request, timeout=timeout)
            for request in requests
        ]
    policy = retry_policy if retry_policy is not None else RetryPolicy.from_env()
    outcomes: List[Optional[BatchOutcome]] = [None] * len(requests)

    # Resolve pipeline designators and cache keys up front: unknown names
    # and unserializable specs fail per-item here (not inside a worker, and
    # never aborting the batch), and resolved specs travel to workers by
    # value, so pipelines registered only in this process still batch.
    resolved: List[Optional[CompileRequest]] = [None] * len(requests)
    keys: List[Optional[str]] = [None] * len(requests)
    pending: List[int] = []
    for index, request in enumerate(requests):
        try:
            spec = resolve_pipeline(request.pipeline)
            if cache is not None:
                keys[index] = cache_key(request.source, spec, request.function)
        except (PipelineError, TypeError, ValueError) as exc:
            outcomes[index] = BatchOutcome(
                request=request,
                error=str(exc),
                error_type=type(exc).__name__,
                error_traceback=traceback.format_exc(),
            )
            continue
        resolved[index] = replace(request, pipeline=spec)
        if cache is not None:
            payload = cache.lookup(keys[index])
            if payload is not None:
                PERF.increment("compile_cache.hits")
                outcomes[index] = BatchOutcome(request=request, result=result_from_payload(payload))
                continue
            PERF.increment("compile_cache.misses")
        pending.append(index)

    kind = executor or default_executor()
    if kind not in ("process", "thread", "serial"):
        raise ValueError(f"Unknown executor {kind!r}; choose 'process', 'thread' or 'serial'")

    attempts: Dict[int, int] = {index: 0 for index in pending}

    def finish(index: int, report: Dict) -> None:
        request = requests[index]
        if report["ok"]:
            payload = report["payload"]
            if cache is not None:
                cache.store(keys[index], payload)
            result = result_from_payload(payload)
            result.cache_hit = False  # freshly compiled, merely shipped as a payload
            if request.timeout is not None:
                result.timeout = request.timeout
            outcomes[index] = BatchOutcome(
                request=request,
                result=result,
                seconds=report["seconds"],
                attempts=max(1, attempts.get(index, 1)),
            )
        else:
            outcomes[index] = BatchOutcome(
                request=request,
                error=report["error"],
                error_type=report["error_type"],
                error_traceback=report["error_traceback"],
                seconds=report["seconds"],
                attempts=max(1, attempts.get(index, 1)),
                failure_kind=report.get("failure_kind") or failure_kind(report["error_type"]),
            )

    def record_exception(index: int, exc: BaseException) -> None:
        outcomes[index] = BatchOutcome(
            request=requests[index],
            error=str(exc) or type(exc).__name__,
            error_type=type(exc).__name__,
            error_traceback=traceback.format_exc(),
            attempts=max(1, attempts.get(index, 1)),
            failure_kind=failure_kind(exc),
        )

    def record_worker_lost(index: int) -> None:
        outcomes[index] = BatchOutcome(
            request=requests[index],
            error=(
                "process pool worker died (killed or OOM?) and the respawned "
                "pool died as well; request abandoned"
            ),
            error_type="WorkerLost",
            attempts=max(1, attempts.get(index, 1)),
            failure_kind=KIND_WORKER_LOST,
        )

    def wants_retry(index: int, report: Dict) -> bool:
        return (
            not report["ok"]
            and bool(report.get("transient"))
            and attempts[index] < policy.max_attempts
        )

    def serial_item(index: int) -> None:
        """Run one item in-process, honouring the retry policy."""
        while True:
            attempts[index] += 1
            report = _compile_payload(resolved[index])
            if wants_retry(index, report):
                PERF.increment("compile_batch.retries")
                policy.sleep(policy.delay(attempts[index]))
                continue
            finish(index, report)
            return

    if kind == "serial" or len(pending) <= 1:
        for index in pending:
            serial_item(index)
    else:
        pool_cls = ProcessPoolExecutor if kind == "process" else ThreadPoolExecutor
        workers = max_workers or min(len(pending), os.cpu_count() or 1)

        def make_pool():
            if pool_cls is ProcessPoolExecutor:
                # The initializer marks workers expendable, so injected
                # worker_kill faults only ever fire in pool children.
                return pool_cls(max_workers=max(1, workers), initializer=mark_pool_worker)
            return pool_cls(max_workers=max(1, workers))

        try:
            pool = make_pool()
        except (OSError, PermissionError):
            # Sandboxes without fork/spawn support: degrade to serial.
            for index in pending:
                serial_item(index)
        else:
            respawned = False
            wave = list(pending)
            try:
                while wave:
                    retry_wave: List[int] = []
                    lost: List[int] = []
                    futures = {}
                    degraded = False
                    for index in wave:
                        if not degraded:
                            try:
                                futures[pool.submit(_compile_payload, resolved[index])] = index
                                continue
                            except (OSError, PermissionError, RuntimeError):
                                # Worker creation is lazy: a sandbox that denies
                                # fork/spawn fails here, not at pool construction.
                                # Degrade the rest of the batch to serial.
                                degraded = True
                        serial_item(index)
                    for future, index in futures.items():
                        attempts[index] += 1
                        try:
                            report = future.result()
                        except BrokenProcessPool:
                            # One dead worker breaks the whole pool: every
                            # in-flight future raises.  Collect the losses;
                            # recovery is decided once, below.
                            lost.append(index)
                            continue
                        except Exception as exc:
                            record_exception(index, exc)
                            continue
                        if wants_retry(index, report):
                            PERF.increment("compile_batch.retries")
                            retry_wave.append(index)
                            continue
                        finish(index, report)
                    if lost:
                        PERF.increment("compile_batch.workers_lost")
                        if not respawned:
                            # Respawn once and re-dispatch only the lost
                            # requests; completed outcomes are untouched.
                            respawned = True
                            pool.shutdown(wait=False)
                            try:
                                pool = make_pool()
                            except (OSError, PermissionError):
                                for index in lost:
                                    record_worker_lost(index)
                            else:
                                PERF.increment("compile_batch.pool_respawns")
                                retry_wave.extend(lost)
                        else:
                            for index in lost:
                                record_worker_lost(index)
                    if retry_wave:
                        policy.sleep(max(policy.delay(attempts[i]) for i in retry_wave))
                    wave = retry_wave
            finally:
                pool.shutdown()

    missing = [index for index, outcome in enumerate(outcomes) if outcome is None]
    if missing:  # pragma: no cover - every path above populates its index
        raise RuntimeError(f"compile_many left outcomes unset at indices {missing}")
    return outcomes


def compile_specs(
    source,
    pipelines: Iterable[PipelineLike],
    function: Optional[str] = None,
    labels: Optional[Iterable[Optional[str]]] = None,
    executor: Optional[str] = None,
    max_workers: Optional[int] = None,
    cache: Optional[CompileCache] = None,
    retry_policy: Optional[RetryPolicy] = None,
    timeout: Optional[float] = None,
) -> List[BatchOutcome]:
    """Compile *one* source through many pipelines — the sweep/tuning shape.

    Thin wrapper over :func:`compile_many` for the common evaluation batch
    where the kernel is fixed and the pipeline varies (ablation studies,
    the auto-tuner's candidate evaluation).  The shared source is hashed
    once per pipeline by the cache key, so equivalent specs — however the
    caller produced them — deduplicate onto a single compilation.
    """
    pipelines = list(pipelines)
    labels = list(labels) if labels is not None else [None] * len(pipelines)
    if len(labels) != len(pipelines):
        raise ValueError(
            f"compile_specs got {len(pipelines)} pipelines but {len(labels)} labels"
        )
    return compile_many(
        [
            CompileRequest(source=source, pipeline=pipeline, function=function, name=label)
            for pipeline, label in zip(pipelines, labels)
        ],
        executor=executor,
        max_workers=max_workers,
        cache=cache,
        retry_policy=retry_policy,
        timeout=timeout,
    )
