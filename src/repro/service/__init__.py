"""Compilation service layer: caching, batching, sessions.

The paper's evaluation (§7) compiles the same kernels through six pipelines
over and over; this subsystem makes such sweeps cheap and scalable:

* :class:`CompileCache` — content-addressed memoization (SHA-256 of
  normalized source + the pipeline spec's canonical serialization +
  function + library version, so custom :class:`~repro.PipelineSpec`
  pipelines content-address correctly) with an in-memory LRU and an
  optional on-disk store (``REPRO_CACHE_DIR``), rehydrating results from
  generated code without re-running any pass;
* :func:`compile_many` — parallel batch compilation over
  ``concurrent.futures`` executors with per-item error capture;
* :class:`Session` — a suite runner that compiles and runs whole workload
  sets with cache reuse and returns a structured :class:`SuiteReport`
  (compile/run time, cache hits, movement and allocation statistics,
  cross-pipeline agreement).

The layer is hardened against a hostile environment
(:mod:`repro.service.resilience`): per-request deadlines, bounded
retries with deterministic backoff (:class:`RetryPolicy`), crash-isolated
process pools that survive killed workers, a checksummed self-healing
disk cache that quarantines corrupt entries, and ``strict``/``fallback``
degradation modes — all exercised deterministically by the fault
injection harness in :mod:`repro.faults`.
"""

from .batch import (
    BatchOutcome,
    CompileRequest,
    as_request,
    compile_many,
    compile_specs,
    default_executor,
)
from .cache import (
    CACHE_DIR_ENV,
    CACHE_FORMAT,
    CacheStats,
    CompileCache,
    cache_key,
    normalize_source,
    payload_digest,
)
from .resilience import (
    DEGRADATION_MODES,
    Deadline,
    RetryPolicy,
    validate_degradation,
)
from .session import SUITE_SCHEMA, Session, SuiteEntry, SuiteReport

__all__ = [
    "BatchOutcome",
    "CACHE_DIR_ENV",
    "CACHE_FORMAT",
    "CacheStats",
    "CompileCache",
    "CompileRequest",
    "DEGRADATION_MODES",
    "Deadline",
    "RetryPolicy",
    "SUITE_SCHEMA",
    "Session",
    "SuiteEntry",
    "SuiteReport",
    "as_request",
    "cache_key",
    "compile_many",
    "compile_specs",
    "default_executor",
    "normalize_source",
    "payload_digest",
    "validate_degradation",
]
