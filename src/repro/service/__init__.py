"""Compilation service layer: caching, batching, sessions.

The paper's evaluation (§7) compiles the same kernels through six pipelines
over and over; this subsystem makes such sweeps cheap and scalable:

* :class:`CompileCache` — content-addressed memoization (SHA-256 of
  normalized source + the pipeline spec's canonical serialization +
  function + library version, so custom :class:`~repro.PipelineSpec`
  pipelines content-address correctly) with an in-memory LRU and an
  optional on-disk store (``REPRO_CACHE_DIR``), rehydrating results from
  generated code without re-running any pass;
* :func:`compile_many` — parallel batch compilation over
  ``concurrent.futures`` executors with per-item error capture;
* :class:`Session` — a suite runner that compiles and runs whole workload
  sets with cache reuse and returns a structured :class:`SuiteReport`
  (compile/run time, cache hits, movement and allocation statistics,
  cross-pipeline agreement).
"""

from .batch import (
    BatchOutcome,
    CompileRequest,
    as_request,
    compile_many,
    compile_specs,
    default_executor,
)
from .cache import (
    CACHE_DIR_ENV,
    CacheStats,
    CompileCache,
    cache_key,
    normalize_source,
)
from .session import SUITE_SCHEMA, Session, SuiteEntry, SuiteReport

__all__ = [
    "BatchOutcome",
    "CACHE_DIR_ENV",
    "CacheStats",
    "CompileCache",
    "CompileRequest",
    "SUITE_SCHEMA",
    "Session",
    "SuiteEntry",
    "SuiteReport",
    "as_request",
    "cache_key",
    "compile_many",
    "compile_specs",
    "default_executor",
    "normalize_source",
]
