"""Bounded execution: deadlines, retry policies and degradation modes.

The compile path talks to things that can hang or die — a ``cc`` process,
a pool worker, an on-disk cache written by a process that was killed
mid-write.  This module is the policy layer that bounds every such wait
and decides what happens when it is exceeded:

* :class:`Deadline` — a monotonic per-request budget threaded from
  :class:`~repro.service.batch.CompileRequest` down to
  ``toolchain.compile_shared(timeout=)``;
* :class:`RetryPolicy` — bounded attempts with exponential backoff,
  retrying only :class:`~repro.errors.TransientError` failures.  The
  clock and sleep functions are injectable, so tests drive deterministic
  backoff schedules with a fake clock and zero real sleeping;
* degradation modes — ``"fallback"`` (default: a failed native backend
  degrades to the interpreted one, recording why) vs ``"strict"``
  (failures surface as typed errors); validated by
  :func:`validate_degradation` and carried by ``Session``/CLI.

Environment knobs (all optional)::

    REPRO_MAX_ATTEMPTS   total attempts per transient failure (default 3)
    REPRO_RETRY_BACKOFF  base backoff seconds (default 0.05; doubles per
                         attempt, capped at REPRO_RETRY_BACKOFF_MAX, 2.0)
    REPRO_CC_TIMEOUT     compiler-process deadline seconds (default 120,
                         <=0 disables; read by repro.codegen.toolchain)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Tuple, Type

from ..errors import TransientError

#: Environment knobs of the default retry policy.
MAX_ATTEMPTS_ENV = "REPRO_MAX_ATTEMPTS"
BACKOFF_ENV = "REPRO_RETRY_BACKOFF"
BACKOFF_MAX_ENV = "REPRO_RETRY_BACKOFF_MAX"

#: The degradation modes a Session (and the CLI) accepts.
DEGRADATION_MODES = ("fallback", "strict")


def validate_degradation(mode: str) -> str:
    """Validate a degradation mode, returning it for chaining."""
    if mode not in DEGRADATION_MODES:
        raise ValueError(
            f"Unknown degradation mode {mode!r}; choose one of "
            + " or ".join(repr(m) for m in DEGRADATION_MODES)
        )
    return mode


@dataclass(frozen=True)
class Deadline:
    """A monotonic time budget for one request.

    Pure-Python compile stages cannot be preempted, so deadlines are
    enforced cooperatively (checked at stage boundaries) for in-process
    work and *hard* (process-group kill) for external processes — the
    toolchain derives its subprocess timeout from :meth:`remaining`.
    """

    seconds: float
    started: float
    clock: Callable[[], float] = field(default=time.monotonic, compare=False)

    @classmethod
    def after(cls, seconds: float, clock: Callable[[], float] = time.monotonic) -> "Deadline":
        return cls(seconds=float(seconds), started=clock(), clock=clock)

    def elapsed(self) -> float:
        return self.clock() - self.started

    def remaining(self) -> float:
        return self.seconds - self.elapsed()

    def expired(self) -> bool:
        return self.remaining() <= 0.0


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    ``max_attempts`` counts *total* attempts (1 = never retry).  Only
    exceptions matching ``retry_on`` (default: the transient taxonomy)
    are retried; permanent failures re-raise immediately.  ``sleep`` and
    ``clock`` are injectable so tests assert the exact backoff schedule
    without real sleeping.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    retry_on: Tuple[Type[BaseException], ...] = (TransientError,)
    sleep: Callable[[float], None] = field(default=time.sleep, compare=False)
    clock: Callable[[], float] = field(default=time.monotonic, compare=False)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")

    @classmethod
    def from_env(cls, environ=None, **overrides) -> "RetryPolicy":
        """The default policy, with ``REPRO_*`` environment overrides."""
        import os

        environ = environ if environ is not None else os.environ
        settings = {}
        if environ.get(MAX_ATTEMPTS_ENV):
            settings["max_attempts"] = max(1, int(environ[MAX_ATTEMPTS_ENV]))
        if environ.get(BACKOFF_ENV):
            settings["backoff_base"] = max(0.0, float(environ[BACKOFF_ENV]))
        if environ.get(BACKOFF_MAX_ENV):
            settings["backoff_max"] = max(0.0, float(environ[BACKOFF_MAX_ENV]))
        settings.update(overrides)
        return cls(**settings)

    @classmethod
    def none(cls) -> "RetryPolicy":
        """A single-attempt policy (retries disabled)."""
        return cls(max_attempts=1)

    def with_(self, **overrides) -> "RetryPolicy":
        return replace(self, **overrides)

    # -- the schedule -----------------------------------------------------------
    def delay(self, attempt: int) -> float:
        """Backoff before the attempt *after* ``attempt`` (1-based)."""
        if attempt < 1:
            return 0.0
        return min(
            self.backoff_max,
            self.backoff_base * (self.backoff_factor ** (attempt - 1)),
        )

    def should_retry(self, error: BaseException, attempt: int) -> bool:
        """Whether ``error`` on (1-based) ``attempt`` warrants another try."""
        return attempt < self.max_attempts and isinstance(error, self.retry_on)

    # -- execution --------------------------------------------------------------
    def run(self, fn: Callable[[], object], describe: str = "operation"):
        """Call ``fn`` under this policy; returns ``(value, attempts)``.

        On exhaustion the last error is re-raised with ``.attempts`` set,
        so callers can record how hard the operation was tried.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn(), attempt
            except BaseException as exc:
                if not self.should_retry(exc, attempt):
                    try:
                        exc.attempts = attempt  # best effort: slots-only excs
                    except AttributeError:
                        pass
                    raise
                self.sleep(self.delay(attempt))


__all__ = [
    "BACKOFF_ENV",
    "BACKOFF_MAX_ENV",
    "DEGRADATION_MODES",
    "Deadline",
    "MAX_ATTEMPTS_ENV",
    "RetryPolicy",
    "validate_degradation",
]
