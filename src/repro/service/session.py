"""Compilation sessions and the suite runner.

A :class:`Session` ties the service layer together: one compile cache, one
executor policy, and a suite runner that compiles and runs a whole workload
set (e.g. all PolyBench kernels × selected pipelines) the way the paper's
evaluation does — reporting compile time, run time, cache hits and the
movement/allocation statistics the cost model provides, and cross-checking
that every pipeline agrees on each workload's output.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import failure_kind as classify_failure
from ..pipeline import PAPER_PIPELINES, CompileResult, resolve_pipeline, run_compiled
from ..pipeline.spec import PipelineLike, pipeline_label
from .batch import BatchOutcome, CompileRequest, compile_many
from .cache import CacheStats, CompileCache
from .resilience import RetryPolicy, validate_degradation


@dataclass
class SuiteEntry:
    """One (workload × pipeline) cell of a suite run."""

    workload: str
    pipeline: str
    #: Content address (:meth:`~repro.PipelineSpec.content_id`) of the
    #: pipeline spec this cell compiled through — the stable identity that
    #: makes suite dumps diffable across runs and registry renames.
    spec_id: Optional[str] = None
    compile_seconds: float = 0.0
    run_seconds: float = 0.0
    cache_hit: bool = False
    return_value: Optional[float] = None
    allocations: int = 0
    moved_bytes: Optional[float] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    #: Taxonomy bucket of the error (see :func:`repro.errors.failure_kind`).
    failure_kind: Optional[str] = None
    #: Total compile dispatches this cell consumed (retries included).
    attempts: int = 1
    #: Diagnostic recorded when this cell's execution backend degraded
    #: (e.g. a native build that fell back to the interpreted runner).
    degraded: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> Dict:
        """JSON-stable snapshot of this cell."""
        return {
            "workload": self.workload,
            "pipeline": self.pipeline,
            "spec_id": self.spec_id,
            "compile_seconds": self.compile_seconds,
            "run_seconds": self.run_seconds,
            "cache_hit": self.cache_hit,
            "return_value": self.return_value,
            "allocations": self.allocations,
            "moved_bytes": self.moved_bytes,
            "error": self.error,
            "error_type": self.error_type,
            "failure_kind": self.failure_kind,
            "attempts": self.attempts,
            "degraded": self.degraded,
        }


#: JSON schema tag of :meth:`SuiteReport.to_dict` documents.
#: (v2: entries carry ``failure_kind``/``attempts``/``degraded``.)
SUITE_SCHEMA = "repro-suite/v2"


@dataclass
class SuiteReport:
    """Structured result of one suite run."""

    entries: List[SuiteEntry] = field(default_factory=list)
    wall_seconds: float = 0.0
    cache_stats: Optional[CacheStats] = None

    @property
    def ok(self) -> bool:
        return all(entry.ok for entry in self.entries)

    @property
    def failures(self) -> List[SuiteEntry]:
        return [entry for entry in self.entries if not entry.ok]

    @property
    def degraded_entries(self) -> List[SuiteEntry]:
        """Entries that succeeded only by degrading their backend."""
        return [entry for entry in self.entries if entry.ok and entry.degraded]

    @property
    def cache_hits(self) -> int:
        return sum(1 for entry in self.entries if entry.cache_hit)

    @property
    def compile_seconds(self) -> float:
        return sum(entry.compile_seconds for entry in self.entries)

    @property
    def run_seconds(self) -> float:
        return sum(entry.run_seconds for entry in self.entries)

    def by_workload(self) -> Dict[str, List[SuiteEntry]]:
        grouped: Dict[str, List[SuiteEntry]] = {}
        for entry in self.entries:
            grouped.setdefault(entry.workload, []).append(entry)
        return grouped

    def disagreements(self, rel: float = 1e-9) -> Dict[str, List[SuiteEntry]]:
        """Workloads whose pipelines do not agree on the return value.

        The first successful entry of each workload is the reference; an
        entry disagrees when its return value differs by more than ``rel``
        relatively (``nan`` never agrees).  Differential testing across the
        six pipelines is the suite-runner's correctness oracle, mirroring
        the paper's cross-pipeline checksum validation.
        """
        bad: Dict[str, List[SuiteEntry]] = {}
        for workload, entries in self.by_workload().items():
            good = [entry for entry in entries if entry.ok and entry.return_value is not None]
            if len(good) < 2:
                continue
            reference = good[0].return_value
            scale = max(abs(reference), 1.0)
            mismatched = [
                entry
                for entry in good[1:]
                if not (abs(entry.return_value - reference) <= rel * scale)
            ]
            if mismatched:
                bad[workload] = mismatched
        return bad

    def to_dict(self) -> Dict:
        """Self-describing, JSON-stable document of the whole suite run.

        Carries the library version and the spec ``content_id`` of every
        entry, so dumped artifacts (e.g. from CI) are diffable across runs
        and unambiguous about exactly which pipeline contents produced
        each number.
        """
        from .. import __version__

        return {
            "schema": SUITE_SCHEMA,
            "version": __version__,
            "wall_seconds": self.wall_seconds,
            "cache_hits": self.cache_hits,
            "degraded": len(self.degraded_entries),
            "entries": [entry.to_dict() for entry in self.entries],
        }

    def table(self) -> str:
        """Render the report as an aligned text table."""
        header = (
            f"{'workload':<18}{'pipeline':<10}{'compile':>10}{'run':>10}"
            f"{'cache':>7}{'allocs':>8}  result"
        )
        lines = [header, "-" * len(header)]
        for entry in self.entries:
            if entry.ok:
                value = f"{entry.return_value:.6g}" if entry.return_value is not None else "-"
                lines.append(
                    f"{entry.workload:<18}{entry.pipeline:<10}"
                    f"{entry.compile_seconds * 1e3:>8.1f}ms{entry.run_seconds * 1e3:>8.2f}ms"
                    f"{'hit' if entry.cache_hit else 'miss':>7}{entry.allocations:>8}  {value}"
                )
            else:
                lines.append(
                    f"{entry.workload:<18}{entry.pipeline:<10}"
                    f"{'-':>10}{'-':>10}{'-':>7}{'-':>8}  {entry.error_type}: {entry.error}"
                )
        lines.append(
            f"total: compile {self.compile_seconds:.2f}s, run {self.run_seconds:.2f}s, "
            f"{self.cache_hits}/{len(self.entries)} cache hits, wall {self.wall_seconds:.2f}s"
        )
        degraded = self.degraded_entries
        if degraded:
            lines.append(
                f"degraded backends: {len(degraded)} entries fell back "
                "(see SuiteEntry.degraded for diagnostics)"
            )
        return "\n".join(lines)


#: Workload sets accepted by the suite runner: a name→source mapping or an
#: iterable of (name, source) pairs.
WorkloadsLike = Union[Mapping[str, str], Iterable[Tuple[str, str]]]


class Session:
    """A compilation service session: cache + executor policy + suite runner.

    The session also carries the robustness policy every compile under it
    inherits: a default per-request ``timeout`` (seconds), a
    ``retry_policy`` for transient failures (default: environment-driven
    :meth:`~repro.service.resilience.RetryPolicy.from_env`), and a
    ``degradation`` mode — ``"fallback"`` (a failed native backend
    degrades to the interpreted one, recorded per entry) or ``"strict"``
    (failures surface as typed errors).
    """

    def __init__(
        self,
        cache: Optional[CompileCache] = None,
        cache_dir: Optional[str] = None,
        executor: Optional[str] = None,
        max_workers: Optional[int] = None,
        timeout: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        degradation: str = "fallback",
    ):
        if cache is not None and cache_dir is not None:
            raise ValueError("Pass either a cache instance or cache_dir, not both")
        self.cache = cache if cache is not None else CompileCache(directory=cache_dir)
        self.executor = executor
        self.max_workers = max_workers
        self.timeout = timeout
        self.retry_policy = retry_policy
        self.degradation = validate_degradation(degradation)

    @property
    def stats(self) -> CacheStats:
        return self.cache.stats

    def _apply_policy(self, result: CompileResult) -> CompileResult:
        """Stamp the session's degradation/deadline policy onto a result."""
        result.degradation = self.degradation
        if self.timeout is not None and result.timeout is None:
            result.timeout = self.timeout
        return result

    def compile(
        self, source: str, pipeline: PipelineLike = "dcir", function: Optional[str] = None
    ) -> CompileResult:
        """Cached single compile of a pipeline name or spec
        (see :meth:`CompileCache.get_or_compile`)."""
        return self._apply_policy(self.cache.get_or_compile(source, pipeline, function=function))

    def compile_many(
        self, items: Iterable, executor: Optional[str] = None, max_workers: Optional[int] = None
    ) -> List[BatchOutcome]:
        """Cached parallel batch compile with per-item error capture."""
        outcomes = compile_many(
            items,
            executor=executor or self.executor,
            max_workers=max_workers or self.max_workers,
            cache=self.cache,
            retry_policy=self.retry_policy,
            timeout=self.timeout,
        )
        for outcome in outcomes:
            if outcome.result is not None:
                self._apply_policy(outcome.result)
        return outcomes

    def run_suite(
        self,
        workloads: WorkloadsLike,
        pipelines: Sequence[PipelineLike] = ("dcir",),
        repetitions: int = 1,
        parallel: bool = False,
        symbols: Optional[Dict[str, float]] = None,
    ) -> SuiteReport:
        """Compile and run every workload through every pipeline.

        ``pipelines`` mixes registered names and
        :class:`~repro.pipeline.PipelineSpec` values freely — custom specs
        sweep exactly like the built-in six (entries are labelled with the
        spec's display label).  With ``parallel=True`` the cold compiles
        are batched through the session executor first — entries keep
        honest statistics (a compile done in the batch phase reports the
        worker's compile time and ``cache_hit=False``, not the ~ms cache
        rehydration that follows); runs always happen sequentially
        in-process (they are being timed).  Compilation or runtime errors
        are captured per entry, never aborting the remaining suite.

        ``symbols`` needs a live SDFG to evaluate, so ``moved_bytes`` is
        None for entries rehydrated from the cache (see
        :meth:`~repro.pipeline.CompileResult.movement_report`).
        """
        named = list(workloads.items()) if isinstance(workloads, Mapping) else list(workloads)
        pairs = [(name, source, pipeline) for name, source in named for pipeline in pipelines]
        start = time.perf_counter()

        # Content identity per pipeline (entries stay diffable even when a
        # registered name is later redefined); unknown names stay None —
        # their compile fails per-entry below with the real error.
        spec_ids: Dict[int, Optional[str]] = {}
        for position, pipeline in enumerate(pipelines):
            try:
                spec_ids[position] = resolve_pipeline(pipeline).content_id()
            except Exception:
                spec_ids[position] = None

        batched: List[Optional[BatchOutcome]] = [None] * len(pairs)
        if parallel and len(pairs) > 1:
            batched = self.compile_many(
                [CompileRequest(source=source, pipeline=pipeline, name=name)
                 for name, source, pipeline in pairs]
            )  # warms the cache; per-item errors re-surface in the loop below

        report = SuiteReport()
        for index, (name, source, pipeline) in enumerate(pairs):
            entry = SuiteEntry(
                workload=name,
                pipeline=pipeline_label(pipeline),
                spec_id=spec_ids[index % len(pipelines)],
            )
            outcome = batched[index]
            if outcome is not None and not outcome.ok:
                # Already failed in the batch phase; don't recompile just to
                # observe the same error again.
                entry.compile_seconds = outcome.seconds
                entry.error = outcome.error
                entry.error_type = outcome.error_type
                entry.failure_kind = outcome.failure_kind
                entry.attempts = outcome.attempts
                report.entries.append(entry)
                continue
            if outcome is not None:
                # Use the batch result directly (its payload may already
                # have been evicted from the LRU), attributing the worker's
                # compile time and cache status, not a rehydration's.
                compiled = outcome.result
                entry.compile_seconds = outcome.seconds
                entry.cache_hit = outcome.cache_hit
                entry.attempts = outcome.attempts
            else:
                compile_start = time.perf_counter()
                try:
                    compiled = self.compile(source, pipeline)
                except Exception as exc:
                    entry.compile_seconds = time.perf_counter() - compile_start
                    entry.error = str(exc)
                    entry.error_type = type(exc).__name__
                    entry.failure_kind = classify_failure(exc)
                    entry.attempts = max(1, getattr(exc, "attempts", 1))
                    report.entries.append(entry)
                    continue
                entry.compile_seconds = time.perf_counter() - compile_start
                entry.cache_hit = compiled.cache_hit
            movement = compiled.movement_report(symbols)
            if movement is not None:
                entry.moved_bytes = movement.bytes_moved
            try:
                run = run_compiled(compiled, repetitions=repetitions)
            except Exception as exc:
                entry.error = str(exc)
                entry.error_type = type(exc).__name__
                entry.failure_kind = classify_failure(exc)
                entry.degraded = compiled.backend_diagnostic
                report.entries.append(entry)
                continue
            entry.run_seconds = run.seconds
            entry.allocations = run.allocations
            entry.degraded = compiled.backend_diagnostic
            value = run.return_value
            entry.return_value = float(value) if value is not None else None
            report.entries.append(entry)

        report.wall_seconds = time.perf_counter() - start
        report.cache_stats = self.cache.stats.snapshot()
        return report

    def run_polybench(
        self,
        kernels: Optional[Sequence[str]] = None,
        # A fixed snapshot of the paper's six, not the live PIPELINES view:
        # registering a custom pipeline must not silently widen the default
        # Fig. 6 sweep (or feed unsound ablations to its differential check).
        pipelines: Sequence[PipelineLike] = PAPER_PIPELINES,
        sizes: Optional[Dict[str, Dict[str, int]]] = None,
        repetitions: int = 1,
        parallel: bool = False,
    ) -> SuiteReport:
        """Run the PolyBench workload set (the paper's Fig. 6 sweep)."""
        from ..workloads import polybench_suite

        return self.run_suite(
            polybench_suite(kernels, sizes=sizes),
            pipelines=pipelines,
            repetitions=repetitions,
            parallel=parallel,
        )
