"""Core IR data structures: values, operations, blocks and regions.

This is the reproduction's equivalent of MLIR's core IR: SSA values with
use lists, operations carrying operands/results/attributes/regions, basic
blocks with arguments, and regions.  Operations are instances of
:class:`Operation` subclasses registered by their dialect-qualified name
(e.g. ``"arith.addi"``); a generic :class:`Operation` can represent any
unregistered op, mirroring MLIR's generic op form.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .types import Type


class IRError(Exception):
    """Raised for structurally invalid IR manipulations."""


# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------


class Use:
    """A single use of a value: (operation, operand index)."""

    __slots__ = ("operation", "index")

    def __init__(self, operation: "Operation", index: int):
        self.operation = operation
        self.index = index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Use({self.operation.name}, {self.index})"


class Value:
    """An SSA value: either an operation result or a block argument."""

    __slots__ = ("type", "uses", "name_hint")

    def __init__(self, type: Type, name_hint: Optional[str] = None):
        self.type = type
        self.uses: List[Use] = []
        self.name_hint = name_hint

    # Use-list management (maintained by Operation.set_operand) --------------
    def add_use(self, operation: "Operation", index: int) -> None:
        self.uses.append(Use(operation, index))

    def remove_use(self, operation: "Operation", index: int) -> None:
        for position, use in enumerate(self.uses):
            if use.operation is operation and use.index == index:
                del self.uses[position]
                return

    def has_uses(self) -> bool:
        return bool(self.uses)

    def users(self) -> List["Operation"]:
        """Distinct operations using this value, in use order."""
        seen: List[Operation] = []
        for use in self.uses:
            if use.operation not in seen:
                seen.append(use.operation)
        return seen

    def replace_all_uses_with(self, replacement: "Value") -> None:
        if replacement is self:
            return
        for use in list(self.uses):
            use.operation.set_operand(use.index, replacement)

    @property
    def owner(self):
        """The operation or block that defines this value."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name_hint or ''}: {self.type}>"


class OpResult(Value):
    """Result value produced by an operation."""

    __slots__ = ("operation", "result_index")

    def __init__(self, operation: "Operation", index: int, type: Type):
        super().__init__(type)
        self.operation = operation
        self.result_index = index

    @property
    def owner(self) -> "Operation":
        return self.operation


class BlockArgument(Value):
    """Argument of a basic block (function/loop arguments)."""

    __slots__ = ("block", "arg_index")

    def __init__(self, block: "Block", index: int, type: Type):
        super().__init__(type)
        self.block = block
        self.arg_index = index

    @property
    def owner(self) -> "Block":
        return self.block


# ---------------------------------------------------------------------------
# Operations
# ---------------------------------------------------------------------------

OPERATION_REGISTRY: Dict[str, type] = {}


def register_operation(cls: type) -> type:
    """Class decorator registering an :class:`Operation` subclass by name."""
    name = getattr(cls, "OP_NAME", None)
    if not name:
        raise IRError(f"Operation class {cls.__name__} lacks an OP_NAME")
    OPERATION_REGISTRY[name] = cls
    return cls


class Operation:
    """A single IR operation.

    Subclasses set ``OP_NAME`` and may set the trait flags below.  Anything
    not represented by a subclass can still be built as a generic
    ``Operation(name, ...)``.
    """

    OP_NAME: str = "builtin.unregistered"

    #: The op writes memory or has other observable effects (calls, stores).
    HAS_SIDE_EFFECTS: bool = False
    #: The op reads memory (loads); relevant for LICM and CSE.
    READS_MEMORY: bool = False
    #: The op allocates or frees memory.
    IS_ALLOCATION: bool = False
    #: The op terminates its block (return, yield, branch).
    IS_TERMINATOR: bool = False
    #: Regions of the op cannot reference SSA values defined outside it.
    IS_ISOLATED_FROM_ABOVE: bool = False
    #: Operands can be reordered without changing semantics.
    IS_COMMUTATIVE: bool = False

    def __init__(
        self,
        name: Optional[str] = None,
        operands: Sequence[Value] = (),
        result_types: Sequence[Type] = (),
        attributes: Optional[Dict[str, Any]] = None,
        regions: int = 0,
    ):
        self.name = name or self.OP_NAME
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.parent_block: Optional[Block] = None
        self._operands: List[Value] = []
        self.results: List[OpResult] = [
            OpResult(self, index, type) for index, type in enumerate(result_types)
        ]
        self.regions: List[Region] = [Region(self) for _ in range(regions)]
        for value in operands:
            self.append_operand(value)

    # -- operand management ---------------------------------------------------
    @property
    def operands(self) -> Tuple[Value, ...]:
        return tuple(self._operands)

    def append_operand(self, value: Value) -> None:
        if not isinstance(value, Value):
            raise IRError(f"Operand of {self.name} must be a Value, got {value!r}")
        index = len(self._operands)
        self._operands.append(value)
        value.add_use(self, index)

    def set_operand(self, index: int, value: Value) -> None:
        old = self._operands[index]
        old.remove_use(self, index)
        self._operands[index] = value
        value.add_use(self, index)

    def replace_uses_of(self, old: Value, new: Value) -> None:
        for index, operand in enumerate(self._operands):
            if operand is old:
                self.set_operand(index, new)

    def drop_all_operand_uses(self) -> None:
        for index, operand in enumerate(self._operands):
            operand.remove_use(self, index)
        self._operands = []

    def operand(self, index: int) -> Value:
        return self._operands[index]

    # -- results ---------------------------------------------------------------
    @property
    def result(self) -> OpResult:
        if len(self.results) != 1:
            raise IRError(f"Operation {self.name} has {len(self.results)} results, expected 1")
        return self.results[0]

    def has_used_results(self) -> bool:
        return any(result.has_uses() for result in self.results)

    # -- structure -------------------------------------------------------------
    @property
    def parent_op(self) -> Optional["Operation"]:
        if self.parent_block is not None and self.parent_block.parent_region is not None:
            return self.parent_block.parent_region.parent_op
        return None

    def ancestors(self) -> Iterator["Operation"]:
        current = self.parent_op
        while current is not None:
            yield current
            current = current.parent_op

    def is_ancestor_of(self, other: "Operation") -> bool:
        return any(ancestor is self for ancestor in other.ancestors())

    def region(self, index: int = 0) -> "Region":
        return self.regions[index]

    def body_block(self, region_index: int = 0) -> "Block":
        """First block of the given region (the common single-block case)."""
        region = self.regions[region_index]
        if not region.blocks:
            raise IRError(f"Operation {self.name} region {region_index} has no blocks")
        return region.blocks[0]

    def walk(self, post_order: bool = False) -> Iterator["Operation"]:
        """Iterate over this op and all nested ops.

        The traversal reads the live operation lists without defensive
        copies; callers that erase or move operations during the walk must
        snapshot it first (``for op in list(module.walk()): ...``), as the
        mutating passes do.
        """
        if not post_order:
            yield self
        for region in self.regions:
            for block in region.blocks:
                for op in block.operations:
                    yield from op.walk(post_order=post_order)
        if post_order:
            yield self

    # -- mutation ---------------------------------------------------------------
    def erase(self) -> None:
        """Remove the op from its block.  Results must be unused."""
        for result in self.results:
            if result.has_uses():
                raise IRError(
                    f"Cannot erase {self.name}: result still has "
                    f"{len(result.uses)} use(s)"
                )
        # Recursively drop nested ops so their operand uses disappear too
        # (dropping uses does not alter the block/region lists).
        for region in self.regions:
            for block in region.blocks:
                for op in block.operations:
                    op.drop_all_operand_uses()
                    for result in op.results:
                        result.uses.clear()
        self.drop_all_operand_uses()
        if self.parent_block is not None:
            self.parent_block.remove(self)

    def move_before(self, other: "Operation") -> None:
        if other.parent_block is None:
            raise IRError("Cannot move before an op that is not in a block")
        if self.parent_block is not None:
            self.parent_block.remove(self)
        block = other.parent_block
        block.insert_before(other, self)

    def move_after(self, other: "Operation") -> None:
        if other.parent_block is None:
            raise IRError("Cannot move after an op that is not in a block")
        if self.parent_block is not None:
            self.parent_block.remove(self)
        block = other.parent_block
        block.insert_after(other, self)

    def clone(self, value_map: Optional[Dict[Value, Value]] = None) -> "Operation":
        """Deep-copy the operation (and nested regions), remapping operands."""
        value_map = value_map if value_map is not None else {}
        cls = type(self)
        new_op = cls.__new__(cls)
        Operation.__init__(
            new_op,
            name=self.name,
            operands=[value_map.get(operand, operand) for operand in self._operands],
            result_types=[result.type for result in self.results],
            attributes=_clone_attributes(self.attributes),
            regions=0,
        )
        for old_result, new_result in zip(self.results, new_op.results):
            value_map[old_result] = new_result
        for region in self.regions:
            new_region = Region(new_op)
            new_op.regions.append(new_region)
            for block in region.blocks:
                new_block = Block([arg.type for arg in block.arguments])
                new_region.append_block(new_block)
                for old_arg, new_arg in zip(block.arguments, new_block.arguments):
                    value_map[old_arg] = new_arg
            for block, new_block in zip(region.blocks, new_region.blocks):
                for op in block.operations:
                    new_block.append(op.clone(value_map))
        return new_op

    # -- effect queries ----------------------------------------------------------
    def has_side_effects(self) -> bool:
        """Whether the op (including nested ops) has observable side effects."""
        if self.HAS_SIDE_EFFECTS or self.IS_ALLOCATION:
            return True
        for region in self.regions:
            for block in region.blocks:
                for op in block.operations:
                    if op.IS_TERMINATOR:
                        continue
                    if op.has_side_effects():
                        return True
        return False

    def is_pure(self) -> bool:
        return not self.has_side_effects() and not self.READS_MEMORY and not self.IS_TERMINATOR

    # -- misc ---------------------------------------------------------------------
    def get_attr(self, key: str, default: Any = None) -> Any:
        return self.attributes.get(key, default)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from .printer import print_operation

        try:
            return print_operation(self)
        except Exception:
            return f"<{self.name}>"


def _clone_attributes(attributes: Dict[str, Any]) -> Dict[str, Any]:
    cloned: Dict[str, Any] = {}
    for key, value in attributes.items():
        if isinstance(value, list):
            cloned[key] = list(value)
        elif isinstance(value, dict):
            cloned[key] = dict(value)
        else:
            cloned[key] = value
    return cloned


# ---------------------------------------------------------------------------
# Blocks and regions
# ---------------------------------------------------------------------------


class Block:
    """A straight-line sequence of operations with block arguments."""

    def __init__(self, arg_types: Sequence[Type] = ()):
        self.arguments: List[BlockArgument] = []
        self.operations: List[Operation] = []
        self.parent_region: Optional[Region] = None
        for type in arg_types:
            self.add_argument(type)

    # -- arguments -----------------------------------------------------------
    def add_argument(self, type: Type, name_hint: Optional[str] = None) -> BlockArgument:
        argument = BlockArgument(self, len(self.arguments), type)
        argument.name_hint = name_hint
        self.arguments.append(argument)
        return argument

    def erase_argument(self, index: int) -> None:
        argument = self.arguments[index]
        if argument.has_uses():
            raise IRError(f"Cannot erase block argument {index}: still in use")
        del self.arguments[index]
        for position, remaining in enumerate(self.arguments):
            remaining.arg_index = position

    # -- operation list -------------------------------------------------------
    def append(self, op: Operation) -> Operation:
        op.parent_block = self
        self.operations.append(op)
        return op

    def insert(self, index: int, op: Operation) -> Operation:
        op.parent_block = self
        self.operations.insert(index, op)
        return op

    def insert_before(self, anchor: Operation, op: Operation) -> Operation:
        index = self.operations.index(anchor)
        return self.insert(index, op)

    def insert_after(self, anchor: Operation, op: Operation) -> Operation:
        index = self.operations.index(anchor)
        return self.insert(index + 1, op)

    def remove(self, op: Operation) -> None:
        self.operations.remove(op)
        op.parent_block = None

    def index_of(self, op: Operation) -> int:
        return self.operations.index(op)

    @property
    def terminator(self) -> Optional[Operation]:
        if self.operations and self.operations[-1].IS_TERMINATOR:
            return self.operations[-1]
        return None

    @property
    def parent_op(self) -> Optional[Operation]:
        if self.parent_region is not None:
            return self.parent_region.parent_op
        return None

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def __len__(self) -> int:
        return len(self.operations)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Block with {len(self.operations)} ops>"


class Region:
    """A list of blocks owned by an operation."""

    def __init__(self, parent_op: Optional[Operation] = None):
        self.blocks: List[Block] = []
        self.parent_op = parent_op

    def append_block(self, block: Block) -> Block:
        block.parent_region = self
        self.blocks.append(block)
        return block

    def add_block(self, arg_types: Sequence[Type] = ()) -> Block:
        return self.append_block(Block(arg_types))

    @property
    def entry_block(self) -> Block:
        if not self.blocks:
            raise IRError("Region has no blocks")
        return self.blocks[0]

    def __iter__(self) -> Iterator[Block]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)


# ---------------------------------------------------------------------------
# Builder
# ---------------------------------------------------------------------------


class Builder:
    """Creates operations at an insertion point, in MLIR-builder style."""

    def __init__(self, block: Optional[Block] = None, index: Optional[int] = None):
        self.block = block
        self.index = index  # None means "append at end"

    # -- positioning -----------------------------------------------------------
    @staticmethod
    def at_end(block: Block) -> "Builder":
        return Builder(block, None)

    @staticmethod
    def at_start(block: Block) -> "Builder":
        return Builder(block, 0)

    @staticmethod
    def before(op: Operation) -> "Builder":
        if op.parent_block is None:
            raise IRError("Operation is not inside a block")
        return Builder(op.parent_block, op.parent_block.index_of(op))

    @staticmethod
    def after(op: Operation) -> "Builder":
        if op.parent_block is None:
            raise IRError("Operation is not inside a block")
        return Builder(op.parent_block, op.parent_block.index_of(op) + 1)

    def set_insertion_point_to_end(self, block: Block) -> None:
        self.block = block
        self.index = None

    def set_insertion_point_to_start(self, block: Block) -> None:
        self.block = block
        self.index = 0

    # -- insertion ---------------------------------------------------------------
    def insert(self, op: Operation) -> Operation:
        if self.block is None:
            raise IRError("Builder has no insertion block")
        if self.index is None:
            self.block.append(op)
        else:
            self.block.insert(self.index, op)
            self.index += 1
        return op

    def create(self, op_class_or_name, *args, **kwargs) -> Operation:
        """Build an operation via its ``build`` classmethod (or generically)."""
        if isinstance(op_class_or_name, str):
            op = Operation(op_class_or_name, *args, **kwargs)
            return self.insert(op)
        build = getattr(op_class_or_name, "build", None)
        if build is None:
            op = op_class_or_name(*args, **kwargs)
        else:
            op = build(*args, **kwargs)
        return self.insert(op)


# ---------------------------------------------------------------------------
# Utility traversals
# ---------------------------------------------------------------------------


def walk_operations(root: Operation, predicate: Optional[Callable[[Operation], bool]] = None):
    """Yield all ops under ``root`` (inclusive), optionally filtered."""
    for op in root.walk():
        if predicate is None or predicate(op):
            yield op


def defining_op(value: Value) -> Optional[Operation]:
    """The operation defining ``value``, or None for block arguments."""
    if isinstance(value, OpResult):
        return value.operation
    return None


def values_defined_above(region: Region) -> set:
    """SSA values used inside ``region`` but defined outside it."""
    inside_values: set = set()
    for block in region.blocks:
        inside_values.update(block.arguments)
        for op in block.operations:
            for nested in op.walk():
                inside_values.update(nested.results)
                for nested_region in nested.regions:
                    for nested_block in nested_region.blocks:
                        inside_values.update(nested_block.arguments)
    external: set = set()
    for block in region.blocks:
        for op in block.operations:
            for nested in op.walk():
                for operand in nested.operands:
                    if operand not in inside_values:
                        external.add(operand)
    return external
