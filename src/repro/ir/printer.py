"""Textual printer for the MLIR-like IR.

Produces an MLIR-flavoured textual form, primarily for tests, examples and
debugging.  Operations print in a near-generic form::

    %2 = arith.addi %0, %1 : i32
    scf.for %i = %c0 to %c100 step %c1 {
      ...
    }

The printer assigns SSA names (``%0``, ``%1``, …) per top-level isolated
scope, honouring value name hints when present (``%arg0``, ``%alpha``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .core import Block, Operation, Region, Value
from .types import FunctionType, Type


class _NameScope:
    """Assigns unique textual names to SSA values."""

    def __init__(self):
        self.names: Dict[Value, str] = {}
        self.used: set = set()
        self.counter = 0

    def name(self, value: Value) -> str:
        if value in self.names:
            return self.names[value]
        hint = value.name_hint
        if hint:
            candidate = f"%{hint}"
            suffix = 0
            while candidate in self.used:
                suffix += 1
                candidate = f"%{hint}_{suffix}"
        else:
            candidate = f"%{self.counter}"
            while candidate in self.used:
                self.counter += 1
                candidate = f"%{self.counter}"
            self.counter += 1
        self.names[value] = candidate
        self.used.add(candidate)
        return candidate


def _format_attribute(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return f'"{value}"'
    if isinstance(value, Type):
        return str(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_format_attribute(item) for item in value) + "]"
    if isinstance(value, dict):
        inner = ", ".join(f"{key} = {_format_attribute(item)}" for key, item in value.items())
        return "{" + inner + "}"
    return str(value)


def _format_attributes(op: Operation, skip: tuple = ()) -> str:
    visible = {key: value for key, value in op.attributes.items() if key not in skip}
    if not visible:
        return ""
    inner = ", ".join(f"{key} = {_format_attribute(value)}" for key, value in visible.items())
    return " {" + inner + "}"


class IRPrinter:
    """Stateful printer; one instance per top-level print call."""

    def __init__(self, indent: str = "  "):
        self.indent_unit = indent
        self.lines: List[str] = []
        self.scope = _NameScope()

    # -- public API ------------------------------------------------------------
    def print(self, op: Operation) -> str:
        self._print_op(op, depth=0)
        return "\n".join(self.lines)

    # -- helpers ----------------------------------------------------------------
    def _emit(self, depth: int, text: str) -> None:
        self.lines.append(self.indent_unit * depth + text)

    def _value(self, value: Value) -> str:
        return self.scope.name(value)

    def _results_prefix(self, op: Operation) -> str:
        if not op.results:
            return ""
        names = ", ".join(self._value(result) for result in op.results)
        return f"{names} = "

    def _operand_list(self, op: Operation) -> str:
        return ", ".join(self._value(operand) for operand in op.operands)

    def _print_region(self, region: Region, depth: int) -> None:
        for block_index, block in enumerate(region.blocks):
            if block_index > 0 or block.arguments:
                args = ", ".join(
                    f"{self._value(arg)}: {arg.type}" for arg in block.arguments
                )
                label = f"^bb{block_index}" + (f"({args})" if args else "")
                self._emit(depth, label + ":")
            for op in block.operations:
                self._print_op(op, depth + 1 if (block_index > 0 or block.arguments) else depth + 1)

    # -- op printing -------------------------------------------------------------
    def _print_op(self, op: Operation, depth: int) -> None:
        custom = getattr(op, "print_custom", None)
        if custom is not None:
            text = custom(self, depth)
            if text is not None:
                return
        self._print_generic(op, depth)

    def _print_generic(self, op: Operation, depth: int) -> None:
        head = self._results_prefix(op) + op.name
        operands = self._operand_list(op)
        if operands:
            head += f" {operands}"
        head += _format_attributes(op)
        if op.results:
            types = ", ".join(str(result.type) for result in op.results)
            head += f" : {types}"
        elif op.operands:
            types = ", ".join(str(operand.type) for operand in op.operands)
            head += f" : {types}"
        if op.regions and any(region.blocks for region in op.regions):
            head += " {"
            self._emit(depth, head)
            for index, region in enumerate(op.regions):
                if index > 0:
                    self._emit(depth, "} {")
                self._print_region(region, depth)
            self._emit(depth, "}")
        else:
            self._emit(depth, head)


def print_operation(op: Operation) -> str:
    """Print a single operation (and its nested regions) to text."""
    return IRPrinter().print(op)


def print_module(module: Operation) -> str:
    """Print a module operation to text (alias of :func:`print_operation`)."""
    return print_operation(module)


def function_signature_text(name: str, function_type: FunctionType) -> str:
    """Helper used by custom printers for function-like ops."""
    return f"@{name} : {function_type}"
