"""Type system for the MLIR-like IR.

The reproduction models the MLIR types Polygeist emits for C programs:
integers of various widths, 32/64-bit floats, ``index``, function types and
``memref`` (shaped memory references whose dimensions may be dynamic,
printed ``?`` exactly like MLIR).  The ``sdfg`` dialect adds its own
symbolically-shaped array type in :mod:`repro.dialects.sdfg_dialect`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

#: Marker for a dynamic (unknown) memref dimension, printed as ``?``.
DYNAMIC = -1


class Type:
    """Base class of all IR types.  Types are immutable value objects."""

    __slots__ = ()

    def key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Type):
            return NotImplemented
        return self.key() == other.key()

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return str(self)

    # Convenience predicates --------------------------------------------------
    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntegerType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_index(self) -> bool:
        return isinstance(self, IndexType)

    @property
    def is_memref(self) -> bool:
        return isinstance(self, MemRefType)

    @property
    def is_scalar(self) -> bool:
        return isinstance(self, (IntegerType, FloatType, IndexType))


class IntegerType(Type):
    """Signless integer type ``iN`` (i1 doubles as MLIR's boolean)."""

    __slots__ = ("width",)

    def __init__(self, width: int = 32):
        self.width = int(width)

    def key(self) -> tuple:
        return ("int", self.width)

    def __str__(self) -> str:
        return f"i{self.width}"


class FloatType(Type):
    """IEEE float type ``f32`` / ``f64``."""

    __slots__ = ("width",)

    def __init__(self, width: int = 64):
        if width not in (16, 32, 64):
            raise ValueError(f"Unsupported float width {width}")
        self.width = int(width)

    def key(self) -> tuple:
        return ("float", self.width)

    def __str__(self) -> str:
        return f"f{self.width}"


class IndexType(Type):
    """MLIR ``index`` type (loop counters, memref indices)."""

    __slots__ = ()

    def key(self) -> tuple:
        return ("index",)

    def __str__(self) -> str:
        return "index"


class NoneType(Type):
    """Unit type for ops without results."""

    __slots__ = ()

    def key(self) -> tuple:
        return ("none",)

    def __str__(self) -> str:
        return "none"


class MemRefType(Type):
    """Shaped memory reference ``memref<4x?xf64>``.

    ``shape`` entries are non-negative ints or :data:`DYNAMIC` for ``?``.
    """

    __slots__ = ("shape", "element_type")

    def __init__(self, shape: Sequence[int], element_type: Type):
        self.shape: Tuple[int, ...] = tuple(int(dim) for dim in shape)
        self.element_type = element_type

    def key(self) -> tuple:
        return ("memref", self.shape, self.element_type.key())

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def has_dynamic_dims(self) -> bool:
        return any(dim == DYNAMIC for dim in self.shape)

    def num_dynamic_dims(self) -> int:
        return sum(1 for dim in self.shape if dim == DYNAMIC)

    def num_elements(self) -> Optional[int]:
        """Total elements if fully static, otherwise ``None``."""
        if self.has_dynamic_dims:
            return None
        total = 1
        for dim in self.shape:
            total *= dim
        return total

    def __str__(self) -> str:
        dims = "x".join("?" if dim == DYNAMIC else str(dim) for dim in self.shape)
        if dims:
            return f"memref<{dims}x{self.element_type}>"
        return f"memref<{self.element_type}>"


class FunctionType(Type):
    """Function signature ``(inputs) -> (results)``."""

    __slots__ = ("inputs", "results")

    def __init__(self, inputs: Sequence[Type], results: Sequence[Type]):
        self.inputs: Tuple[Type, ...] = tuple(inputs)
        self.results: Tuple[Type, ...] = tuple(results)

    def key(self) -> tuple:
        return (
            "function",
            tuple(t.key() for t in self.inputs),
            tuple(t.key() for t in self.results),
        )

    def __str__(self) -> str:
        inputs = ", ".join(str(t) for t in self.inputs)
        results = ", ".join(str(t) for t in self.results)
        if len(self.results) == 1:
            return f"({inputs}) -> {self.results[0]}"
        return f"({inputs}) -> ({results})"


# Commonly used singletons ----------------------------------------------------
I1 = IntegerType(1)
I32 = IntegerType(32)
I64 = IntegerType(64)
F32 = FloatType(32)
F64 = FloatType(64)
INDEX = IndexType()
NONE = NoneType()


def is_compatible(lhs: Type, rhs: Type) -> bool:
    """Loose compatibility used by the verifier for memref element access."""
    if lhs == rhs:
        return True
    # index and i64 interconvert freely in our lowering.
    if {type(lhs), type(rhs)} == {IndexType, IntegerType}:
        return True
    return False
