"""IR structural verifier.

Checks the invariants that the pass infrastructure and the conversion to
the ``sdfg`` dialect rely on:

* every operand is defined before use (dominance within a block, or
  defined in an enclosing non-isolated scope),
* blocks of ops that require terminators end in one,
* isolated-from-above regions (functions, tasklets) do not reference
  values defined outside,
* per-op ``verify_op`` hooks (operand counts, type agreement) pass.
"""

from __future__ import annotations

from typing import List, Optional, Set

from .core import Block, BlockArgument, IRError, Operation, OpResult, Region, Value


class VerificationError(IRError):
    """Raised when the IR violates a structural invariant."""

    def __init__(self, message: str, op: Optional[Operation] = None):
        self.op = op
        if op is not None:
            message = f"{message} (in op '{op.name}')"
        super().__init__(message)


def _collect_visible_values(op: Operation) -> Set[Value]:
    """Values visible to ``op``'s regions from enclosing scopes."""
    visible: Set[Value] = set()
    current = op
    while current is not None:
        if current.IS_ISOLATED_FROM_ABOVE:
            break
        block = current.parent_block
        if block is None:
            break
        # Values defined earlier in the same block and block arguments.
        visible.update(block.arguments)
        for earlier in block.operations:
            if earlier is current:
                break
            visible.update(earlier.results)
        current = block.parent_op
        if current is None:
            break
        # Walk outwards through the parent op (loop/if/function).
    return visible


def verify(root: Operation) -> None:
    """Verify ``root`` and everything nested inside it."""
    _verify_op(root, visible=set())


def _verify_op(op: Operation, visible: Set[Value]) -> None:
    # Operand visibility --------------------------------------------------------
    for index, operand in enumerate(op.operands):
        if operand not in visible:
            raise VerificationError(
                f"Operand #{index} of '{op.name}' is not defined in an enclosing scope "
                "(use before def, or crossing an IsolatedFromAbove boundary)",
                op,
            )
    # Per-op hook ----------------------------------------------------------------
    hook = getattr(op, "verify_op", None)
    if hook is not None:
        hook()
    # Regions --------------------------------------------------------------------
    for region in op.regions:
        region_visible: Set[Value] = set() if op.IS_ISOLATED_FROM_ABOVE else set(visible)
        for block in region.blocks:
            block_visible = set(region_visible)
            block_visible.update(block.arguments)
            for nested in block.operations:
                _verify_op(nested, block_visible)
                block_visible.update(nested.results)
            _verify_terminator(op, block)


def _verify_terminator(parent: Operation, block: Block) -> None:
    requires_terminator = getattr(parent, "REQUIRES_TERMINATOR", False)
    if not requires_terminator:
        return
    if not block.operations:
        raise VerificationError(
            f"Block in '{parent.name}' is empty but the op requires a terminator", parent
        )
    last = block.operations[-1]
    if not last.IS_TERMINATOR:
        raise VerificationError(
            f"Block in '{parent.name}' does not end with a terminator (ends with '{last.name}')",
            parent,
        )
    for other in block.operations[:-1]:
        if other.IS_TERMINATOR:
            raise VerificationError(
                f"Terminator '{other.name}' appears in the middle of a block", parent
            )


def verify_module(module: Operation) -> None:
    """Convenience wrapper matching MLIR's `verify(ModuleOp)` entry point."""
    verify(module)
