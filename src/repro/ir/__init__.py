"""MLIR-like intermediate representation core.

Provides SSA values, operations, blocks, regions, a builder, a textual
printer and a structural verifier.  Dialect-specific operations live in
:mod:`repro.dialects`.
"""

from .core import (
    Block,
    BlockArgument,
    Builder,
    IRError,
    OPERATION_REGISTRY,
    Operation,
    OpResult,
    Region,
    Use,
    Value,
    defining_op,
    register_operation,
    values_defined_above,
    walk_operations,
)
from .printer import IRPrinter, print_module, print_operation
from .types import (
    DYNAMIC,
    F32,
    F64,
    FloatType,
    FunctionType,
    I1,
    I32,
    I64,
    INDEX,
    IndexType,
    IntegerType,
    MemRefType,
    NONE,
    NoneType,
    Type,
    is_compatible,
)
from .verifier import VerificationError, verify, verify_module

__all__ = [
    "Block",
    "BlockArgument",
    "Builder",
    "DYNAMIC",
    "F32",
    "F64",
    "FloatType",
    "FunctionType",
    "I1",
    "I32",
    "I64",
    "INDEX",
    "IRError",
    "IRPrinter",
    "IndexType",
    "IntegerType",
    "MemRefType",
    "NONE",
    "NoneType",
    "OPERATION_REGISTRY",
    "Operation",
    "OpResult",
    "Region",
    "Type",
    "Use",
    "Value",
    "VerificationError",
    "defining_op",
    "is_compatible",
    "print_module",
    "print_operation",
    "register_operation",
    "values_defined_above",
    "verify",
    "verify_module",
    "walk_operations",
]
