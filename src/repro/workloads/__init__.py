"""Workloads used by the evaluation: Polybench kernels, case studies,
the mish operator, and the Python-frontend suite.

Besides the per-module registries, this package keeps a *suite* registry
(:func:`list_suites` / :func:`get_suite`) so benchmarks, the tuner and
the CLI can enumerate workload sets by name instead of hard-coding
imports.  A suite is a name → source mapping where each source is either
C text or a :class:`~repro.frontend_py.PythonProgram` — both compile
through every pipeline entry point.
"""

from typing import Callable, Dict, List

from . import casestudies, mish, polybench, python_suite as python_suite_module
from .casestudies import (
    bandwidth_source,
    fig2_source,
    milc_source,
    syrk_source,
)
from .mish import mish_source, reference_checksum, run_eager, run_jit
from .polybench import (
    EXCLUDED,
    KERNELS,
    default_sizes,
    get_kernel,
    kernel_names,
    polybench_suite,
)
from .python_suite import PYTHON_KERNELS, get_program, python_suite


def _casestudies_suite() -> Dict[str, str]:
    return {
        "fig2": fig2_source(),
        "milc": milc_source(),
        "bandwidth": bandwidth_source(),
        "syrk": syrk_source(),
    }


#: Suite name → zero-argument builder of a name → source mapping.
SUITES: Dict[str, Callable[[], Dict[str, object]]] = {
    "polybench": polybench_suite,
    "casestudies": _casestudies_suite,
    "mish": lambda: {"mish": mish_source()},
    "python": python_suite,
}


def list_suites() -> List[str]:
    """Names of the registered workload suites."""
    return sorted(SUITES)


def get_suite(name: str) -> Dict[str, object]:
    """Instantiate a registered suite as a name → source mapping.

    Values are C source strings or :class:`~repro.frontend_py.PythonProgram`
    instances (for the ``python`` suite) — every compilation entry point
    accepts both.  Unknown names raise
    :class:`~repro.errors.PipelineError` with a closest-match suggestion.
    """
    try:
        builder = SUITES[name]
    except KeyError:
        from ..errors import PipelineError
        from ..passbase import suggest

        raise PipelineError(
            f"Unknown workload suite {name!r}; "
            + suggest(name, list_suites(), "available suites")
        ) from None
    return builder()


__all__ = [
    "EXCLUDED",
    "KERNELS",
    "PYTHON_KERNELS",
    "SUITES",
    "bandwidth_source",
    "casestudies",
    "default_sizes",
    "fig2_source",
    "get_kernel",
    "get_program",
    "get_suite",
    "kernel_names",
    "list_suites",
    "milc_source",
    "mish",
    "mish_source",
    "polybench",
    "polybench_suite",
    "python_suite",
    "python_suite_module",
    "reference_checksum",
    "run_eager",
    "run_jit",
    "syrk_source",
]
