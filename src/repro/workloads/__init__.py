"""Workloads used by the evaluation: Polybench kernels and case studies."""

from . import casestudies, mish, polybench
from .casestudies import (
    bandwidth_source,
    fig2_source,
    milc_source,
    syrk_source,
)
from .mish import mish_source, reference_checksum, run_eager, run_jit
from .polybench import (
    EXCLUDED,
    KERNELS,
    default_sizes,
    get_kernel,
    kernel_names,
    polybench_suite,
)

__all__ = [
    "EXCLUDED",
    "KERNELS",
    "bandwidth_source",
    "casestudies",
    "default_sizes",
    "fig2_source",
    "get_kernel",
    "kernel_names",
    "milc_source",
    "mish",
    "mish_source",
    "polybench",
    "polybench_suite",
    "reference_checksum",
    "run_eager",
    "run_jit",
    "syrk_source",
]
