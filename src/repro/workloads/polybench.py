"""Polybench/C-style kernels (Fig. 6 of the paper).

Each kernel is a self-contained C function: it allocates its arrays,
initializes them deterministically (the same initialization polynomial for
every pipeline), runs the kernel loop nest, and returns a checksum so that
all pipelines can be cross-checked for correctness.

The kernels follow the structure of the Polybench 4.2.1 kernels of the
same name (loop nests and access patterns), scaled down to sizes that are
practical for a Python-interpreted substrate.  ``nussinov`` is excluded,
as in the paper (Polygeist could not translate it); kernels that rely on
constructs outside the supported C subset are likewise omitted and listed
in ``EXCLUDED``.  Problem sizes are template parameters (``@N@`` etc.) so
benchmarks can sweep them.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Kernels present in the paper's Fig. 6 that this reproduction omits,
#: with the reason (mirrors the paper's own exclusion of nussinov).
EXCLUDED: Dict[str, str] = {
    "nussinov": "excluded in the paper itself (frontend cannot translate it)",
    "adi": "alternating-direction stencil exceeds the practical runtime budget here",
    "deriche": "requires the image-processing constant set; loop-inversion effect covered by unit tests",
    "gramschmidt": "numerically sensitive (paper had to drop to -O2); omitted",
    "ludcmp": "covered by the structurally identical 'lu' kernel",
    "correlation": "covered by the structurally identical 'covariance' kernel",
    "fdtd-2d": "multi-array stencil; jacobi-2d/heat-3d cover the stencil class",
}

#: name -> (C source template, default size bindings)
KERNELS: Dict[str, Tuple[str, Dict[str, int]]] = {}


def _register(name: str, source: str, **sizes: int) -> None:
    KERNELS[name] = (source, dict(sizes))


def default_sizes(name: str) -> Dict[str, int]:
    """Default problem-size bindings of a kernel (a fresh, editable dict).

    These are the sizes :func:`get_kernel` substitutes when the caller
    passes none — recorded by benchmark and tuning reports so dumped
    artifacts state exactly which problem instance produced each number.
    Unknown names raise :class:`~repro.errors.PipelineError` listing the
    available kernels and suggesting the closest match.
    """
    try:
        _, defaults = KERNELS[name]
    except KeyError:
        from ..errors import PipelineError
        from ..passbase import suggest

        raise PipelineError(
            f"Unknown kernel {name!r}; " + suggest(name, sorted(KERNELS), "available kernels")
        ) from None
    return dict(defaults)


def get_kernel(name: str, sizes: Dict[str, int] | None = None) -> str:
    """Instantiate a kernel's C source with concrete problem sizes.

    Unknown names raise the same suggestion-bearing error as
    :func:`default_sizes`.
    """
    bindings = default_sizes(name)
    template, _ = KERNELS[name]
    if sizes:
        bindings.update(sizes)
    source = template
    for key, value in bindings.items():
        source = source.replace(f"@{key}@", str(value))
    return source


def kernel_names() -> List[str]:
    return sorted(KERNELS)


def polybench_suite(
    kernels: "List[str] | None" = None,
    sizes: "Dict[str, Dict[str, int]] | None" = None,
) -> Dict[str, str]:
    """Instantiate a name → C source workload set for the suite runner.

    ``kernels`` defaults to every registered kernel; ``sizes`` optionally
    maps kernel names to problem-size overrides (unlisted kernels use their
    defaults).  The result plugs directly into
    :meth:`repro.service.Session.run_suite`.
    """
    names = list(kernels) if kernels is not None else kernel_names()
    sizes = sizes or {}
    return {name: get_kernel(name, sizes.get(name)) for name in names}


# --------------------------------------------------------------------------
# Linear algebra kernels
# --------------------------------------------------------------------------

_register("gemm", """
double kernel_gemm() {
  double A[@NI@][@NK@]; double B[@NK@][@NJ@]; double C[@NI@][@NJ@];
  double alpha = 1.5; double beta = 1.2;
  for (int i = 0; i < @NI@; i++)
    for (int k = 0; k < @NK@; k++)
      A[i][k] = ((i * k + 1) % @NI@) / (1.0 * @NI@);
  for (int k = 0; k < @NK@; k++)
    for (int j = 0; j < @NJ@; j++)
      B[k][j] = ((k * j + 2) % @NJ@) / (1.0 * @NJ@);
  for (int i = 0; i < @NI@; i++)
    for (int j = 0; j < @NJ@; j++)
      C[i][j] = ((i * j + 3) % @NI@) / (1.0 * @NI@);
  for (int i = 0; i < @NI@; i++) {
    for (int j = 0; j < @NJ@; j++)
      C[i][j] = C[i][j] * beta;
    for (int k = 0; k < @NK@; k++)
      for (int j = 0; j < @NJ@; j++)
        C[i][j] += alpha * A[i][k] * B[k][j];
  }
  double sum = 0.0;
  for (int i = 0; i < @NI@; i++)
    for (int j = 0; j < @NJ@; j++)
      sum += C[i][j];
  return sum;
}
""", NI=24, NJ=22, NK=20)

_register("2mm", """
double kernel_2mm() {
  double A[@NI@][@NK@]; double B[@NK@][@NJ@]; double tmp[@NI@][@NJ@];
  double C[@NJ@][@NL@]; double D[@NI@][@NL@];
  double alpha = 1.5; double beta = 1.2;
  for (int i = 0; i < @NI@; i++)
    for (int k = 0; k < @NK@; k++)
      A[i][k] = ((i * k + 1) % @NI@) / (1.0 * @NI@);
  for (int k = 0; k < @NK@; k++)
    for (int j = 0; j < @NJ@; j++)
      B[k][j] = (k * (j + 1) % @NJ@) / (1.0 * @NJ@);
  for (int j = 0; j < @NJ@; j++)
    for (int l = 0; l < @NL@; l++)
      C[j][l] = ((j * (l + 3) + 1) % @NL@) / (1.0 * @NL@);
  for (int i = 0; i < @NI@; i++)
    for (int l = 0; l < @NL@; l++)
      D[i][l] = (i * (l + 2) % @NK@) / (1.0 * @NK@);
  for (int i = 0; i < @NI@; i++)
    for (int j = 0; j < @NJ@; j++) {
      tmp[i][j] = 0.0;
      for (int k = 0; k < @NK@; k++)
        tmp[i][j] += alpha * A[i][k] * B[k][j];
    }
  for (int i = 0; i < @NI@; i++)
    for (int l = 0; l < @NL@; l++) {
      D[i][l] = D[i][l] * beta;
      for (int j = 0; j < @NJ@; j++)
        D[i][l] += tmp[i][j] * C[j][l];
    }
  double sum = 0.0;
  for (int i = 0; i < @NI@; i++)
    for (int l = 0; l < @NL@; l++)
      sum += D[i][l];
  return sum;
}
""", NI=16, NJ=18, NK=20, NL=22)

_register("3mm", """
double kernel_3mm() {
  double A[@NI@][@NK@]; double B[@NK@][@NJ@]; double C[@NJ@][@NM@]; double D[@NM@][@NL@];
  double E[@NI@][@NJ@]; double F[@NJ@][@NL@]; double G[@NI@][@NL@];
  for (int i = 0; i < @NI@; i++)
    for (int k = 0; k < @NK@; k++)
      A[i][k] = ((i * k + 1) % @NI@) / (5.0 * @NI@);
  for (int k = 0; k < @NK@; k++)
    for (int j = 0; j < @NJ@; j++)
      B[k][j] = ((k * (j + 1) + 2) % @NJ@) / (5.0 * @NJ@);
  for (int j = 0; j < @NJ@; j++)
    for (int m = 0; m < @NM@; m++)
      C[j][m] = (j * (m + 3) % @NL@) / (5.0 * @NL@);
  for (int m = 0; m < @NM@; m++)
    for (int l = 0; l < @NL@; l++)
      D[m][l] = ((m * (l + 2) + 2) % @NK@) / (5.0 * @NK@);
  for (int i = 0; i < @NI@; i++)
    for (int j = 0; j < @NJ@; j++) {
      E[i][j] = 0.0;
      for (int k = 0; k < @NK@; k++)
        E[i][j] += A[i][k] * B[k][j];
    }
  for (int j = 0; j < @NJ@; j++)
    for (int l = 0; l < @NL@; l++) {
      F[j][l] = 0.0;
      for (int m = 0; m < @NM@; m++)
        F[j][l] += C[j][m] * D[m][l];
    }
  for (int i = 0; i < @NI@; i++)
    for (int l = 0; l < @NL@; l++) {
      G[i][l] = 0.0;
      for (int j = 0; j < @NJ@; j++)
        G[i][l] += E[i][j] * F[j][l];
    }
  double sum = 0.0;
  for (int i = 0; i < @NI@; i++)
    for (int l = 0; l < @NL@; l++)
      sum += G[i][l];
  return sum;
}
""", NI=14, NJ=15, NK=16, NL=17, NM=18)

_register("atax", """
double kernel_atax() {
  double A[@M@][@N@]; double x[@N@]; double y[@N@]; double tmp[@M@];
  for (int i = 0; i < @N@; i++)
    x[i] = 1.0 + (i / (1.0 * @N@));
  for (int i = 0; i < @M@; i++)
    for (int j = 0; j < @N@; j++)
      A[i][j] = ((i + j) % @N@) / (5.0 * @M@);
  for (int i = 0; i < @N@; i++)
    y[i] = 0.0;
  for (int i = 0; i < @M@; i++) {
    tmp[i] = 0.0;
    for (int j = 0; j < @N@; j++)
      tmp[i] = tmp[i] + A[i][j] * x[j];
    for (int j = 0; j < @N@; j++)
      y[j] = y[j] + A[i][j] * tmp[i];
  }
  double sum = 0.0;
  for (int i = 0; i < @N@; i++)
    sum += y[i];
  return sum;
}
""", M=38, N=42)

_register("bicg", """
double kernel_bicg() {
  double A[@N@][@M@]; double s[@M@]; double q[@N@]; double p[@M@]; double r[@N@];
  for (int i = 0; i < @M@; i++)
    p[i] = (i % @M@) / (1.0 * @M@);
  for (int i = 0; i < @N@; i++) {
    r[i] = (i % @N@) / (1.0 * @N@);
    for (int j = 0; j < @M@; j++)
      A[i][j] = ((i * (j + 1)) % @N@) / (1.0 * @N@);
  }
  for (int i = 0; i < @M@; i++)
    s[i] = 0.0;
  for (int i = 0; i < @N@; i++) {
    q[i] = 0.0;
    for (int j = 0; j < @M@; j++) {
      s[j] = s[j] + r[i] * A[i][j];
      q[i] = q[i] + A[i][j] * p[j];
    }
  }
  double sum = 0.0;
  for (int i = 0; i < @M@; i++)
    sum += s[i];
  for (int i = 0; i < @N@; i++)
    sum += q[i];
  return sum;
}
""", M=38, N=42)

_register("mvt", """
double kernel_mvt() {
  double A[@N@][@N@]; double x1[@N@]; double x2[@N@]; double y1[@N@]; double y2[@N@];
  for (int i = 0; i < @N@; i++) {
    x1[i] = (i % @N@) / (1.0 * @N@);
    x2[i] = ((i + 1) % @N@) / (1.0 * @N@);
    y1[i] = ((i + 3) % @N@) / (1.0 * @N@);
    y2[i] = ((i + 4) % @N@) / (1.0 * @N@);
    for (int j = 0; j < @N@; j++)
      A[i][j] = ((i * j) % @N@) / (1.0 * @N@);
  }
  for (int i = 0; i < @N@; i++)
    for (int j = 0; j < @N@; j++)
      x1[i] = x1[i] + A[i][j] * y1[j];
  for (int i = 0; i < @N@; i++)
    for (int j = 0; j < @N@; j++)
      x2[i] = x2[i] + A[j][i] * y2[j];
  double sum = 0.0;
  for (int i = 0; i < @N@; i++)
    sum += x1[i] + x2[i];
  return sum;
}
""", N=44)

_register("gesummv", """
double kernel_gesummv() {
  double A[@N@][@N@]; double B[@N@][@N@]; double tmp[@N@]; double x[@N@]; double y[@N@];
  double alpha = 1.5; double beta = 1.2;
  for (int i = 0; i < @N@; i++) {
    x[i] = (i % @N@) / (1.0 * @N@);
    for (int j = 0; j < @N@; j++) {
      A[i][j] = ((i * j + 1) % @N@) / (1.0 * @N@);
      B[i][j] = ((i * j + 2) % @N@) / (1.0 * @N@);
    }
  }
  for (int i = 0; i < @N@; i++) {
    tmp[i] = 0.0;
    y[i] = 0.0;
    for (int j = 0; j < @N@; j++) {
      tmp[i] = A[i][j] * x[j] + tmp[i];
      y[i] = B[i][j] * x[j] + y[i];
    }
    y[i] = alpha * tmp[i] + beta * y[i];
  }
  double sum = 0.0;
  for (int i = 0; i < @N@; i++)
    sum += y[i];
  return sum;
}
""", N=42)

_register("gemver", """
double kernel_gemver() {
  double A[@N@][@N@]; double u1[@N@]; double v1[@N@]; double u2[@N@]; double v2[@N@];
  double w[@N@]; double x[@N@]; double y[@N@]; double z[@N@];
  double alpha = 1.5; double beta = 1.2;
  for (int i = 0; i < @N@; i++) {
    u1[i] = i;
    u2[i] = ((i + 1) / (2.0 * @N@)) / 2.0;
    v1[i] = ((i + 1) / (4.0 * @N@)) / 4.0;
    v2[i] = ((i + 1) / (6.0 * @N@)) / 6.0;
    y[i] = ((i + 1) / (8.0 * @N@)) / 8.0;
    z[i] = ((i + 1) / (9.0 * @N@)) / 9.0;
    x[i] = 0.0;
    w[i] = 0.0;
    for (int j = 0; j < @N@; j++)
      A[i][j] = ((i * j) % @N@) / (1.0 * @N@);
  }
  for (int i = 0; i < @N@; i++)
    for (int j = 0; j < @N@; j++)
      A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
  for (int i = 0; i < @N@; i++)
    for (int j = 0; j < @N@; j++)
      x[i] = x[i] + beta * A[j][i] * y[j];
  for (int i = 0; i < @N@; i++)
    x[i] = x[i] + z[i];
  for (int i = 0; i < @N@; i++)
    for (int j = 0; j < @N@; j++)
      w[i] = w[i] + alpha * A[i][j] * x[j];
  double sum = 0.0;
  for (int i = 0; i < @N@; i++)
    sum += w[i];
  return sum;
}
""", N=40)

_register("syrk", """
double kernel_syrk() {
  double A[@N@][@M@]; double C[@N@][@N@];
  double alpha = 1.5; double beta = 1.2;
  for (int i = 0; i < @N@; i++)
    for (int j = 0; j < @M@; j++)
      A[i][j] = ((i * j + 1) % @N@) / (1.0 * @N@);
  for (int i = 0; i < @N@; i++)
    for (int j = 0; j < @N@; j++)
      C[i][j] = ((i * j + 2) % @M@) / (1.0 * @M@);
  for (int i = 0; i < @N@; i++) {
    for (int j = 0; j <= i; j++)
      C[i][j] = C[i][j] * beta;
    for (int k = 0; k < @M@; k++) {
      for (int j = 0; j <= i; j++)
        C[i][j] += alpha * A[i][k] * A[j][k];
    }
  }
  double sum = 0.0;
  for (int i = 0; i < @N@; i++)
    for (int j = 0; j < @N@; j++)
      sum += C[i][j];
  return sum;
}
""", N=30, M=26)

_register("syr2k", """
double kernel_syr2k() {
  double A[@N@][@M@]; double B[@N@][@M@]; double C[@N@][@N@];
  double alpha = 1.5; double beta = 1.2;
  for (int i = 0; i < @N@; i++)
    for (int j = 0; j < @M@; j++) {
      A[i][j] = ((i * j + 1) % @N@) / (1.0 * @N@);
      B[i][j] = ((i * j + 2) % @M@) / (1.0 * @M@);
    }
  for (int i = 0; i < @N@; i++)
    for (int j = 0; j < @N@; j++)
      C[i][j] = ((i * j + 3) % @N@) / (1.0 * @N@);
  for (int i = 0; i < @N@; i++) {
    for (int j = 0; j <= i; j++)
      C[i][j] = C[i][j] * beta;
    for (int k = 0; k < @M@; k++)
      for (int j = 0; j <= i; j++)
        C[i][j] += A[j][k] * alpha * B[i][k] + B[j][k] * alpha * A[i][k];
  }
  double sum = 0.0;
  for (int i = 0; i < @N@; i++)
    for (int j = 0; j < @N@; j++)
      sum += C[i][j];
  return sum;
}
""", N=26, M=22)

_register("symm", """
double kernel_symm() {
  double A[@M@][@M@]; double B[@M@][@N@]; double C[@M@][@N@];
  double alpha = 1.5; double beta = 1.2;
  for (int i = 0; i < @M@; i++)
    for (int j = 0; j < @M@; j++)
      A[i][j] = ((i + j) % 100) / (1.0 * @M@);
  for (int i = 0; i < @M@; i++)
    for (int j = 0; j < @N@; j++) {
      B[i][j] = ((@N@ + i - j) % 100) / (1.0 * @M@);
      C[i][j] = ((i + j) % 100) / (1.0 * @M@);
    }
  for (int i = 0; i < @M@; i++)
    for (int j = 0; j < @N@; j++) {
      double temp2 = 0.0;
      for (int k = 0; k < i; k++) {
        C[k][j] += alpha * B[i][j] * A[i][k];
        temp2 += B[k][j] * A[i][k];
      }
      C[i][j] = beta * C[i][j] + alpha * B[i][j] * A[i][i] + alpha * temp2;
    }
  double sum = 0.0;
  for (int i = 0; i < @M@; i++)
    for (int j = 0; j < @N@; j++)
      sum += C[i][j];
  return sum;
}
""", M=28, N=24)

_register("trmm", """
double kernel_trmm() {
  double A[@M@][@M@]; double B[@M@][@N@];
  double alpha = 1.5;
  for (int i = 0; i < @M@; i++)
    for (int j = 0; j < @M@; j++)
      A[i][j] = ((i * j) % @M@) / (1.0 * @M@);
  for (int i = 0; i < @M@; i++)
    for (int j = 0; j < @N@; j++)
      B[i][j] = ((@N@ + i - j) % @N@) / (1.0 * @N@);
  for (int i = 0; i < @M@; i++)
    for (int j = 0; j < @N@; j++) {
      for (int k = i + 1; k < @M@; k++)
        B[i][j] += A[k][i] * B[k][j];
      B[i][j] = alpha * B[i][j];
    }
  double sum = 0.0;
  for (int i = 0; i < @M@; i++)
    for (int j = 0; j < @N@; j++)
      sum += B[i][j];
  return sum;
}
""", M=30, N=26)

_register("trisolv", """
double kernel_trisolv() {
  double L[@N@][@N@]; double x[@N@]; double b[@N@];
  for (int i = 0; i < @N@; i++) {
    x[i] = -999.0;
    b[i] = i;
    for (int j = 0; j <= i; j++)
      L[i][j] = (i + @N@ - j + 1) * 2.0 / @N@;
  }
  for (int i = 0; i < @N@; i++) {
    x[i] = b[i];
    for (int j = 0; j < i; j++)
      x[i] -= L[i][j] * x[j];
    x[i] = x[i] / L[i][i];
  }
  double sum = 0.0;
  for (int i = 0; i < @N@; i++)
    sum += x[i];
  return sum;
}
""", N=60)

_register("cholesky", """
double kernel_cholesky() {
  double A[@N@][@N@];
  for (int i = 0; i < @N@; i++)
    for (int j = 0; j < @N@; j++)
      A[i][j] = ((i + j) % @N@) / (2.0 * @N@);
  for (int i = 0; i < @N@; i++)
    A[i][i] = A[i][i] + 2.0 * @N@;
  for (int i = 0; i < @N@; i++) {
    for (int j = 0; j < i; j++) {
      for (int k = 0; k < j; k++)
        A[i][j] -= A[i][k] * A[j][k];
      A[i][j] /= A[j][j];
    }
    for (int k = 0; k < i; k++)
      A[i][i] -= A[i][k] * A[i][k];
    A[i][i] = sqrt(A[i][i]);
  }
  double sum = 0.0;
  for (int i = 0; i < @N@; i++)
    for (int j = 0; j <= i; j++)
      sum += A[i][j];
  return sum;
}
""", N=24)

_register("lu", """
double kernel_lu() {
  double A[@N@][@N@];
  for (int i = 0; i < @N@; i++)
    for (int j = 0; j < @N@; j++)
      A[i][j] = ((i + j) % @N@) / (2.0 * @N@);
  for (int i = 0; i < @N@; i++)
    A[i][i] = A[i][i] + 2.0 * @N@;
  for (int i = 0; i < @N@; i++) {
    for (int j = 0; j < i; j++) {
      for (int k = 0; k < j; k++)
        A[i][j] -= A[i][k] * A[k][j];
      A[i][j] /= A[j][j];
    }
    for (int j = i; j < @N@; j++)
      for (int k = 0; k < i; k++)
        A[i][j] -= A[i][k] * A[k][j];
  }
  double sum = 0.0;
  for (int i = 0; i < @N@; i++)
    for (int j = 0; j < @N@; j++)
      sum += A[i][j];
  return sum;
}
""", N=22)

_register("durbin", """
double kernel_durbin() {
  double r[@N@]; double y[@N@]; double z[@N@];
  for (int i = 0; i < @N@; i++)
    r[i] = @N@ + 1.0 - i;
  y[0] = -r[0];
  double beta = 1.0;
  double alpha = -r[0];
  for (int k = 1; k < @N@; k++) {
    beta = (1.0 - alpha * alpha) * beta;
    double summ = 0.0;
    for (int i = 0; i < k; i++)
      summ += r[k - i - 1] * y[i];
    alpha = -(r[k] + summ) / beta;
    for (int i = 0; i < k; i++)
      z[i] = y[i] + alpha * y[k - i - 1];
    for (int i = 0; i < k; i++)
      y[i] = z[i];
    y[k] = alpha;
  }
  double sum = 0.0;
  for (int i = 0; i < @N@; i++)
    sum += y[i];
  return sum;
}
""", N=80)

_register("doitgen", """
double kernel_doitgen() {
  double A[@R@][@Q@][@P@]; double C4[@P@][@P@]; double sumv[@P@];
  for (int r = 0; r < @R@; r++)
    for (int q = 0; q < @Q@; q++)
      for (int p = 0; p < @P@; p++)
        A[r][q][p] = ((r * q + p) % @P@) / (1.0 * @P@);
  for (int i = 0; i < @P@; i++)
    for (int j = 0; j < @P@; j++)
      C4[i][j] = (i * j % @P@) / (1.0 * @P@);
  for (int r = 0; r < @R@; r++)
    for (int q = 0; q < @Q@; q++) {
      for (int p = 0; p < @P@; p++) {
        sumv[p] = 0.0;
        for (int s = 0; s < @P@; s++)
          sumv[p] += A[r][q][s] * C4[s][p];
      }
      for (int p = 0; p < @P@; p++)
        A[r][q][p] = sumv[p];
    }
  double total = 0.0;
  for (int r = 0; r < @R@; r++)
    for (int q = 0; q < @Q@; q++)
      for (int p = 0; p < @P@; p++)
        total += A[r][q][p];
  return total;
}
""", R=10, Q=8, P=12)

# --------------------------------------------------------------------------
# Stencils, dynamic programming, statistics
# --------------------------------------------------------------------------

_register("jacobi-1d", """
double kernel_jacobi_1d() {
  double A[@N@]; double B[@N@];
  for (int i = 0; i < @N@; i++) {
    A[i] = (i + 2.0) / @N@;
    B[i] = (i + 3.0) / @N@;
  }
  for (int t = 0; t < @T@; t++) {
    for (int i = 1; i < @N@ - 1; i++)
      B[i] = 0.33333 * (A[i - 1] + A[i] + A[i + 1]);
    for (int i = 1; i < @N@ - 1; i++)
      A[i] = 0.33333 * (B[i - 1] + B[i] + B[i + 1]);
  }
  double sum = 0.0;
  for (int i = 0; i < @N@; i++)
    sum += A[i];
  return sum;
}
""", N=120, T=20)

_register("jacobi-2d", """
double kernel_jacobi_2d() {
  double A[@N@][@N@]; double B[@N@][@N@];
  for (int i = 0; i < @N@; i++)
    for (int j = 0; j < @N@; j++) {
      A[i][j] = (i * (j + 2.0)) / @N@;
      B[i][j] = (i * (j + 3.0)) / @N@;
    }
  for (int t = 0; t < @T@; t++) {
    for (int i = 1; i < @N@ - 1; i++)
      for (int j = 1; j < @N@ - 1; j++)
        B[i][j] = 0.2 * (A[i][j] + A[i][j - 1] + A[i][1 + j] + A[1 + i][j] + A[i - 1][j]);
    for (int i = 1; i < @N@ - 1; i++)
      for (int j = 1; j < @N@ - 1; j++)
        A[i][j] = 0.2 * (B[i][j] + B[i][j - 1] + B[i][1 + j] + B[1 + i][j] + B[i - 1][j]);
  }
  double sum = 0.0;
  for (int i = 0; i < @N@; i++)
    for (int j = 0; j < @N@; j++)
      sum += A[i][j];
  return sum;
}
""", N=30, T=8)

_register("heat-3d", """
double kernel_heat_3d() {
  double A[@N@][@N@][@N@]; double B[@N@][@N@][@N@];
  for (int i = 0; i < @N@; i++)
    for (int j = 0; j < @N@; j++)
      for (int k = 0; k < @N@; k++) {
        A[i][j][k] = (i + j + (@N@ - k)) * 10.0 / @N@;
        B[i][j][k] = A[i][j][k];
      }
  for (int t = 1; t <= @T@; t++) {
    for (int i = 1; i < @N@ - 1; i++)
      for (int j = 1; j < @N@ - 1; j++)
        for (int k = 1; k < @N@ - 1; k++)
          B[i][j][k] = 0.125 * (A[i + 1][j][k] - 2.0 * A[i][j][k] + A[i - 1][j][k])
                     + 0.125 * (A[i][j + 1][k] - 2.0 * A[i][j][k] + A[i][j - 1][k])
                     + 0.125 * (A[i][j][k + 1] - 2.0 * A[i][j][k] + A[i][j][k - 1])
                     + A[i][j][k];
    for (int i = 1; i < @N@ - 1; i++)
      for (int j = 1; j < @N@ - 1; j++)
        for (int k = 1; k < @N@ - 1; k++)
          A[i][j][k] = 0.125 * (B[i + 1][j][k] - 2.0 * B[i][j][k] + B[i - 1][j][k])
                     + 0.125 * (B[i][j + 1][k] - 2.0 * B[i][j][k] + B[i][j - 1][k])
                     + 0.125 * (B[i][j][k + 1] - 2.0 * B[i][j][k] + B[i][j][k - 1])
                     + B[i][j][k];
  }
  double sum = 0.0;
  for (int i = 0; i < @N@; i++)
    for (int j = 0; j < @N@; j++)
      for (int k = 0; k < @N@; k++)
        sum += A[i][j][k];
  return sum;
}
""", N=10, T=5)

_register("seidel-2d", """
double kernel_seidel_2d() {
  double A[@N@][@N@];
  for (int i = 0; i < @N@; i++)
    for (int j = 0; j < @N@; j++)
      A[i][j] = (i * (j + 2.0) + 2.0) / @N@;
  for (int t = 0; t <= @T@ - 1; t++)
    for (int i = 1; i <= @N@ - 2; i++)
      for (int j = 1; j <= @N@ - 2; j++)
        A[i][j] = (A[i - 1][j - 1] + A[i - 1][j] + A[i - 1][j + 1]
                 + A[i][j - 1] + A[i][j] + A[i][j + 1]
                 + A[i + 1][j - 1] + A[i + 1][j] + A[i + 1][j + 1]) / 9.0;
  double sum = 0.0;
  for (int i = 0; i < @N@; i++)
    for (int j = 0; j < @N@; j++)
      sum += A[i][j];
  return sum;
}
""", N=30, T=8)

_register("floyd-warshall", """
double kernel_floyd_warshall() {
  double path[@N@][@N@];
  for (int i = 0; i < @N@; i++)
    for (int j = 0; j < @N@; j++) {
      path[i][j] = i * j % 7 + 1;
      if ((i + j) % 13 == 0 || (i + j) % 7 == 0 || (i + j) % 11 == 0)
        path[i][j] = 999.0;
    }
  for (int k = 0; k < @N@; k++)
    for (int i = 0; i < @N@; i++)
      for (int j = 0; j < @N@; j++)
        path[i][j] = path[i][j] < path[i][k] + path[k][j]
                   ? path[i][j] : path[i][k] + path[k][j];
  double sum = 0.0;
  for (int i = 0; i < @N@; i++)
    for (int j = 0; j < @N@; j++)
      sum += path[i][j];
  return sum;
}
""", N=26)

_register("covariance", """
double kernel_covariance() {
  double data[@N@][@M@]; double cov[@M@][@M@]; double mean[@M@];
  double float_n = 1.0 * @N@;
  for (int i = 0; i < @N@; i++)
    for (int j = 0; j < @M@; j++)
      data[i][j] = (i * j) / (1.0 * @M@);
  for (int j = 0; j < @M@; j++) {
    mean[j] = 0.0;
    for (int i = 0; i < @N@; i++)
      mean[j] += data[i][j];
    mean[j] /= float_n;
  }
  for (int i = 0; i < @N@; i++)
    for (int j = 0; j < @M@; j++)
      data[i][j] -= mean[j];
  for (int i = 0; i < @M@; i++)
    for (int j = i; j < @M@; j++) {
      cov[i][j] = 0.0;
      for (int k = 0; k < @N@; k++)
        cov[i][j] += data[k][i] * data[k][j];
      cov[i][j] /= (float_n - 1.0);
      cov[j][i] = cov[i][j];
    }
  double sum = 0.0;
  for (int i = 0; i < @M@; i++)
    for (int j = 0; j < @M@; j++)
      sum += cov[i][j];
  return sum;
}
""", N=30, M=26)
