"""Case-study workloads from the paper: Fig. 2, MILC (Fig. 9), bandwidth (Fig. 10).

Each workload is a C source template with ``@SIZE@``-style parameters and a
default size chosen so that the slowest pipeline finishes in well under a
second on the Python substrate.  The access patterns follow the paper's
snippets; surrounding scaffolding (allocation, initialization, checksum) is
added so the programs are self-contained and cross-checkable.
"""

from __future__ import annotations

from typing import Dict

#: Fig. 2 — the motivating example: dead arrays, redundant outer loop.
FIG2_EXAMPLE = """
int example() {
  int *A = (int*) malloc(@N@ * sizeof(int));
  int *B = (int*) malloc(@N@ * sizeof(int));
  for (int i = 0; i < @N@; ++i) {
    A[i] = 5;
    for (int j = 0; j < @N@; ++j)
      B[j] = A[i];
    for (int j = 0; j < @M@; ++j)
      A[j] = A[i];
  }
  int res = B[0];
  free(A);
  free(B);
  return res;
}
"""

FIG2_DEFAULT_SIZES = {"N": 700, "M": 70}

#: Fig. 9 — MILC multi-mass conjugate gradient snippet.  zeta_ip1 and
#: beta_i are written but never observed by the returned residual, so the
#: data-centric pipelines can eliminate both arrays (the paper reports two
#: arrays of 10,000 doubles eliminated).
MILC_SNIPPET = """
double congrad_multi_field() {
  double zeta_i[@NORDER@];
  double zeta_im1[@NORDER@];
  double zeta_ip1[@NORDER@];
  double beta_i[@NORDER@];
  double beta_im1[@NORDER@];
  double alpha[@NORDER@];
  double shift[@NORDER@];
  int converged[@NORDER@];
  for (int j = 0; j < @NORDER@; j++) {
    zeta_i[j] = 1.0 + (j % 7) * 0.125;
    zeta_im1[j] = 1.0;
    zeta_ip1[j] = 0.0;
    beta_i[j] = -0.5;
    beta_im1[j] = 1.0;
    alpha[j] = 0.25;
    shift[j] = 0.01 * j;
    converged[j] = (j % 5 == 0) ? 1 : 0;
  }
  for (int iter = 0; iter < @ITERS@; iter++) {
    for (int j = 1; j < @NORDER@; j++) {
      if (converged[j] == 0) {
        zeta_ip1[j] = zeta_i[j] * zeta_im1[j] * beta_im1[0];
        double c1 = beta_i[0] * alpha[0] * (zeta_im1[j] - zeta_i[j]);
        double c2 = zeta_im1[j] * beta_im1[0] * (1.0 - (shift[j] - shift[0]) * beta_i[0]);
        zeta_ip1[j] /= c1 + c2;
        beta_i[j] = beta_i[0] * zeta_ip1[j] / zeta_i[j];
      }
    }
  }
  double residual = 0.0;
  for (int j = 0; j < @NORDER@; j++)
    residual += zeta_i[j] + zeta_im1[j] + alpha[j];
  return residual;
}
"""

MILC_DEFAULT_SIZES = {"NORDER": 2000, "ITERS": 4}

#: Fig. 10 — memory bandwidth benchmark (init / sum / scale with a
#: save/restore of a[10] between phases).
BANDWIDTH_BENCHMARK = """
double bandwidth() {
  double a[@N@];
  double scalar = 3.0;
  double total = 0.0;
  for (int k = 0; k < @NTIMES@; k++) {
    for (int i = 0; i < @N@; i++)
      a[i] = scalar;
    double tmp = a[10];
    double sum = 0.0;
    for (int i = 0; i < @N@; i++)
      sum += a[i];
    a[10] = sum;
    a[10] = tmp;
    for (int i = 0; i < @N@; i++)
      a[i] = a[i] * scalar;
    total += a[10] + sum;
  }
  return total;
}
"""

BANDWIDTH_DEFAULT_SIZES = {"N": 800, "NTIMES": 4}

#: Fig. 7 — the syrk inner kernel in isolation (used to show that LICM on
#: the MLIR side hoists ``alpha * A[i][k]`` while the DaCe C frontend view
#: cannot look inside its indivisible tasklets).
SYRK_SNIPPET = """
double syrk_kernel() {
  double A[@N@][@M@];
  double C[@N@][@N@];
  double alpha = 1.5;
  for (int i = 0; i < @N@; i++)
    for (int k = 0; k < @M@; k++)
      A[i][k] = ((i * k + 1) % @N@) / (1.0 * @N@);
  for (int i = 0; i < @N@; i++)
    for (int j = 0; j < @N@; j++)
      C[i][j] = 0.0;
  for (int i = 0; i < @N@; i++)
    for (int k = 0; k < @M@; k++)
      for (int j = 0; j <= i; j++)
        C[i][j] += alpha * A[i][k] * A[j][k];
  double sum = 0.0;
  for (int i = 0; i < @N@; i++)
    for (int j = 0; j < @N@; j++)
      sum += C[i][j];
  return sum;
}
"""

SYRK_DEFAULT_SIZES = {"N": 30, "M": 26}


def instantiate(template: str, sizes: Dict[str, int]) -> str:
    """Substitute ``@NAME@`` parameters in a workload template."""
    source = template
    for key, value in sizes.items():
        source = source.replace(f"@{key}@", str(value))
    return source


def fig2_source(sizes: Dict[str, int] | None = None) -> str:
    return instantiate(FIG2_EXAMPLE, {**FIG2_DEFAULT_SIZES, **(sizes or {})})


def milc_source(sizes: Dict[str, int] | None = None) -> str:
    return instantiate(MILC_SNIPPET, {**MILC_DEFAULT_SIZES, **(sizes or {})})


def bandwidth_source(sizes: Dict[str, int] | None = None) -> str:
    return instantiate(BANDWIDTH_BENCHMARK, {**BANDWIDTH_DEFAULT_SIZES, **(sizes or {})})


def syrk_source(sizes: Dict[str, int] | None = None) -> str:
    return instantiate(SYRK_SNIPPET, {**SYRK_DEFAULT_SIZES, **(sizes or {})})
