"""NumPy-style Python workloads for the second frontend.

Kernels the C frontend cannot express idiomatically: sliced stencils,
ML activation operators (mish — mirroring :mod:`repro.workloads.mish` —
gelu, silu), softmax/layernorm-style normalization chains.  Each kernel
is a self-contained :class:`~repro.frontend_py.PythonProgram`: it
allocates its arrays, initializes them deterministically (same
initialization polynomial in every pipeline), runs the computation and
returns a floating-point checksum.  Calling the program executes it under
plain NumPy — the differential reference every compiled backend is
checked against.

Like :mod:`repro.workloads.polybench`, the module exposes a registry
(:data:`PYTHON_KERNELS`, :func:`get_program`, :func:`default_sizes`) and
a suite builder (:func:`python_suite`) that plugs directly into
:meth:`repro.service.Session.run_suite` and the batch compiler.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..frontend_py import PythonProgram, program

#: name -> PythonProgram with its default size bindings.
PYTHON_KERNELS: Dict[str, PythonProgram] = {}


def _register(kernel: PythonProgram) -> PythonProgram:
    PYTHON_KERNELS[kernel.name] = kernel
    return kernel


# --------------------------------------------------------------------------
# Stencils
# --------------------------------------------------------------------------

@_register
@program
def jacobi2d(N=16, T=4):
    """Jacobi 2D five-point stencil (sliced form of the PolyBench kernel)."""
    A = np.zeros((N, N))
    for i in range(N):
        for j in range(N):
            A[i, j] = ((i * 7 + j * 3) % 11) * 0.125 - 0.5
    B = np.zeros((N, N))
    for t in range(T):
        B[1:-1, 1:-1] = 0.2 * (A[1:-1, 1:-1] + A[1:-1, :-2] + A[1:-1, 2:]
                               + A[:-2, 1:-1] + A[2:, 1:-1])
        A[1:-1, 1:-1] = 0.2 * (B[1:-1, 1:-1] + B[1:-1, :-2] + B[1:-1, 2:]
                               + B[:-2, 1:-1] + B[2:, 1:-1])
    s = 0.0
    for i in range(N):
        for j in range(N):
            s += A[i, j] * ((i + 2 * j) % 5)
    return s


@_register
@program
def heat1d(N=48, T=6):
    """Explicit 1D heat equation, updated in place through slices."""
    u = np.zeros(N)
    for i in range(N):
        u[i] = ((i * 5) % 13) * 0.2 - 1.0
    alpha = 0.1
    for t in range(T):
        u[1:-1] = u[1:-1] + alpha * (u[:-2] - 2.0 * u[1:-1] + u[2:])
    s = 0.0
    for i in range(N):
        s += u[i] * (1.0 + 0.01 * i)
    return s


@_register
@program
def blur3(N=18):
    """3x3 box blur over a 2D field (separable-stencil access pattern)."""
    src = np.zeros((N, N))
    for i in range(N):
        for j in range(N):
            src[i, j] = ((3 * i + 5 * j) % 9) * 0.25
    dst = np.zeros((N, N))
    dst[1:-1, 1:-1] = (src[:-2, :-2] + src[:-2, 1:-1] + src[:-2, 2:]
                       + src[1:-1, :-2] + src[1:-1, 1:-1] + src[1:-1, 2:]
                       + src[2:, :-2] + src[2:, 1:-1] + src[2:, 2:]) / 9.0
    s = 0.0
    for i in range(N):
        for j in range(N):
            s += dst[i, j] * ((i * j) % 7)
    return s


# --------------------------------------------------------------------------
# ML operators (seeded from workloads/mish.py)
# --------------------------------------------------------------------------

@_register
@program
def mish(N=128):
    """Mish activation x * tanh(softplus(x)) — the paper's case study."""
    x = np.zeros(N)
    for i in range(N):
        x[i] = (i % 17) * 0.25 - 2.0
    y = x * np.tanh(np.log(1.0 + np.exp(x)))
    s = 0.0
    for i in range(N):
        s += y[i] * (1.0 + 0.001 * i)
    return s


@_register
@program
def gelu(N=128):
    """GELU (tanh approximation) elementwise activation."""
    x = np.zeros(N)
    for i in range(N):
        x[i] = ((i * 3) % 23) * 0.2 - 2.2
    inner = 0.7978845608028654 * (x + 0.044715 * x * x * x)
    y = 0.5 * x * (1.0 + np.tanh(inner))
    s = 0.0
    for i in range(N):
        s += y[i] * (1.0 + 0.002 * i)
    return s


@_register
@program
def silu(N=128):
    """SiLU/swish activation x * sigmoid(x)."""
    x = np.zeros(N)
    for i in range(N):
        x[i] = ((i * 11) % 19) * 0.3 - 2.7
    y = x / (1.0 + np.exp(-x))
    s = 0.0
    for i in range(N):
        s += y[i] * (1.0 + 0.001 * i)
    return s


# --------------------------------------------------------------------------
# Normalization chains
# --------------------------------------------------------------------------

@_register
@program
def softmax(N=64):
    """Numerically stabilized softmax with a weighted checksum."""
    x = np.zeros(N)
    for i in range(N):
        x[i] = ((i * 7) % 29) * 0.125 - 1.5
    m = np.max(x)
    e = np.exp(x - m)
    p = e / np.sum(e)
    s = 0.0
    for i in range(N):
        s += p[i] * (i + 1)
    return s


@_register
@program
def layernorm(R=8, C=32):
    """Row-wise layer normalization with affine scale/shift."""
    x = np.zeros((R, C))
    for i in range(R):
        for j in range(C):
            x[i, j] = ((i * 13 + j * 5) % 17) * 0.25 - 2.0
    out = np.zeros((R, C))
    for i in range(R):
        mu = np.sum(x[i, :]) / C
        d = x[i, :] - mu
        var = np.sum(d * d) / C
        inv = 1.0 / np.sqrt(var + 1.0e-5)
        out[i, :] = d * inv * 0.9 + 0.1
    s = 0.0
    for i in range(R):
        for j in range(C):
            s += out[i, j] * ((i + j) % 3 + 1)
    return s


@_register
@program
def axpy_chain(N=160):
    """AXPY chain ending in a dot-product reduction (BLAS-1 composition)."""
    x = np.zeros(N)
    y = np.zeros(N)
    for i in range(N):
        x[i] = ((i * 3) % 7) * 0.5 - 1.0
        y[i] = ((i * 5) % 11) * 0.25 - 1.25
    y = 1.5 * x + y
    z = 0.25 * y + x
    s = 0.0
    for i in range(N):
        s += z[i] * x[i]
    return s


# --------------------------------------------------------------------------
# Registry helpers (mirroring workloads.polybench)
# --------------------------------------------------------------------------

def kernel_names() -> List[str]:
    return sorted(PYTHON_KERNELS)


def default_sizes(name: str) -> Dict[str, int]:
    """Default problem-size bindings of a kernel (a fresh, editable dict)."""
    return dict(get_program(name).sizes)


def get_program(name: str, sizes: Optional[Dict[str, int]] = None) -> PythonProgram:
    """Fetch a kernel (rebound to ``sizes`` when given).

    Unknown names raise :class:`~repro.errors.PipelineError` listing the
    available kernels and suggesting the closest match, like
    :func:`repro.workloads.polybench.get_kernel`.
    """
    try:
        kernel = PYTHON_KERNELS[name]
    except KeyError:
        from ..errors import PipelineError
        from ..passbase import suggest

        raise PipelineError(
            f"Unknown python kernel {name!r}; "
            + suggest(name, kernel_names(), "available kernels")
        ) from None
    return kernel.bind(sizes) if sizes else kernel


def python_suite(
    kernels: Optional[List[str]] = None,
    sizes: Optional[Dict[str, Dict[str, int]]] = None,
) -> Dict[str, PythonProgram]:
    """Instantiate a name → program workload set for the suite runner.

    Same shape as :func:`repro.workloads.polybench.polybench_suite`; the
    values are :class:`PythonProgram` instances, which every compilation
    entry point accepts exactly like C source strings.
    """
    names = list(kernels) if kernels is not None else kernel_names()
    sizes = sizes or {}
    return {name: get_program(name, sizes.get(name)) for name in names}
