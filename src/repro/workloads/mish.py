"""The Mish activation case study (Fig. 8 of the paper).

The paper compiles ``x = torch.log(1 + torch.exp(x))`` through PyTorch
(eager), ``torch.jit``, Torch-MLIR and DCIR (optionally with ICC's
vectorized math).  PyTorch and Torch-MLIR are not available here, so this
module provides:

* a tiny *eager tensor-expression* evaluator that executes the expression
  the way an eager framework does — one loop and one freshly allocated
  temporary tensor per operator (``exp``, ``1 +``, ``log``) — modelling
  PyTorch;
* a fused-loop variant with temporaries (modelling ``torch.jit``'s operator
  fusion that still materializes tensors);
* a C version of the element-wise expression that goes through the regular
  compilation pipelines (``mlir`` models Torch-MLIR's lowering with its
  intermediate allocations; ``dcir`` removes the allocations; ``dcir+vec``
  models ICC/SLEEF vectorized math).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict

import numpy as np

#: Element-wise Mish (softplus) over a 1-D tensor, written in C.  The two
#: intermediate arrays correspond to the intermediate tensors Torch-MLIR
#: materializes; the outer loop models running the operator repeatedly.
MISH_C_SOURCE = """
double mish() {
  double x[@N@];
  double t0[@N@];
  double t1[@N@];
  double out[@N@];
  for (int i = 0; i < @N@; i++)
    x[i] = (i % 17) * 0.25 - 2.0;
  for (int r = 0; r < @REPS@; r++) {
    for (int i = 0; i < @N@; i++)
      t0[i] = exp(x[i]);
    for (int i = 0; i < @N@; i++)
      t1[i] = 1.0 + t0[i];
    for (int i = 0; i < @N@; i++)
      out[i] = log(t1[i]);
  }
  double sum = 0.0;
  for (int i = 0; i < @N@; i++)
    sum += out[i];
  return sum;
}
"""

MISH_DEFAULT_SIZES = {"N": 2000, "REPS": 3}


def mish_source(sizes: Dict[str, int] | None = None) -> str:
    source = MISH_C_SOURCE
    for key, value in {**MISH_DEFAULT_SIZES, **(sizes or {})}.items():
        source = source.replace(f"@{key}@", str(value))
    return source


def _input_tensor(n: int) -> np.ndarray:
    return np.array([(i % 17) * 0.25 - 2.0 for i in range(n)], dtype=np.float64)


@dataclass
class MishResult:
    name: str
    seconds: float
    checksum: float
    allocations: int


def run_eager(n: int, reps: int) -> MishResult:
    """Eager framework model: one loop + one fresh temporary per operator."""
    x = _input_tensor(n)
    allocations = 0
    start = time.perf_counter()
    out = np.empty(n)
    for _ in range(reps):
        t0 = np.empty(n); allocations += 1
        for i in range(n):
            t0[i] = math.exp(x[i])
        t1 = np.empty(n); allocations += 1
        for i in range(n):
            t1[i] = 1.0 + t0[i]
        out = np.empty(n); allocations += 1
        for i in range(n):
            out[i] = math.log(t1[i])
    elapsed = time.perf_counter() - start
    return MishResult("pytorch-eager", elapsed, float(out.sum()), allocations)


def run_jit(n: int, reps: int) -> MishResult:
    """torch.jit model: operators fused into one loop, output still allocated."""
    x = _input_tensor(n)
    allocations = 0
    start = time.perf_counter()
    out = np.empty(n)
    for _ in range(reps):
        out = np.empty(n); allocations += 1
        for i in range(n):
            out[i] = math.log(1.0 + math.exp(x[i]))
    elapsed = time.perf_counter() - start
    return MishResult("pytorch-jit", elapsed, float(out.sum()), allocations)


def reference_checksum(n: int) -> float:
    x = _input_tensor(n)
    return float(np.log1p(np.exp(x)).sum())
