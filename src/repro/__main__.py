"""Command-line interface: ``python -m repro <subcommand>``.

Mirrors the library's pipeline API:

* ``list-pipelines`` — registered pipeline names (``-v`` adds the spec
  summary: pass counts, bridge, codegen flags);
* ``list-workloads`` — registered workload suites (polybench,
  casestudies, mish, python) and their kernels;
* ``show-pipeline NAME`` — a registered spec as JSON (edit the output and
  feed it back via ``--spec`` to build ablations without writing Python);
* ``compile`` — compile a C file or a named PolyBench kernel through a
  registered pipeline or a spec JSON file, printing the generated code or
  per-stage statistics (``--verbose`` adds per-pass records including the
  pattern engine's match/application counts); ``--frontend python``
  switches the input language to NumPy-style Python (a script file or a
  ``--kernel`` from the python suite) — same flag on ``run``,
  ``transforms match`` and ``tune``;
* ``run`` — compile and execute, printing the return value and timings;
  ``--timeout`` bounds the native toolchain build and ``--degradation
  strict|fallback`` picks whether a failing native backend raises or
  falls back to the interpreted runner;
* ``transforms list`` — registered data-centric passes; pattern-based
  transformations show their drain policy and tunable parameter axes;
* ``transforms match`` — compile a kernel up to the point a transformation
  would run and print its matched sites (``--json`` for machine-readable
  output) — the "what would this rewrite touch" query;
* ``tune`` — auto-tune the pipeline composition for a kernel: search
  ablations/reorderings/codegen variants of a base pipeline
  (``--pipeline``/``--spec``) with a pluggable strategy and evaluator,
  print the ranking and optionally write the ``TuningReport`` JSON
  (``-o``); seeded searches (``--budget N --seed S``) produce the same
  winner digest in every process;
* ``bench`` — compile-time benchmark: sweep the registered pipelines over
  the PolyBench suite (cold and through the compile cache) and write
  ``BENCH_compile.json``; ``--quick`` restricts to three kernels and
  ``--check-cached-counters`` fails when a cache hit performed any
  frontend/pass work (the CI benchmark smoke gate).

Examples::

    python -m repro list-pipelines
    python -m repro show-pipeline dcir > dcir.json
    python -m repro compile --kernel gemm --size NI=8 NJ=9 NK=10 --spec ablation.json --stats
    python -m repro run kernel.c --pipeline dcir+vec --repetitions 5
    python -m repro bench --quick --check-cached-counters
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from . import (
    PipelineError,
    PipelineSpec,
    compile_c,
    generate_program,
    get_pipeline,
    list_pipelines,
    run_compiled,
)
from .service.resilience import DEGRADATION_MODES
from .pipeline.spec import PipelineLike


def _parse_sizes(items: Optional[List[str]]) -> Dict[str, int]:
    sizes: Dict[str, int] = {}
    for item in items or []:
        name, _, value = item.partition("=")
        if not _ or not name:
            raise SystemExit(f"Bad --size {item!r}: expected NAME=INTEGER")
        try:
            sizes[name] = int(value)
        except ValueError:
            raise SystemExit(f"Bad --size {item!r}: {value!r} is not an integer")
    return sizes


def _load_python_file(path: str, function: Optional[str], sizes: Dict[str, int]):
    """Collect the Python-frontend program(s) defined by a script file.

    The file is executed with ``np``/``math``/``program`` pre-bound;
    ``@repro.program``-decorated definitions are collected directly, and
    plain top-level functions are coerced (their int defaults become size
    bindings).  ``--function`` picks one when the file defines several.
    """
    import math
    import types

    import numpy as np

    from .frontend_py import PythonProgram, as_program, program as program_decorator

    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise SystemExit(f"Cannot read {path!r}: {exc}")
    namespace: Dict[str, object] = {
        "np": np, "numpy": np, "math": math, "program": program_decorator,
        "__file__": path, "__name__": "__repro_program__",
    }
    try:
        exec(compile(text, path, "exec"), namespace)
    except PipelineError:
        raise
    except Exception as exc:
        raise SystemExit(f"Error executing {path!r}: {exc}")
    programs: Dict[str, PythonProgram] = {}
    for key, value in namespace.items():
        if isinstance(value, PythonProgram):
            programs[value.name] = value
        elif (isinstance(value, types.FunctionType)
              and value.__module__ == "__repro_program__"):
            programs.setdefault(key, as_program(value))
    if not programs:
        raise SystemExit(f"{path!r} defines no Python-frontend programs")
    if function is not None:
        if function not in programs:
            raise SystemExit(
                f"{path!r} defines no program named {function!r} "
                f"(found: {', '.join(sorted(programs))})"
            )
        selected = programs[function]
    elif len(programs) == 1:
        selected = next(iter(programs.values()))
    else:
        raise SystemExit(
            f"{path!r} defines {len(programs)} programs "
            f"({', '.join(sorted(programs))}); pick one with --function"
        )
    return selected.bind(sizes) if sizes else selected


def _load_source(args):
    frontend = getattr(args, "frontend", "c")
    if args.kernel is not None and args.source is not None:
        raise SystemExit("Pass either a source file or --kernel, not both")
    if args.kernel is not None:
        # Unknown kernels raise PipelineError (with suggestions), which
        # main() renders as a clean CLI error.
        if frontend == "python":
            from .workloads.python_suite import get_program

            return get_program(args.kernel, _parse_sizes(args.size) or None)
        from .workloads import get_kernel

        return get_kernel(args.kernel, _parse_sizes(args.size) or None)
    if args.source is None:
        raise SystemExit("Pass a source file or --kernel NAME")
    if frontend == "python":
        if args.source == "-":
            raise SystemExit(
                "--frontend python needs a real file (the frontend recovers "
                "function sources via inspect), not stdin"
            )
        return _load_python_file(args.source, args.function, _parse_sizes(args.size))
    if args.source == "-":
        return sys.stdin.read()
    try:
        with open(args.source, "r", encoding="utf-8") as handle:
            return handle.read()
    except OSError as exc:
        raise SystemExit(f"Cannot read {args.source!r}: {exc}")


def _load_pipeline(args) -> PipelineLike:
    pipeline: PipelineLike = args.pipeline
    if args.spec is not None:
        try:
            with open(args.spec, "r", encoding="utf-8") as handle:
                pipeline = PipelineSpec.from_dict(json.load(handle))
        except OSError as exc:
            raise SystemExit(f"Cannot read spec file {args.spec!r}: {exc}")
        except (ValueError, KeyError, TypeError, PipelineError) as exc:
            raise SystemExit(f"Bad pipeline spec in {args.spec!r}: {exc}")
    backend = getattr(args, "backend", None)
    if backend is not None:
        from .pipeline import resolve_pipeline

        spec = resolve_pipeline(pipeline)
        if spec.codegen.backend != backend:
            # Keep the registered name: --backend selects how the same
            # pipeline executes, it is not an ablation of it.
            pipeline = spec.with_codegen(backend=backend).derive(
                name=spec.name, description=spec.description
            )
    threads = getattr(args, "threads", None)
    if threads is not None:
        from .pipeline import resolve_pipeline

        if threads < 0:
            raise SystemExit(f"--threads must be >= 0 (got {threads})")
        spec = resolve_pipeline(pipeline)
        if not spec.bridge:
            raise SystemExit(
                f"--threads requires a data-centric pipeline (map schedules "
                f"live on the SDFG; {spec.label!r} never builds one)"
            )
        if all(pass_spec.name != "parallelize" for pass_spec in spec.data_passes):
            params = {"n_threads": threads} if threads > 0 else {}
            passes = list(spec.data_passes) + [("parallelize", params)]
            pipeline = spec.with_passes("data", passes).derive(
                name=spec.name, description=spec.description
            )
    return pipeline


def _add_compile_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "source", nargs="?",
        help="source file: C ('-' for stdin) or, with --frontend python, a "
        "Python script defining the program",
    )
    parser.add_argument(
        "--frontend", choices=("c", "python"), default="c",
        help="input language: C (default) or NumPy-style Python "
        "(both lower into the same control-centric IR)",
    )
    parser.add_argument(
        "--kernel",
        help="compile a named kernel instead of a file (PolyBench for the C "
        "frontend, the python suite with --frontend python)",
    )
    parser.add_argument(
        "--size", nargs="*", metavar="NAME=VALUE", help="kernel size bindings"
    )
    parser.add_argument("--pipeline", default="dcir", help="registered pipeline name")
    parser.add_argument(
        "--spec", help="JSON file holding a PipelineSpec (overrides --pipeline)"
    )
    parser.add_argument("--function", help="function to compile (defaults to the only one)")
    parser.add_argument(
        "--backend",
        choices=("python", "native"),
        help="execution backend for data-centric pipelines: interpreted "
        "Python (default) or C compiled with the system compiler",
    )
    parser.add_argument(
        "--threads", type=int, metavar="N",
        help="request parallel map schedules (appends the 'parallelize' "
        "pass): N > 0 pins the worker count, 0 resolves it at run time "
        "from REPRO_NUM_THREADS or the machine",
    )


def _cmd_list_pipelines(args) -> int:
    for name in list_pipelines():
        if args.verbose:
            spec = get_pipeline(name)
            shape = (
                f"control={len(spec.control_passes)} "
                f"bridge={'yes' if spec.bridge else 'no':<3} "
                f"data={len(spec.data_passes)}"
            )
            print(f"{name:<12} {shape}  {spec.description}")
        else:
            print(name)
    return 0


def _cmd_list_workloads(args) -> int:
    from .workloads import get_suite, list_suites

    for suite in list_suites():
        items = get_suite(suite)
        if args.verbose:
            print(f"{suite} ({len(items)} kernels):")
            for name in sorted(items):
                source = items[name]
                if isinstance(source, str):
                    detail = f"C, {len(source)} bytes"
                else:
                    sizes = ", ".join(
                        f"{k}={v}" for k, v in sorted(source.sizes.items())
                    )
                    detail = f"python, sizes {sizes}"
                print(f"  {name:<16} {detail}")
        else:
            print(f"{suite:<14} {len(items):>2} kernels: {', '.join(sorted(items))}")
    return 0


def _cmd_show_pipeline(args) -> int:
    spec = get_pipeline(args.name)
    print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
    if args.verbose:
        # Per-pass detail on stderr so stdout stays parseable JSON.
        from .passes import CONTROL_PASSES
        from .transforms import DATA_PASSES
        from .transforms.rewrite import Transformation, transformation_parameters

        print("# passes:", file=sys.stderr)
        for stage, registry in (("control", CONTROL_PASSES), ("data", DATA_PASSES)):
            for pass_spec in spec.stage_passes(stage):
                cls = registry.get(pass_spec.name)
                if isinstance(cls, type) and issubclass(cls, Transformation):
                    axes = ", ".join(
                        f"{param}∈{list(presets)}" for param, presets in cls.PARAMS.items()
                    )
                    defaults = transformation_parameters(cls)
                    detail = f"pattern-based (drain {cls.DRAIN})"
                    if axes:
                        detail += f", params: {axes}, defaults {defaults}"
                else:
                    detail = "whole-graph pass"
                params = f" {pass_spec.params}" if pass_spec.params else ""
                print(f"#   {stage:<8} {pass_spec.name:<34}{params} — {detail}",
                      file=sys.stderr)
    return 0


def _cmd_compile(args) -> int:
    program = generate_program(
        _load_source(args), _load_pipeline(args), function=args.function
    )
    if args.stats or args.verbose:
        print(f"pipeline: {program.pipeline}")
        print(f"compile:  {program.compile_seconds * 1e3:.2f} ms")
        for stage, seconds in program.stage_seconds.items():
            print(f"  {stage:<10} {seconds * 1e3:8.2f} ms")
        print(f"code:     {len(program.code)} bytes")
        if program.native_code is not None:
            print(f"native:   {len(program.native_code)} bytes of C")
        elif program.native_fallback is not None:
            print(f"native:   fell back to python ({program.native_fallback})")
        if args.verbose and program.report is not None:
            # Per-pass records with the pattern engine's site accounting.
            from .passbase import match_suffix

            for stage_report in program.report.stages:
                if not stage_report.records:
                    continue
                print(f"{stage_report.stage} passes:")
                for record in stage_report.records:
                    print(
                        f"  {record.name:<34} changed={record.changed!s:<5} "
                        f"{record.seconds * 1e3:8.2f} ms" + match_suffix(record)
                    )
    elif args.output is None:
        # --backend native prints the C translation unit (the artifact the
        # native backend actually executes); otherwise the Python program.
        sys.stdout.write(program.native_code or program.code)
    if args.output is not None:
        try:
            with open(args.output, "w", encoding="utf-8") as output:
                output.write(program.native_code or program.code)
        except OSError as exc:
            raise SystemExit(f"Cannot write {args.output!r}: {exc}")
    return 0


def _cmd_transforms(args) -> int:
    from .transforms import DATA_PASSES
    from .transforms.rewrite import Transformation, transformation_parameters

    if args.transforms_command == "list":
        for name in DATA_PASSES.names():
            cls = DATA_PASSES.get(name)
            if not issubclass(cls, Transformation):
                print(f"{name:<34} whole-graph pass")
                continue
            detail = f"pattern-based  drain={cls.DRAIN:<7}"
            if cls.ADDABLE:
                detail += " addable"
            if args.verbose and cls.PARAMS:
                defaults = transformation_parameters(cls)
                axes = ", ".join(
                    f"{param}={defaults[param]!r} ∈ {list(presets)}"
                    for param, presets in cls.PARAMS.items()
                )
                detail += f"  [{axes}]"
            elif cls.PARAMS:
                detail += "  params: " + ", ".join(cls.PARAMS)
            print(f"{name:<34} {detail}")
        return 0

    # transforms match
    from .pipeline import generate_sdfg

    cls = DATA_PASSES.get(args.name)
    if not issubclass(cls, Transformation):
        raise SystemExit(
            f"{args.name!r} is a whole-graph pass without a match enumeration; "
            "see 'transforms list'"
        )
    params = {}
    for item in args.param or []:
        key, _, value = item.partition("=")
        if not _ or not key:
            raise SystemExit(f"Bad --param {item!r}: expected NAME=JSON-VALUE")
        try:
            params[key] = json.loads(value)
        except ValueError:
            params[key] = value
    transformation = DATA_PASSES.build(args.name, params)
    sdfg = generate_sdfg(
        _load_source(args), _load_pipeline(args), function=args.function,
        stop_before=args.name,
    )
    matches = transformation.matches(sdfg)
    if args.json:
        print(json.dumps([m.to_dict() for m in matches], indent=2))
    else:
        for m in matches:
            print(f"[{m.index}] {m.describe()}")
        print(f"{len(matches)} match(es) for {args.name!r}")
    return 0


def _cmd_run(args) -> int:
    result = compile_c(_load_source(args), _load_pipeline(args), function=args.function)
    result.degradation = args.degradation
    result.timeout = args.timeout
    # One warm-up rep absorbs first-call costs (for the native backend
    # that includes cc + dlopen) so "run (best)" reflects steady state.
    run = run_compiled(result, repetitions=args.repetitions, warmup=1, disable_gc=True)
    backend = result.backend
    if result.backend_diagnostic is not None:
        backend += f" (native unavailable: {result.backend_diagnostic})"
    print(f"pipeline:     {result.pipeline}")
    print(f"backend:      {backend}")
    print(f"compile:      {result.compile_seconds * 1e3:.2f} ms")
    print(f"run (best):   {run.seconds * 1e3:.4f} ms over {len(run.rep_seconds)} reps")
    print(f"allocations:  {run.allocations}")
    print(f"return value: {run.return_value}")
    return 0


def _cmd_tune(args) -> int:
    from .service import Session
    from .tuning import SearchSpace, get_evaluator, get_strategy, register_winner, tune

    base = _load_pipeline(args)
    if args.strategy == "auto":
        strategy_name = "random" if args.budget is not None else "exhaustive"
    else:
        strategy_name = args.strategy
    # Options that only one strategy consumes are rejected elsewhere rather
    # than silently ignored ("--seed 7" without --budget runs exhaustive).
    if args.seed is not None and strategy_name != "random":
        raise SystemExit(
            f"--seed only applies to the random strategy (got {strategy_name!r}; "
            "pass --budget to select seeded random search)"
        )
    if args.rounds is not None and strategy_name != "greedy":
        raise SystemExit(f"--rounds only applies to the greedy strategy (got {strategy_name!r})")
    if args.repetitions is not None and args.evaluator != "runtime":
        raise SystemExit("--repetitions only applies to the runtime evaluator")

    strategy_options = {"budget": args.budget}
    if strategy_name == "random":
        strategy_options.update(
            budget=args.budget if args.budget is not None else 16,
            seed=args.seed if args.seed is not None else 0,
        )
    elif strategy_name == "greedy" and args.rounds is not None:
        strategy_options["rounds"] = args.rounds
    strategy = get_strategy(strategy_name, **strategy_options)

    evaluator_options = {}
    if args.evaluator == "runtime" and args.repetitions is not None:
        evaluator_options["repetitions"] = args.repetitions
    evaluator = get_evaluator(args.evaluator, **evaluator_options)

    sizes = None
    if args.kernel is not None:
        if args.frontend == "python":
            from .workloads.python_suite import default_sizes
        else:
            from .workloads import default_sizes

        kernel = args.kernel
        sizes = default_sizes(kernel)
        sizes.update(_parse_sizes(args.size))
    else:
        kernel = args.source if args.source not in (None, "-") else "<stdin>"

    report = tune(
        _load_source(args),
        base=base,
        strategy=strategy,
        evaluator=evaluator,
        space=SearchSpace(base, include_registered=not args.no_registered),
        session=Session(executor=args.executor),
        function=args.function,
        kernel=kernel,
        sizes=sizes,
    )
    print(report.table())
    if args.output is not None:
        print(f"wrote {report.write(args.output)}")
    if report.winner is None:
        print("error: no candidate could be scored", file=sys.stderr)
        return 1
    if args.register:
        registered = register_winner(report, args.register, overwrite=True)
        print(f"registered winning spec as {registered.name!r} (this process)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Compile C kernels through declarative DCIR pipelines.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list-pipelines", help="list registered pipeline names"
    )
    list_parser.add_argument("-v", "--verbose", action="store_true", help="show spec summaries")
    list_parser.set_defaults(func=_cmd_list_pipelines)

    workloads_parser = subparsers.add_parser(
        "list-workloads", help="list registered workload suites and their kernels"
    )
    workloads_parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="show per-kernel detail (frontend, sizes)",
    )
    workloads_parser.set_defaults(func=_cmd_list_workloads)

    show_parser = subparsers.add_parser(
        "show-pipeline", help="print a registered pipeline spec as JSON"
    )
    show_parser.add_argument("name", help="registered pipeline name")
    show_parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="add per-pass detail (pattern engine, parameter axes) on stderr",
    )
    show_parser.set_defaults(func=_cmd_show_pipeline)

    compile_parser = subparsers.add_parser(
        "compile", help="compile a kernel, printing generated Python code"
    )
    _add_compile_arguments(compile_parser)
    compile_parser.add_argument("--stats", action="store_true", help="print per-stage statistics")
    compile_parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="print per-pass records with pattern match/application counts",
    )
    compile_parser.add_argument("-o", "--output", help="write generated code to a file")
    compile_parser.set_defaults(func=_cmd_compile)

    transforms_parser = subparsers.add_parser(
        "transforms", help="inspect the pattern-based transformation catalog"
    )
    transforms_sub = transforms_parser.add_subparsers(
        dest="transforms_command", required=True
    )
    transforms_list = transforms_sub.add_parser(
        "list", help="list registered data-centric passes and their parameters"
    )
    transforms_list.add_argument(
        "-v", "--verbose", action="store_true", help="show parameter defaults and presets"
    )
    transforms_list.set_defaults(func=_cmd_transforms)
    transforms_match = transforms_sub.add_parser(
        "match",
        help="enumerate a transformation's matched sites on a kernel's SDFG",
    )
    _add_compile_arguments(transforms_match)
    transforms_match.add_argument("name", help="registered transformation name")
    transforms_match.add_argument(
        "--param", nargs="*", metavar="NAME=VALUE",
        help="transformation parameters (JSON values, e.g. tile_size=16)",
    )
    transforms_match.add_argument(
        "--json", action="store_true", help="print matches as JSON"
    )
    transforms_match.set_defaults(func=_cmd_transforms)

    run_parser = subparsers.add_parser("run", help="compile and execute a kernel")
    _add_compile_arguments(run_parser)
    run_parser.add_argument(
        "--repetitions", type=int, default=1, help="best-of-N execution (default 1)"
    )
    run_parser.add_argument(
        "--timeout", type=float,
        help="deadline in seconds for the native toolchain build "
        "(default: REPRO_CC_TIMEOUT or 120)",
    )
    run_parser.add_argument(
        "--degradation", choices=DEGRADATION_MODES, default="fallback",
        help="what a failing native backend does: fall back to the "
        "interpreted runner (default) or fail with the typed error",
    )
    run_parser.set_defaults(func=_cmd_run)

    tune_parser = subparsers.add_parser(
        "tune", help="auto-tune the pipeline composition for a kernel"
    )
    from .tuning import EVALUATORS, STRATEGIES

    _add_compile_arguments(tune_parser)
    tune_parser.add_argument(
        "--strategy", choices=("auto", *STRATEGIES), default="auto",
        help="search strategy (auto: random when --budget is given, else exhaustive)",
    )
    tune_parser.add_argument(
        "--budget", type=int, help="maximum candidate evaluations"
    )
    tune_parser.add_argument(
        "--seed", type=int, help="random-strategy seed (default 0)"
    )
    tune_parser.add_argument(
        "--rounds", type=int, help="greedy-strategy sweep rounds (default 2)"
    )
    tune_parser.add_argument(
        "--evaluator", choices=tuple(EVALUATORS), default="static",
        help="score by the data-movement cost model (deterministic) or measured runtime",
    )
    tune_parser.add_argument(
        "--repetitions", type=int,
        help="best-of-N timing for the runtime evaluator (default 3)",
    )
    tune_parser.add_argument(
        "--no-registered", action="store_true",
        help="search only the base spec's neighbourhood (skip registered-pipeline seeds)",
    )
    tune_parser.add_argument(
        "--executor", choices=("process", "thread", "serial"),
        help="how candidate batches compile (default: processes when CPUs allow)",
    )
    tune_parser.add_argument(
        "-o", "--output", help="write the TuningReport JSON to this path"
    )
    tune_parser.add_argument(
        "--register", metavar="NAME",
        help="register the winning spec under this pipeline name (in this process)",
    )
    tune_parser.set_defaults(func=_cmd_tune)

    bench_parser = subparsers.add_parser(
        "bench", help="compile-time benchmark sweep (writes BENCH_compile.json)"
    )
    from .perf.bench import add_bench_arguments, run_bench_cli

    add_bench_arguments(bench_parser)
    bench_parser.set_defaults(func=run_bench_cli)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except PipelineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
