"""Memlet propagation: lifting per-iteration subsets to parametric subsets.

When a memlet crosses a map boundary, the subset seen outside the scope is
the union of the per-iteration subsets over the map's range.  This is the
parametric data-access tracking the paper identifies as the key analysis
tool of the SDFG IR (§2.2) and the basis of DaCe's symbolic math engine
refinement mentioned in §5.1.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..symbolic import Range, Subset
from .memlet import Memlet
from .nodes import MapEntry, MapExit, is_scope_entry, is_scope_exit
from .sdfg import SDFG
from .state import MultiConnectorEdge, SDFGState


def propagate_subset(memlet: Memlet, params: List[str], ranges: List[Range]) -> Memlet:
    """Propagate a memlet's subset over the given map parameters."""
    if memlet.is_empty or memlet.subset is None:
        return memlet.clone()
    subset = memlet.subset
    volume = memlet.num_elements()
    free_names = {sym.name for sym in subset.free_symbols()}
    for param, rng in zip(params, ranges):
        # Whether or not the access depends on this parameter, every
        # iteration contributes to the moved volume; the subset only grows
        # for parameters it actually mentions.
        if param in free_names:
            subset = subset.bounding_box_over(param, rng)
            free_names = {sym.name for sym in subset.free_symbols()}
        volume = volume * rng.num_elements()
    result = Memlet(data=memlet.data, subset=subset, wcr=memlet.wcr, dynamic=memlet.dynamic)
    result.volume = volume
    return result


def propagate_memlets_scope(state: SDFGState, entry: MapEntry) -> None:
    """Recompute the outer-facing memlets of one map scope from the inner ones."""
    exit_node = state.exit_node(entry)
    params = entry.map.params
    ranges = entry.map.ranges

    # Input side: outer edge IN_x -> entry; inner edges entry OUT_x -> ...
    for outer_edge in state.in_edges(entry):
        if not outer_edge.dst_conn or not outer_edge.dst_conn.startswith("IN_"):
            continue
        connector = outer_edge.dst_conn[3:]
        inner_memlets = [
            edge.data
            for edge in state.out_edges(entry)
            if edge.src_conn == f"OUT_{connector}" and not edge.data.is_empty
        ]
        propagated = _union_propagated(inner_memlets, params, ranges)
        if propagated is not None:
            outer_edge.data = propagated

    # Output side: inner edges ... -> exit IN_x; outer edge exit OUT_x -> ...
    for outer_edge in state.out_edges(exit_node):
        if not outer_edge.src_conn or not outer_edge.src_conn.startswith("OUT_"):
            continue
        connector = outer_edge.src_conn[4:]
        inner_memlets = [
            edge.data
            for edge in state.in_edges(exit_node)
            if edge.dst_conn == f"IN_{connector}" and not edge.data.is_empty
        ]
        propagated = _union_propagated(inner_memlets, params, ranges)
        if propagated is not None:
            outer_edge.data = propagated


def _union_propagated(
    memlets: List[Memlet], params: List[str], ranges: List[Range]
) -> Optional[Memlet]:
    propagated: Optional[Memlet] = None
    for memlet in memlets:
        lifted = propagate_subset(memlet, params, ranges)
        propagated = lifted if propagated is None else propagated.union(lifted)
    return propagated


def propagate_memlets_state(sdfg: SDFG, state: SDFGState) -> None:
    """Propagate memlets through every map scope of a state (innermost first)."""
    scope = state.scope_dict()
    entries = [node for node in state.nodes() if isinstance(node, MapEntry)]
    # Innermost scopes have the longest chain of enclosing entries.
    def depth(node) -> int:
        count = 0
        current = scope.get(node)
        while current is not None:
            count += 1
            current = scope.get(current)
        return count

    for entry in sorted(entries, key=depth, reverse=True):
        propagate_memlets_scope(state, entry)


def propagate_memlets_sdfg(sdfg: SDFG) -> None:
    """Propagate memlets through all map scopes of all states."""
    for state in sdfg.states():
        propagate_memlets_state(sdfg, state)
