"""State-machine level analyses: reachability, liveness, access sets.

These analyses back the extended dead code elimination of §6.2 (Dead State
Elimination works on symbolic conditions; Dead Dataflow Elimination walks
the state machine in reverse topological order tracking future-reused
containers) and the memory-scheduling heuristics of §6.3.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import networkx as nx

from ..symbolic import FALSE, BoolConst
from .data import Scalar
from .sdfg import SDFG, InterstateEdge
from .state import SDFGState


def reachable_states(sdfg: SDFG) -> Set[SDFGState]:
    """States reachable from the start state via edges not provably false."""
    if sdfg.start_state is None:
        return set()
    reachable: Set[SDFGState] = set()
    frontier = [sdfg.start_state]
    while frontier:
        state = frontier.pop()
        if state in reachable:
            continue
        reachable.add(state)
        for edge in sdfg.out_edges(state):
            condition = edge.data.condition
            if isinstance(condition, BoolConst) and not condition.value:
                continue
            frontier.append(edge.dst)
    return reachable


def state_access_sets(sdfg: SDFG) -> Dict[SDFGState, Tuple[Set[str], Set[str]]]:
    """Per-state (read set, write set) of container names."""
    return {state: (state.read_set(), state.write_set()) for state in sdfg.states()}


def interstate_read_symbols(sdfg: SDFG) -> Set[str]:
    """Names (symbols or scalar containers) read by interstate edges."""
    names: Set[str] = set()
    for edge in sdfg.edges():
        names |= edge.data.free_symbols()
    return names


def live_containers_per_state(sdfg: SDFG) -> Dict[SDFGState, Set[str]]:
    """For each state, the containers that may still be read *after* it.

    Used by Dead Dataflow Elimination: a write whose container is not live
    after the state — and not externally visible — can be removed.  The
    analysis is a backwards dataflow fixed point over the state machine:

        live_out(S) = union over successors T of (live_in(T))
        live_in(S)  = (live_out(S) - killed(S)) | read(S) | edge_reads(S)

    Kill information is conservative: a state only kills a container if it
    writes it entirely without reading it (we do not track partial writes).
    """
    access = state_access_sets(sdfg)
    edge_reads: Dict[SDFGState, Set[str]] = {state: set() for state in sdfg.states()}
    for edge in sdfg.edges():
        edge_reads[edge.src] |= edge.data.free_symbols() & set(sdfg.arrays)

    externally_visible = {
        name for name, descriptor in sdfg.arrays.items() if not descriptor.transient
    }
    externally_visible |= set(sdfg.return_values)

    live_in: Dict[SDFGState, Set[str]] = {state: set() for state in sdfg.states()}
    live_out: Dict[SDFGState, Set[str]] = {state: set() for state in sdfg.states()}

    changed = True
    iterations = 0
    while changed and iterations < 2 * len(sdfg.states()) + 8:
        changed = False
        iterations += 1
        for state in sdfg.states():
            reads, writes = access[state]
            new_out: Set[str] = set()
            for edge in sdfg.out_edges(state):
                new_out |= live_in[edge.dst]
            killed = {
                name
                for name in writes - reads
                if isinstance(sdfg.arrays.get(name), Scalar)
            }
            new_in = (new_out - killed) | reads | edge_reads[state]
            if new_out != live_out[state] or new_in != live_in[state]:
                live_out[state] = new_out
                live_in[state] = new_in
                changed = True

    # Externally visible containers are always live.
    for state in sdfg.states():
        live_out[state] |= externally_visible
    return live_out


def containers_ever_read(sdfg: SDFG) -> Set[str]:
    """Containers read in any state or on any interstate edge."""
    read: Set[str] = set()
    for state in sdfg.states():
        read |= state.read_set()
    read |= interstate_read_symbols(sdfg) & set(sdfg.arrays)
    return read


def containers_ever_written(sdfg: SDFG) -> Set[str]:
    written: Set[str] = set()
    for state in sdfg.states():
        written |= state.write_set()
    for edge in sdfg.edges():
        written |= set(edge.data.assignments) & set(sdfg.arrays)
    return written


def symbols_assigned_once(sdfg: SDFG) -> Dict[str, object]:
    """Symbols assigned exactly once across all interstate edges, with the
    assigned expression (the precondition for symbol propagation, §6.1)."""
    counts: Dict[str, int] = {}
    values: Dict[str, object] = {}
    for edge in sdfg.edges():
        for name, value in edge.data.assignments.items():
            counts[name] = counts.get(name, 0) + 1
            values[name] = value
    return {name: values[name] for name, count in counts.items() if count == 1}
