"""Memlets: explicit data-movement edges of the SDFG IR.

A memlet names the container being moved, the (symbolic, rectangular)
subset of it, the data volume, an optional write-conflict-resolution (WCR)
function — the "update" access mode the paper distinguishes from plain
writes (§3, difference 3; §6.1 Update Detection) — and whether the access
pattern is dynamic (data-dependent, e.g. indirect indexing).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Union

from ..symbolic import Expr, Integer, Subset, sympify

#: Supported WCR (write-conflict resolution) operators and their Python form.
WCR_OPERATORS = {
    "+": "lambda a, b: a + b",
    "*": "lambda a, b: a * b",
    "min": "lambda a, b: min(a, b)",
    "max": "lambda a, b: max(a, b)",
}


class Memlet:
    """A single data-movement descriptor attached to a dataflow edge."""

    def __init__(
        self,
        data: Optional[str] = None,
        subset: Optional[Union[Subset, str, Sequence]] = None,
        wcr: Optional[str] = None,
        dynamic: bool = False,
        volume: Optional[Union[int, Expr]] = None,
    ):
        self.data = data
        if subset is None:
            self.subset: Optional[Subset] = None
        elif isinstance(subset, Subset):
            self.subset = subset
        elif isinstance(subset, str):
            self.subset = Subset.parse(subset)
        else:
            self.subset = Subset(subset)
        if wcr is not None and wcr not in WCR_OPERATORS:
            raise ValueError(f"Unsupported WCR operator {wcr!r}")
        self.wcr = wcr
        self.dynamic = dynamic
        if volume is not None:
            self.volume = sympify(volume)
        elif self.subset is not None:
            self.volume = self.subset.num_elements()
        else:
            self.volume = Integer(0)

    # -- constructors -----------------------------------------------------------
    @staticmethod
    def simple(data: str, subset: Union[str, Subset, Sequence], wcr: Optional[str] = None) -> "Memlet":
        return Memlet(data=data, subset=subset, wcr=wcr)

    @staticmethod
    def from_indices(data: str, indices: Sequence) -> "Memlet":
        return Memlet(data=data, subset=Subset.from_indices(indices))

    @staticmethod
    def full(data: str, shape: Sequence) -> "Memlet":
        return Memlet(data=data, subset=Subset.full(shape))

    @staticmethod
    def empty() -> "Memlet":
        """Dependency-only edge that moves no data."""
        return Memlet(data=None, subset=None)

    # -- queries ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return self.data is None

    def num_elements(self) -> Expr:
        if self.subset is None:
            return Integer(0)
        return self.subset.num_elements()

    def free_symbols(self) -> frozenset:
        result: frozenset = frozenset()
        if self.subset is not None:
            result |= self.subset.free_symbols()
        result |= self.volume.free_symbols()
        return result

    def subs(self, mapping: Mapping[str, Expr]) -> "Memlet":
        return Memlet(
            data=self.data,
            subset=self.subset.subs(mapping) if self.subset is not None else None,
            wcr=self.wcr,
            dynamic=self.dynamic,
            volume=self.volume.subs(mapping),
        )

    def union(self, other: "Memlet") -> "Memlet":
        """Union of two memlets over the same container (bounding box)."""
        if self.data != other.data:
            raise ValueError(f"Cannot union memlets of {self.data!r} and {other.data!r}")
        if self.subset is None:
            return other
        if other.subset is None:
            return self
        return Memlet(
            data=self.data,
            subset=self.subset.union(other.subset),
            wcr=self.wcr if self.wcr == other.wcr else None,
            dynamic=self.dynamic or other.dynamic,
        )

    def clone(self) -> "Memlet":
        return Memlet(
            data=self.data,
            subset=self.subset,
            wcr=self.wcr,
            dynamic=self.dynamic,
            volume=self.volume,
        )

    # -- printing ----------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Memlet({self})"

    def __str__(self) -> str:
        if self.is_empty:
            return "(empty)"
        text = f"{self.data}[{self.subset}]" if self.subset is not None else str(self.data)
        if self.wcr is not None:
            text += f" (wcr: {self.wcr})"
        if self.dynamic:
            text += " (dyn)"
        return text
