"""SDFG states: acyclic dataflow multigraphs.

A state contains access nodes, tasklets and map scopes connected by edges
that carry memlets.  Execution order inside a state is defined purely by
data dependencies (§2.2); the surrounding state machine provides control
flow.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

import networkx as nx

from ..symbolic import Range
from .memlet import Memlet
from .nodes import (
    AccessNode,
    CodeNode,
    ConsumeEntry,
    ConsumeExit,
    Map,
    MapEntry,
    MapExit,
    Node,
    Tasklet,
    is_scope_entry,
    is_scope_exit,
)

_edge_counter = itertools.count()


class MultiConnectorEdge:
    """A dataflow edge: (source node, source connector) → (dest node, dest
    connector), carrying a memlet."""

    __slots__ = ("src", "src_conn", "dst", "dst_conn", "data", "key")

    def __init__(
        self,
        src: Node,
        src_conn: Optional[str],
        dst: Node,
        dst_conn: Optional[str],
        data: Memlet,
        key: Optional[int] = None,
    ):
        self.src = src
        self.src_conn = src_conn
        self.dst = dst
        self.dst_conn = dst_conn
        self.data = data
        self.key = key if key is not None else next(_edge_counter)

    def __hash__(self) -> int:
        return hash(self.key)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MultiConnectorEdge) and other.key == self.key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Edge({self.src!r}.{self.src_conn} -> {self.dst!r}.{self.dst_conn}: {self.data})"
        )


class SDFGState:
    """A single state: an acyclic multigraph of dataflow nodes."""

    def __init__(self, label: str, sdfg: Optional["SDFG"] = None):  # noqa: F821
        self.label = label
        self.sdfg = sdfg
        self._graph = nx.MultiDiGraph()

    # -- node management -----------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        self._graph.add_node(node)
        return node

    def add_access(self, data: str) -> AccessNode:
        return self.add_node(AccessNode(data))

    def add_tasklet(
        self,
        label: str,
        inputs: Sequence[str],
        outputs: Sequence[str],
        code: str,
        language: str = "python",
    ) -> Tasklet:
        return self.add_node(Tasklet(label, inputs, outputs, code, language))

    def add_map(
        self, label: str, params: Sequence[str], ranges: Sequence[Range]
    ) -> Tuple[MapEntry, MapExit]:
        map_obj = Map(label, params, ranges)
        entry = MapEntry(map_obj)
        exit_node = MapExit(map_obj)
        self.add_node(entry)
        self.add_node(exit_node)
        return entry, exit_node

    def remove_node(self, node: Node) -> None:
        self._graph.remove_node(node)

    def remove_nodes(self, nodes: Iterable[Node]) -> None:
        for node in list(nodes):
            if node in self._graph:
                self._graph.remove_node(node)

    def nodes(self) -> List[Node]:
        return list(self._graph.nodes())

    def __contains__(self, node: Node) -> bool:
        return node in self._graph

    def number_of_nodes(self) -> int:
        return self._graph.number_of_nodes()

    # -- edge management --------------------------------------------------------------
    def add_edge(
        self,
        src: Node,
        src_conn: Optional[str],
        dst: Node,
        dst_conn: Optional[str],
        memlet: Memlet,
    ) -> MultiConnectorEdge:
        if src not in self._graph:
            self.add_node(src)
        if dst not in self._graph:
            self.add_node(dst)
        edge = MultiConnectorEdge(src, src_conn, dst, dst_conn, memlet)
        if src_conn and isinstance(src, CodeNode):
            src.add_out_connector(src_conn)
        if dst_conn and isinstance(dst, CodeNode):
            dst.add_in_connector(dst_conn)
        self._graph.add_edge(src, dst, key=edge.key, edge=edge)
        return edge

    def add_nedge(self, src: Node, dst: Node, memlet: Optional[Memlet] = None) -> MultiConnectorEdge:
        """Add an edge without connectors (access-to-access copies, dependencies)."""
        return self.add_edge(src, None, dst, None, memlet or Memlet.empty())

    def remove_edge(self, edge: MultiConnectorEdge) -> None:
        self._graph.remove_edge(edge.src, edge.dst, key=edge.key)

    def edges(self) -> List[MultiConnectorEdge]:
        return [data["edge"] for _, _, data in self._graph.edges(data=True)]

    def in_edges(self, node: Node) -> List[MultiConnectorEdge]:
        return [data["edge"] for _, _, data in self._graph.in_edges(node, data=True)]

    def out_edges(self, node: Node) -> List[MultiConnectorEdge]:
        return [data["edge"] for _, _, data in self._graph.out_edges(node, data=True)]

    def in_degree(self, node: Node) -> int:
        return self._graph.in_degree(node)

    def out_degree(self, node: Node) -> int:
        return self._graph.out_degree(node)

    def edges_between(self, src: Node, dst: Node) -> List[MultiConnectorEdge]:
        if not self._graph.has_edge(src, dst):
            return []
        return [data["edge"] for data in self._graph[src][dst].values()]

    def predecessors(self, node: Node) -> List[Node]:
        return list(self._graph.predecessors(node))

    def successors(self, node: Node) -> List[Node]:
        return list(self._graph.successors(node))

    # -- traversal helpers ----------------------------------------------------------------
    def topological_nodes(self) -> List[Node]:
        return list(nx.topological_sort(self._graph))

    def data_nodes(self) -> List[AccessNode]:
        return [node for node in self._graph.nodes() if isinstance(node, AccessNode)]

    def tasklets(self) -> List[Tasklet]:
        return [node for node in self._graph.nodes() if isinstance(node, Tasklet)]

    def source_nodes(self) -> List[Node]:
        return [node for node in self._graph.nodes() if self._graph.in_degree(node) == 0]

    def sink_nodes(self) -> List[Node]:
        return [node for node in self._graph.nodes() if self._graph.out_degree(node) == 0]

    def is_empty(self) -> bool:
        return self._graph.number_of_nodes() == 0

    # -- read/write sets --------------------------------------------------------------------
    def read_set(self) -> Set[str]:
        """Containers read (data flowing out of an access node) in this state."""
        reads: Set[str] = set()
        for edge in self.edges():
            if edge.data.is_empty:
                continue
            if isinstance(edge.src, AccessNode):
                reads.add(edge.src.data)
        return reads

    def write_set(self) -> Set[str]:
        """Containers written (data flowing into an access node) in this state."""
        writes: Set[str] = set()
        for edge in self.edges():
            if edge.data.is_empty:
                continue
            if isinstance(edge.dst, AccessNode):
                writes.add(edge.dst.data)
        return writes

    def read_memlets(self, data: str) -> List[Memlet]:
        return [
            edge.data
            for edge in self.edges()
            if isinstance(edge.src, AccessNode) and edge.src.data == data and not edge.data.is_empty
        ]

    def write_memlets(self, data: str) -> List[Memlet]:
        return [
            edge.data
            for edge in self.edges()
            if isinstance(edge.dst, AccessNode) and edge.dst.data == data and not edge.data.is_empty
        ]

    # -- scope queries -----------------------------------------------------------------------
    def map_entries(self) -> List[MapEntry]:
        """Map-scope entries of this state, in topological (deterministic) order."""
        return [node for node in self.topological_nodes() if isinstance(node, MapEntry)]

    def scope_children(self) -> Dict[Optional[MapEntry], List[Node]]:
        """Nodes per innermost enclosing scope (``None`` = top level).

        The inverse view of :meth:`scope_dict`; node lists follow the
        state's topological order, so consumers enumerate scope members
        deterministically.
        """
        scope = self.scope_dict()
        children: Dict[Optional[MapEntry], List[Node]] = {None: []}
        for entry in scope.values():
            if entry is not None:
                children.setdefault(entry, [])
        for node in self.topological_nodes():
            children.setdefault(scope.get(node), []).append(node)
        return children

    # -- scopes ------------------------------------------------------------------------------
    def scope_dict(self) -> Dict[Node, Optional[MapEntry]]:
        """Map each node to its innermost enclosing scope entry (or None)."""
        scope: Dict[Node, Optional[MapEntry]] = {node: None for node in self._graph.nodes()}
        entries = [node for node in self.topological_nodes() if is_scope_entry(node)]
        for entry in entries:
            exit_node = self.exit_node(entry)
            # Nodes strictly between entry and exit belong to this scope.
            for node in self._scope_members(entry, exit_node):
                scope[node] = entry
            scope[exit_node] = entry
        return scope

    def _scope_members(self, entry: Node, exit_node: Node) -> Set[Node]:
        members: Set[Node] = set()
        frontier = [successor for successor in self._graph.successors(entry)]
        while frontier:
            node = frontier.pop()
            if node is exit_node or node in members:
                continue
            members.add(node)
            frontier.extend(self._graph.successors(node))
        return members

    def exit_node(self, entry: Node) -> Node:
        """The exit node matching a scope entry."""
        if isinstance(entry, MapEntry):
            for node in self._graph.nodes():
                if isinstance(node, MapExit) and node.map is entry.map:
                    return node
        if isinstance(entry, ConsumeEntry):
            for node in self._graph.nodes():
                if isinstance(node, ConsumeExit) and node.label == entry.label.replace(
                    "_entry", "_exit"
                ):
                    return node
        raise KeyError(f"No exit node for scope entry {entry!r}")

    def entry_node(self, exit_node: Node) -> Node:
        if isinstance(exit_node, MapExit):
            for node in self._graph.nodes():
                if isinstance(node, MapEntry) and node.map is exit_node.map:
                    return node
        raise KeyError(f"No entry node for scope exit {exit_node!r}")

    # -- convenience builders ----------------------------------------------------------------
    def add_mapped_tasklet(
        self,
        label: str,
        map_ranges: Dict[str, Range],
        inputs: Dict[str, Memlet],
        code: str,
        outputs: Dict[str, Memlet],
        external_edges: bool = True,
    ) -> Tuple[Tasklet, MapEntry, MapExit]:
        """Create map entry/exit, a tasklet inside, and the connecting edges.

        ``inputs``/``outputs`` map tasklet connector names to memlets.  When
        ``external_edges`` is set, access nodes for the memlet containers
        are created and wired through the map boundary.
        """
        params = list(map_ranges.keys())
        ranges = [map_ranges[param] for param in params]
        entry, exit_node = self.add_map(label, params, ranges)
        tasklet = self.add_tasklet(label, list(inputs), list(outputs), code)
        if not inputs:
            self.add_nedge(entry, tasklet)
        for connector, memlet in inputs.items():
            entry.add_in_connector(f"IN_{memlet.data}")
            entry.add_out_connector(f"OUT_{memlet.data}")
            self.add_edge(entry, f"OUT_{memlet.data}", tasklet, connector, memlet.clone())
            if external_edges:
                read = self.add_access(memlet.data)
                outer = Memlet.full(memlet.data, self._container_shape(memlet.data))
                self.add_edge(read, None, entry, f"IN_{memlet.data}", outer)
        for connector, memlet in outputs.items():
            exit_node.add_in_connector(f"IN_{memlet.data}")
            exit_node.add_out_connector(f"OUT_{memlet.data}")
            self.add_edge(tasklet, connector, exit_node, f"IN_{memlet.data}", memlet.clone())
            if external_edges:
                write = self.add_access(memlet.data)
                outer = Memlet.full(memlet.data, self._container_shape(memlet.data))
                outer.wcr = memlet.wcr
                self.add_edge(exit_node, f"OUT_{memlet.data}", write, None, outer)
        return tasklet, entry, exit_node

    def _container_shape(self, data: str):
        if self.sdfg is None or data not in self.sdfg.arrays:
            return [1]
        shape = self.sdfg.arrays[data].shape
        return shape if shape else [1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SDFGState {self.label}: {self.number_of_nodes()} nodes>"
