"""Dataflow-graph node types of the SDFG IR.

A state's multigraph contains access nodes (views onto data containers),
tasklets (atomic units of computation), and map entry/exit pairs that
delimit parametrically parallel scopes (§2.2 of the paper).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Set, Union

from ..symbolic import Range

_node_counter = itertools.count()


class Node:
    """Base class for dataflow nodes.  Each node has a unique id so that
    identical-looking nodes (e.g. two access nodes of the same array) remain
    distinct graph vertices."""

    def __init__(self, label: str = ""):
        self.node_id = next(_node_counter)
        self.label = label

    def __hash__(self) -> int:
        return hash(self.node_id)

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.label or self.node_id}>"


class AccessNode(Node):
    """A read/write view of a data container within a state."""

    def __init__(self, data: str):
        super().__init__(label=data)
        self.data = data


class CodeNode(Node):
    """Base class for nodes with named connectors (tasklets, nested scopes)."""

    def __init__(self, label: str, inputs: Sequence[str] = (), outputs: Sequence[str] = ()):
        super().__init__(label=label)
        self.in_connectors: Set[str] = set(inputs)
        self.out_connectors: Set[str] = set(outputs)

    def add_in_connector(self, name: str) -> None:
        self.in_connectors.add(name)

    def add_out_connector(self, name: str) -> None:
        self.out_connectors.add(name)


class Tasklet(CodeNode):
    """An atomic unit of computation.

    ``code`` is a block of Python statements over the connector names (the
    *raised* representation of §5.2); ``language`` records the original
    representation (``"python"`` for raised tasklets, ``"mlir"`` for
    tasklets kept in MLIR form and compiled separately).
    """

    def __init__(
        self,
        label: str,
        inputs: Sequence[str],
        outputs: Sequence[str],
        code: str,
        language: str = "python",
    ):
        super().__init__(label, inputs, outputs)
        self.code = code
        self.language = language

    def free_symbols(self) -> Set[str]:
        """Names referenced by the code that are not connectors (best effort)."""
        import re

        names = set(re.findall(r"[A-Za-z_][A-Za-z_0-9]*", self.code))
        return names - self.in_connectors - self.out_connectors


#: Default map schedule: the body executes as a sequential loop nest.
SCHEDULE_SEQUENTIAL = "sequential"

#: Parallel map schedule: both backends split the map's *first* parameter
#: across workers (OpenMP threads natively, forked shared-memory chunk
#: workers interpreted).  Set by ``Parallelize`` after the safety proof in
#: :mod:`repro.sdfg.parallelism` succeeds.
SCHEDULE_PARALLEL = "parallel"

#: The valid values of :attr:`Map.schedule`.
MAP_SCHEDULES = (SCHEDULE_SEQUENTIAL, SCHEDULE_PARALLEL)


class Map:
    """A parametric parallel iteration space shared by an entry/exit pair.

    Scheduling annotations set by the parameterized transformations
    (:mod:`repro.transforms.map_parameterized`,
    :mod:`repro.transforms.parallelize`):

    * ``vectorized`` — emit this map as a vector operation (numpy arange
      semantics) instead of a scalar loop; set by ``Vectorization``.  The
      global ``vectorize`` codegen flag has the same effect on every
      eligible map (the ``dcir+vec`` pipeline).
    * ``tiling`` — the tile size this map was strip-mined with; set on the
      *outer* (tile-loop) map by ``MapTiling`` so the pattern does not
      re-match maps it already created.
    * ``schedule`` — ``"sequential"`` (default; codegen is byte-identical
      to pre-schedule output) or ``"parallel"`` (the first parameter's
      loop is split across workers).  Set by ``Parallelize`` only after
      proving no cross-iteration write conflicts except WCR memlets.
    * ``n_threads`` — requested worker count for a parallel schedule;
      ``None`` defers to the ``REPRO_NUM_THREADS`` environment variable
      and then the machine's core count at run time.
    """

    def __init__(self, label: str, params: Sequence[str], ranges: Sequence[Range]):
        if len(params) != len(ranges):
            raise ValueError("Map requires one range per parameter")
        self.label = label
        self.params: List[str] = list(params)
        self.ranges: List[Range] = list(ranges)
        self.vectorized: bool = False
        self.tiling: Optional[int] = None
        self.schedule: str = SCHEDULE_SEQUENTIAL
        self.n_threads: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        spec = ", ".join(f"{p}={r}" for p, r in zip(self.params, self.ranges))
        return f"Map({self.label}: {spec})"


class MapEntry(CodeNode):
    """Entry node of a map scope.  Outer edges arrive at ``IN_<name>``
    connectors; inner edges leave from ``OUT_<name>`` connectors."""

    def __init__(self, map_obj: Map):
        super().__init__(label=f"{map_obj.label}_entry")
        self.map = map_obj


class MapExit(CodeNode):
    """Exit node of a map scope (inner edges in, outer edges out)."""

    def __init__(self, map_obj: Map):
        super().__init__(label=f"{map_obj.label}_exit")
        self.map = map_obj


class ConsumeEntry(CodeNode):
    """Entry node of a consume (producer/consumer) scope over a stream."""

    def __init__(self, label: str, stream: str, num_pes: int = 1):
        super().__init__(label=f"{label}_entry")
        self.stream = stream
        self.num_pes = num_pes


class ConsumeExit(CodeNode):
    """Exit node of a consume scope."""

    def __init__(self, label: str):
        super().__init__(label=f"{label}_exit")


def is_scope_entry(node: Node) -> bool:
    return isinstance(node, (MapEntry, ConsumeEntry))


def is_scope_exit(node: Node) -> bool:
    return isinstance(node, (MapExit, ConsumeExit))
