"""SDFG validation.

Checks the invariants that the data-centric passes and the code generator
rely on; the checks mirror the verification capabilities the paper credits
data-centric abstractions with (bounds analysis, §1), plus structural
sanity of the state machine and dataflow graphs.
"""

from __future__ import annotations

from typing import Set

import networkx as nx

from ..symbolic import Integer
from .data import Scalar, Stream
from .memlet import Memlet
from .nodes import AccessNode, MapEntry, MapExit, Tasklet, is_scope_entry, is_scope_exit
from .sdfg import SDFG, InvalidSDFGError
from .state import SDFGState


def validate_sdfg(sdfg: SDFG) -> None:
    """Validate the SDFG; raises :class:`InvalidSDFGError` on violations."""
    if sdfg.start_state is None and sdfg.states():
        raise InvalidSDFGError(f"SDFG {sdfg.name!r} has states but no start state")
    if sdfg.start_state is not None and sdfg.start_state not in sdfg.states():
        raise InvalidSDFGError("Start state is not part of the state machine")

    _validate_symbols(sdfg)
    for state in sdfg.states():
        validate_state(sdfg, state)
    _validate_reachability(sdfg)


def _validate_symbols(sdfg: SDFG) -> None:
    for name in sdfg.symbols:
        if name in sdfg.arrays:
            raise InvalidSDFGError(f"Name {name!r} is both a symbol and a container")
    for edge in sdfg.edges():
        for target in edge.data.assignments:
            if target in sdfg.arrays and not isinstance(sdfg.arrays[target], Scalar):
                raise InvalidSDFGError(
                    f"Interstate edge assigns to non-scalar container {target!r}"
                )


def _validate_reachability(sdfg: SDFG) -> None:
    if sdfg.start_state is None or len(sdfg.states()) <= 1:
        return
    reachable = set(nx.descendants(sdfg._graph, sdfg.start_state)) | {sdfg.start_state}
    unreachable = [state.label for state in sdfg.states() if state not in reachable]
    if unreachable:
        # Unreachable states are not an error (dead-state elimination removes
        # them) but an SDFG with *only* unreachable work is malformed.
        if len(unreachable) == len(sdfg.states()):
            raise InvalidSDFGError("No state is reachable from the start state")


def validate_state(sdfg: SDFG, state: SDFGState) -> None:
    _validate_acyclic(state)
    scope = state.scope_dict()
    for node in state.nodes():
        if isinstance(node, AccessNode):
            if node.data not in sdfg.arrays:
                raise InvalidSDFGError(
                    f"Access node references undefined container {node.data!r} "
                    f"in state {state.label!r}"
                )
        if isinstance(node, Tasklet):
            _validate_tasklet_connectors(state, node)
    for edge in state.edges():
        _validate_memlet(sdfg, state, edge.data)
    _validate_scopes(state, scope)


def _validate_acyclic(state: SDFGState) -> None:
    if not nx.is_directed_acyclic_graph(state._graph):
        raise InvalidSDFGError(f"State {state.label!r} contains a dataflow cycle")


def _validate_tasklet_connectors(state: SDFGState, tasklet: Tasklet) -> None:
    connected_in: Set[str] = {
        edge.dst_conn for edge in state.in_edges(tasklet) if edge.dst_conn
    }
    connected_out: Set[str] = {
        edge.src_conn for edge in state.out_edges(tasklet) if edge.src_conn
    }
    missing_in = tasklet.in_connectors - connected_in
    missing_out = tasklet.out_connectors - connected_out
    if missing_in:
        raise InvalidSDFGError(
            f"Tasklet {tasklet.label!r} in state {state.label!r} has unconnected "
            f"input connector(s) {sorted(missing_in)}"
        )
    if missing_out:
        raise InvalidSDFGError(
            f"Tasklet {tasklet.label!r} in state {state.label!r} has unconnected "
            f"output connector(s) {sorted(missing_out)}"
        )


def _validate_memlet(sdfg: SDFG, state: SDFGState, memlet: Memlet) -> None:
    if memlet.is_empty:
        return
    if memlet.data not in sdfg.arrays:
        raise InvalidSDFGError(
            f"Memlet references undefined container {memlet.data!r} in state {state.label!r}"
        )
    descriptor = sdfg.arrays[memlet.data]
    if memlet.subset is None:
        return
    if isinstance(descriptor, (Scalar, Stream)):
        return
    if memlet.subset.dims != descriptor.rank and descriptor.rank > 0:
        raise InvalidSDFGError(
            f"Memlet {memlet} has {memlet.subset.dims} dimensions but container "
            f"{memlet.data!r} has rank {descriptor.rank}"
        )
    # Bounds analysis: flag statically-decidable out-of-bounds accesses.
    for rng, dim in zip(memlet.subset.ranges, descriptor.shape):
        low = rng.start
        high = rng.end - dim
        if low.is_constant() and low.as_int() < 0:
            raise InvalidSDFGError(
                f"Memlet {memlet} accesses negative index {low} of {memlet.data!r}"
            )
        if high.is_constant() and high.as_int() > 0:
            raise InvalidSDFGError(
                f"Memlet {memlet} exceeds dimension {dim} of {memlet.data!r} by {high}"
            )


def _validate_scopes(state: SDFGState, scope) -> None:
    entries = [node for node in state.nodes() if is_scope_entry(node)]
    exits = [node for node in state.nodes() if is_scope_exit(node)]
    if len(entries) != len(exits):
        raise InvalidSDFGError(
            f"State {state.label!r} has {len(entries)} scope entries but {len(exits)} exits"
        )
    for entry in entries:
        try:
            state.exit_node(entry)
        except KeyError as error:
            raise InvalidSDFGError(str(error)) from error
