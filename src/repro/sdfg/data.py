"""Data descriptors for SDFG containers (mini-DaCe).

SDFGs separate *data containers* from their use (§2.2 of the paper): every
array, scalar or stream is described once, with a (possibly symbolic)
shape, an element type, and allocation attributes that the memory
scheduling passes of §6.3 manipulate (transient/persistent, heap vs stack,
pre-allocation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..symbolic import Expr, Integer, sympify

#: Storage locations a container can be placed in by the memory passes.
STORAGE_HEAP = "heap"
STORAGE_STACK = "stack"
STORAGE_REGISTER = "register"

#: Allocation lifetimes.
LIFETIME_SCOPE = "scope"  # allocated where defined (possibly inside a loop)
LIFETIME_PERSISTENT = "persistent"  # allocated once, up front


@dataclass(frozen=True)
class DTypeInfo:
    """Everything the backends must agree on about one element type.

    One row per supported dtype: the numpy dtype name the interpreted
    backend allocates with, the element size the cost model charges, and
    the C/ctypes type names the native backend emits and marshals with.
    A single table keeps the three views from silently diverging (the
    invariant ``numpy itemsize == bytes == ctypes.sizeof`` is regression
    tested).
    """

    name: str
    numpy_name: str
    bytes: int
    c_type: str
    ctypes_name: str


#: The single source of truth for supported element types.
DTYPES: Dict[str, DTypeInfo] = {
    info.name: info
    for info in (
        DTypeInfo("float64", "float64", 8, "double", "c_double"),
        DTypeInfo("float32", "float32", 4, "float", "c_float"),
        DTypeInfo("int64", "int64", 8, "int64_t", "c_int64"),
        DTypeInfo("int32", "int32", 4, "int32_t", "c_int32"),
        DTypeInfo("int8", "int8", 1, "int8_t", "c_int8"),
        DTypeInfo("bool", "bool_", 1, "uint8_t", "c_uint8"),
    )
}

# Derived views kept under the historical names for existing call sites.
_DTYPE_TO_NUMPY: Dict[str, str] = {name: info.numpy_name for name, info in DTYPES.items()}

_DTYPE_BYTES: Dict[str, int] = {name: info.bytes for name, info in DTYPES.items()}


class Data:
    """Base class of data descriptors."""

    def __init__(
        self,
        dtype: str,
        shape: Sequence[Union[int, str, Expr]] = (),
        transient: bool = False,
        storage: str = STORAGE_HEAP,
        lifetime: str = LIFETIME_SCOPE,
    ):
        if dtype not in _DTYPE_TO_NUMPY:
            raise ValueError(f"Unsupported dtype {dtype!r}")
        self.dtype = dtype
        self.shape: Tuple[Expr, ...] = tuple(sympify(dim) for dim in shape)
        self.transient = transient
        self.storage = storage
        self.lifetime = lifetime

    # -- queries --------------------------------------------------------------
    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def is_scalar(self) -> bool:
        return len(self.shape) == 0

    def total_size(self) -> Expr:
        total: Expr = Integer(1)
        for dim in self.shape:
            total = total * dim
        return total

    def size_in_bytes(self) -> Expr:
        return self.total_size() * Integer(_DTYPE_BYTES[self.dtype])

    def element_bytes(self) -> int:
        return _DTYPE_BYTES[self.dtype]

    def free_symbols(self) -> frozenset:
        result: frozenset = frozenset()
        for dim in self.shape:
            result |= dim.free_symbols()
        return result

    def numpy_dtype(self) -> np.dtype:
        return np.dtype(_DTYPE_TO_NUMPY[self.dtype])

    def concrete_shape(self, symbols: Mapping[str, int]) -> Tuple[int, ...]:
        """Shape with all symbols substituted (for allocation at runtime)."""
        return tuple(int(dim.evaluate(dict(symbols))) for dim in self.shape)

    def clone(self) -> "Data":
        copy = type(self).__new__(type(self))
        copy.__dict__ = dict(self.__dict__) if hasattr(self, "__dict__") else {}
        copy.dtype = self.dtype
        copy.shape = self.shape
        copy.transient = self.transient
        copy.storage = self.storage
        copy.lifetime = self.lifetime
        return copy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = type(self).__name__
        shape = ", ".join(str(dim) for dim in self.shape)
        flags = "transient" if self.transient else "global"
        return f"{kind}({self.dtype}[{shape}], {flags}, {self.storage})"


class Array(Data):
    """A multi-dimensional array container."""

    def __init__(
        self,
        dtype: str,
        shape: Sequence[Union[int, str, Expr]],
        transient: bool = False,
        storage: str = STORAGE_HEAP,
        lifetime: str = LIFETIME_SCOPE,
        alignment: int = 64,
    ):
        super().__init__(dtype, shape, transient, storage, lifetime)
        self.alignment = alignment


class Scalar(Data):
    """A single value container (DaCe scalars; every MLIR SSA value starts
    as one of these after translation, §6.1)."""

    def __init__(self, dtype: str, transient: bool = True, storage: str = STORAGE_REGISTER):
        super().__init__(dtype, (), transient, storage, LIFETIME_SCOPE)


class Stream(Data):
    """A FIFO-queue container (``sdfg.stream``); consumed by consume scopes."""

    def __init__(
        self,
        dtype: str,
        buffer_size: Union[int, str, Expr] = 0,
        transient: bool = True,
    ):
        super().__init__(dtype, (), transient, STORAGE_HEAP, LIFETIME_SCOPE)
        self.buffer_size = sympify(buffer_size)


def mlir_type_to_dtype(type_obj) -> str:
    """Map an MLIR-like scalar type to a descriptor dtype string."""
    from ..ir.types import FloatType, IndexType, IntegerType

    if isinstance(type_obj, FloatType):
        return "float64" if type_obj.width == 64 else "float32"
    if isinstance(type_obj, IndexType):
        return "int64"
    if isinstance(type_obj, IntegerType):
        if type_obj.width == 1:
            return "bool"
        if type_obj.width <= 8:
            return "int8"
        if type_obj.width <= 32:
            return "int32"
        return "int64"
    raise ValueError(f"Cannot map type {type_obj} to a dtype")
