"""Parallelization safety analysis for map scopes.

A map's iterations are order-independent by IR contract (§2.2 of the
paper), but executing them *concurrently* additionally requires that no
two iterations write the same location — except through WCR memlets,
whose conflict resolution can be lowered to reductions or atomic
updates.  :func:`analyze_map_parallelism` proves that property for one
outermost map scope, conservatively: it either returns a positive
verdict with everything the backends need (the chunked parameter, the
reduction clauses, which WCR updates need atomics, which loop variables
must be privatized), or a negative verdict with the reason.

The proof partitions iterations by the map's **first parameter** — the
loop both backends actually split across workers.  A write is *safe*
when some dimension of its subset is strictly monotone in a parameter of
the partition family: the first parameter itself, or an inner-map
parameter whose range is an interval ``[p, p + step)`` of it — exactly
the intra-tile parameters :func:`~repro.transforms.map_parameterized.tile_map`
creates, which is why the outer tile loop of ``MapTiling`` is the
natural parallel grain.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..symbolic import Expr
from ..symbolic.expr import Add, Integer, Min, Mul, Symbol
from .data import Scalar, Stream
from .nodes import MapEntry, MapExit, SCHEDULE_PARALLEL, is_scope_exit

#: Environment variable overriding the default worker count of parallel
#: schedules (both backends and the cost model honor it).
NUM_THREADS_ENV = "REPRO_NUM_THREADS"


def default_workers() -> int:
    """Worker count a parallel map runs with when ``n_threads`` is unset:
    ``REPRO_NUM_THREADS`` when positive, else the machine's core count."""
    raw = os.environ.get(NUM_THREADS_ENV, "").strip()
    if raw:
        try:
            value = int(raw)
            if value > 0:
                return value
        except ValueError:
            pass
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class ParallelismInfo:
    """Verdict of :func:`analyze_map_parallelism` for one map scope."""

    #: Whether the scope is provably safe to execute in parallel.
    ok: bool
    #: Human-readable refusal reason when ``ok`` is False.
    reason: Optional[str] = None
    #: The parameter whose iterations are split across workers.
    chunk_param: Optional[str] = None
    #: Scalar WCR accumulators, as sorted ``(container, operator)`` pairs —
    #: OpenMP ``reduction(...)`` clauses natively, per-chunk partial slots
    #: combined by the parent in the interpreted executor.
    reductions: Tuple[Tuple[str, str], ...] = ()
    #: ``id()`` of write edges whose WCR update must be atomic (array
    #: targets not partitioned by the chunked parameter).
    atomic_edges: FrozenSet[int] = frozenset()
    #: Array containers written inside the scope (the interpreted executor
    #: mirrors exactly these into shared memory).
    written_arrays: Tuple[str, ...] = ()
    #: Loop parameters of the scope beyond the chunked one (the map's own
    #: trailing parameters plus every nested map's); the C backend adds a
    #: ``private(...)`` clause for any of them declared at function scope.
    private_params: Tuple[str, ...] = ()


def _refuse(reason: str) -> ParallelismInfo:
    return ParallelismInfo(ok=False, reason=reason)


def _scope_nodes(state, entry: MapEntry) -> Set:
    """All nodes whose scope chain contains ``entry`` (exit nodes included)."""
    scope = state.scope_dict()
    members: Set = set()
    for node in state.nodes():
        current = scope.get(node)
        while current is not None:
            if current is entry:
                members.add(node)
                break
            current = scope.get(current)
    members.add(state.exit_node(entry))
    return members


def _monotone_in(expression: Expr, param: str) -> bool:
    """Whether ``expression`` is strictly monotone in ``param`` by structure.

    Accepts the affine shapes subsets actually use — ``p``, ``p + c``,
    ``c * p``, ``c * p + d`` — where the remaining terms are free of
    ``param``.  Anything else (``p % 2``, ``p * p``) is refused.
    """
    if isinstance(expression, Symbol):
        return expression.name == param
    if isinstance(expression, Mul):
        coefficient = [a for a in expression.args if isinstance(a, Integer)]
        symbols = [a for a in expression.args if isinstance(a, Symbol)]
        return (
            len(expression.args) == 2
            and len(coefficient) == 1
            and coefficient[0].value != 0
            and len(symbols) == 1
            and symbols[0].name == param
        )
    if isinstance(expression, Add):
        carrying = [
            a for a in expression.args
            if param in {s.name for s in a.free_symbols()}
        ]
        return len(carrying) == 1 and _monotone_in(carrying[0], param)
    return False


def _injective_dimension(expression: Expr, family: Set[str], scope_params: Set[str]) -> bool:
    """Whether one subset dimension separates partition chunks.

    True when the index depends on exactly one scope parameter, that
    parameter belongs to the partition family, and the dependence is
    strictly monotone — so two iterations from different chunks can never
    produce the same index value in this dimension.
    """
    names = {symbol.name for symbol in expression.free_symbols()}
    carried = names & scope_params
    if len(carried) != 1:
        return False
    (param,) = carried
    if param not in family:
        return False
    return _monotone_in(expression, param)


def _interval_of(start: Expr, end: Expr, param: str, step: Expr) -> bool:
    """Whether ``[start, end)`` is an interval ``[param, param + step)``.

    This is the shape :func:`~repro.transforms.map_parameterized.tile_map`
    emits for intra-tile parameters (``[p_tile, min(p_tile + tile, N))``
    under an outer step of ``tile``): consecutive values of ``param`` then
    yield pairwise-disjoint inner ranges, so the inner parameter inherits
    the outer one's partitioning.
    """
    if not (isinstance(start, Symbol) and start.name == param):
        return False
    if not isinstance(step, Integer) or step.value < 1:
        return False

    def bounded(expr: Expr) -> bool:
        if isinstance(expr, Symbol) and expr.name == param:
            return True  # empty interval — trivially contained
        if isinstance(expr, Add) and len(expr.args) == 2:
            offsets = [a for a in expr.args if isinstance(a, Integer)]
            bases = [a for a in expr.args if isinstance(a, Symbol) and a.name == param]
            return (
                len(offsets) == 1
                and len(bases) == 1
                and 0 < offsets[0].value <= step.value
            )
        return False

    if bounded(end):
        return True
    if isinstance(end, Min):
        return any(bounded(arg) for arg in end.args)
    return False


def _partition_family(state, entry: MapEntry, members: Set) -> Set[str]:
    """The chunked parameter plus inner parameters that inherit its partition."""
    chunk_param = entry.map.params[0]
    step = entry.map.ranges[0].step
    family = {chunk_param}
    for node in members:
        if not isinstance(node, MapEntry):
            continue
        for param, rng in zip(node.map.params, node.map.ranges):
            if _interval_of(rng.start, rng.end, chunk_param, step):
                family.add(param)
    return family


def analyze_map_parallelism(sdfg, state, entry: MapEntry) -> ParallelismInfo:
    """Prove (or refuse) that one outermost map scope may run in parallel.

    Every innermost write inside the scope must either be partitioned by
    the chunked (first) parameter — some subset dimension strictly
    monotone in a partition-family parameter — or carry a WCR: scalar WCR
    targets become reductions, non-partitioned array ``+``/``*`` WCR
    updates are marked for atomic emission, and non-partitioned
    ``min``/``max`` array WCR (which has no native atomic form) refuses.
    """
    map_obj = entry.map
    if not map_obj.params:
        return _refuse("map has no parameters")
    if map_obj.vectorized:
        return _refuse("map is annotated for vector emission")
    if state.scope_dict().get(entry) is not None:
        return _refuse("only outermost map scopes are parallelized")

    members = _scope_nodes(state, entry)
    chunk_param = map_obj.params[0]
    family = _partition_family(state, entry, members)
    scope_params: Set[str] = set(map_obj.params)
    private: List[str] = list(map_obj.params[1:])
    for node in members:
        if isinstance(node, MapEntry):
            scope_params.update(node.map.params)
            private.extend(node.map.params)

    reductions: Dict[str, str] = {}
    atomic_edges: Set[int] = set()
    written_arrays: List[str] = []
    read_scalars: Set[str] = set()

    for edge in state.edges():
        source, destination = edge.src, edge.dst
        inside = source in members or source is entry
        if not inside:
            continue
        memlet = edge.data
        # Track scalar reads so a reduction target that is *also* read in
        # the scope (a sequential dependence) refuses cleanly.
        if (
            not memlet.is_empty
            and memlet.data is not None
            and isinstance(sdfg.arrays.get(memlet.data), Scalar)
            and not isinstance(destination, (type(state.exit_node(entry)), MapExit))
            and memlet.wcr is None
            and destination in members
        ):
            read_scalars.add(memlet.data)
        if source not in members or is_scope_exit(source):
            continue  # entry boundary reads / exit propagation plumbing
        if not isinstance(destination, (MapExit,)) and not hasattr(destination, "data"):
            continue  # value edge between code nodes
        if isinstance(destination, MapEntry):
            continue  # read flowing into a nested scope
        data = memlet.data if not memlet.is_empty else (
            getattr(destination, "data", None) if not isinstance(destination, MapExit) else None
        )
        if data is None:
            continue
        descriptor = sdfg.arrays.get(data)
        if descriptor is None:
            continue
        if isinstance(descriptor, Stream):
            return _refuse(f"stream container {data!r} written in scope")
        if isinstance(descriptor, Scalar):
            if memlet.wcr is None:
                return _refuse(f"scalar {data!r} written without WCR")
            previous = reductions.get(data)
            if previous is not None and previous != memlet.wcr:
                return _refuse(f"scalar {data!r} accumulated with conflicting WCR operators")
            reductions[data] = memlet.wcr
            continue
        # Array write.
        if memlet.dynamic or memlet.subset is None:
            return _refuse(f"unanalyzable (dynamic or unsubscripted) write to {data!r}")
        if not memlet.subset.is_point():
            return _refuse(f"non-point write to {data!r}")
        partitioned = any(
            _injective_dimension(index, family, scope_params)
            for index in memlet.subset.indices()
        )
        if data not in written_arrays:
            written_arrays.append(data)
        if partitioned:
            continue
        if memlet.wcr in ("+", "*"):
            atomic_edges.add(id(edge))
            continue
        if memlet.wcr in ("min", "max"):
            return _refuse(
                f"non-partitioned {memlet.wcr}-WCR write to {data!r} has no atomic form"
            )
        return _refuse(f"cross-iteration write conflict on {data!r}")

    conflicted = read_scalars & set(reductions)
    if conflicted:
        return _refuse(
            "reduction scalar(s) also read inside the scope: "
            + ", ".join(sorted(conflicted))
        )

    return ParallelismInfo(
        ok=True,
        chunk_param=chunk_param,
        reductions=tuple(sorted(reductions.items())),
        atomic_edges=frozenset(atomic_edges),
        written_arrays=tuple(sorted(written_arrays)),
        private_params=tuple(dict.fromkeys(private)),
    )


def parallel_maps(sdfg) -> List[Tuple[object, MapEntry]]:
    """The ``(state, entry)`` pairs annotated with a parallel schedule."""
    return [
        (state, entry)
        for state, entry in sdfg.map_entries()
        if entry.map.schedule == SCHEDULE_PARALLEL
    ]
