"""The SDFG IR (mini-DaCe): stateful dataflow multigraphs.

Public entry points: :class:`SDFG`, :class:`SDFGState`,
:class:`InterstateEdge`, the node classes, :class:`Memlet`, and the data
descriptors (:class:`Array`, :class:`Scalar`, :class:`Stream`).
"""

from .analysis import (
    containers_ever_read,
    containers_ever_written,
    live_containers_per_state,
    reachable_states,
    state_access_sets,
    symbols_assigned_once,
)
from .data import (
    Array,
    Data,
    LIFETIME_PERSISTENT,
    LIFETIME_SCOPE,
    STORAGE_HEAP,
    STORAGE_REGISTER,
    STORAGE_STACK,
    Scalar,
    Stream,
    mlir_type_to_dtype,
)
from .memlet import Memlet, WCR_OPERATORS
from .nodes import (
    AccessNode,
    CodeNode,
    ConsumeEntry,
    ConsumeExit,
    MAP_SCHEDULES,
    Map,
    MapEntry,
    MapExit,
    Node,
    SCHEDULE_PARALLEL,
    SCHEDULE_SEQUENTIAL,
    Tasklet,
    is_scope_entry,
    is_scope_exit,
)
from .propagation import propagate_memlets_sdfg, propagate_memlets_state, propagate_subset
from .sdfg import SDFG, InterstateEdge, InvalidSDFGError, StateEdge
from .state import MultiConnectorEdge, SDFGState
from .validation import validate_sdfg, validate_state

__all__ = [
    "AccessNode",
    "Array",
    "CodeNode",
    "ConsumeEntry",
    "ConsumeExit",
    "Data",
    "InterstateEdge",
    "InvalidSDFGError",
    "LIFETIME_PERSISTENT",
    "LIFETIME_SCOPE",
    "MAP_SCHEDULES",
    "Map",
    "MapEntry",
    "MapExit",
    "Memlet",
    "MultiConnectorEdge",
    "Node",
    "SCHEDULE_PARALLEL",
    "SCHEDULE_SEQUENTIAL",
    "SDFG",
    "SDFGState",
    "STORAGE_HEAP",
    "STORAGE_REGISTER",
    "STORAGE_STACK",
    "Scalar",
    "StateEdge",
    "Stream",
    "Tasklet",
    "WCR_OPERATORS",
    "containers_ever_read",
    "containers_ever_written",
    "is_scope_entry",
    "is_scope_exit",
    "live_containers_per_state",
    "mlir_type_to_dtype",
    "propagate_memlets_sdfg",
    "propagate_memlets_state",
    "propagate_subset",
    "reachable_states",
    "state_access_sets",
    "symbols_assigned_once",
    "validate_sdfg",
    "validate_state",
]
