"""The Stateful Dataflow multiGraph (SDFG): a state machine of dataflow graphs.

The top-level IR object of the data-centric side (§2.2 of the paper):
data containers and symbols are declared once on the SDFG; states hold pure
dataflow; interstate edges carry symbolic conditions and symbol assignments
(enabling constant-time testing of data-dependent control flow, §3.2).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple, Union

import networkx as nx

from ..symbolic import (
    BoolExpr,
    Expr,
    Integer,
    Symbol,
    TRUE,
    sympify,
)
from .data import Array, Data, Scalar, Stream
from .memlet import Memlet
from .state import SDFGState


class InvalidSDFGError(Exception):
    """Raised by validation when the SDFG violates a structural invariant."""


class InterstateEdge:
    """A state-machine transition: a symbolic condition plus assignments.

    Conditions and assignment right-hand sides are symbolic expressions over
    SDFG symbols and scalar containers (scalars are readable on edges, as in
    DaCe); assignments define/update symbols.
    """

    def __init__(
        self,
        condition: Union[str, Expr, None] = None,
        assignments: Optional[Mapping[str, Union[str, Expr, int]]] = None,
    ):
        if condition is None:
            self.condition: Expr = TRUE
        else:
            self.condition = sympify(condition)
        self.assignments: Dict[str, Expr] = {
            name: sympify(value) for name, value in (assignments or {}).items()
        }

    @property
    def is_unconditional(self) -> bool:
        return self.condition == TRUE

    def free_symbols(self) -> Set[str]:
        names = {symbol.name for symbol in self.condition.free_symbols()}
        for value in self.assignments.values():
            names |= {symbol.name for symbol in value.free_symbols()}
        return names

    def subs(self, mapping: Mapping[str, Expr]) -> "InterstateEdge":
        return InterstateEdge(
            self.condition.subs(mapping),
            {name: value.subs(mapping) for name, value in self.assignments.items()},
        )

    def clone(self) -> "InterstateEdge":
        return InterstateEdge(self.condition, dict(self.assignments))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        if not self.is_unconditional:
            parts.append(f"if {self.condition}")
        if self.assignments:
            parts.append(", ".join(f"{k} = {v}" for k, v in self.assignments.items()))
        return "InterstateEdge(" + "; ".join(parts) + ")"


class StateEdge:
    """A (source state, destination state, interstate edge) triple."""

    __slots__ = ("src", "dst", "data", "key")

    _counter = itertools.count()

    def __init__(self, src: SDFGState, dst: SDFGState, data: InterstateEdge):
        self.src = src
        self.dst = dst
        self.data = data
        self.key = next(StateEdge._counter)

    def __hash__(self) -> int:
        return hash(self.key)

    def __eq__(self, other) -> bool:
        return isinstance(other, StateEdge) and other.key == self.key


class SDFG:
    """A stateful dataflow multigraph."""

    def __init__(self, name: str):
        self.name = name
        self.arrays: Dict[str, Data] = {}
        self.symbols: Dict[str, str] = {}
        self.constants: Dict[str, Union[int, float]] = {}
        self._graph = nx.MultiDiGraph()
        self.start_state: Optional[SDFGState] = None
        self._state_counter = 0
        self._temp_counter = 0
        #: Containers acting as outputs of the program (e.g. __return).
        self.return_values: List[str] = []
        #: Record of containers removed by elimination passes (for reports).
        self.eliminated_containers: List[str] = []

    # -- container management --------------------------------------------------------
    def add_array(
        self,
        name: str,
        shape: Sequence,
        dtype: str,
        transient: bool = False,
        storage: str = "heap",
        lifetime: str = "scope",
        find_new_name: bool = False,
    ) -> Tuple[str, Array]:
        if name in self.arrays:
            if not find_new_name:
                raise InvalidSDFGError(f"Container {name!r} already exists")
            name = self._find_new_name(name)
        descriptor = Array(dtype, shape, transient=transient, storage=storage, lifetime=lifetime)
        self.arrays[name] = descriptor
        return name, descriptor

    def add_transient(self, name: str, shape: Sequence, dtype: str, **kwargs) -> Tuple[str, Array]:
        kwargs.setdefault("find_new_name", True)
        return self.add_array(name, shape, dtype, transient=True, **kwargs)

    def add_scalar(
        self, name: str, dtype: str, transient: bool = True, find_new_name: bool = False
    ) -> Tuple[str, Scalar]:
        if name in self.arrays:
            if not find_new_name:
                raise InvalidSDFGError(f"Container {name!r} already exists")
            name = self._find_new_name(name)
        descriptor = Scalar(dtype, transient=transient)
        self.arrays[name] = descriptor
        return name, descriptor

    def add_stream(self, name: str, dtype: str, transient: bool = True) -> Tuple[str, Stream]:
        if name in self.arrays:
            raise InvalidSDFGError(f"Container {name!r} already exists")
        descriptor = Stream(dtype, transient=transient)
        self.arrays[name] = descriptor
        return name, descriptor

    def add_temp_transient(self, shape: Sequence, dtype: str) -> Tuple[str, Array]:
        name = self._find_new_name("__tmp")
        return self.add_array(name, shape, dtype, transient=True)

    def remove_data(self, name: str, validate: bool = True) -> None:
        """Remove a container descriptor (it must be unused if ``validate``)."""
        if validate:
            for state in self.states():
                for node in state.data_nodes():
                    if node.data == name:
                        raise InvalidSDFGError(
                            f"Cannot remove {name!r}: still accessed in state {state.label!r}"
                        )
        if name in self.arrays:
            del self.arrays[name]
            self.eliminated_containers.append(name)

    def _find_new_name(self, base: str) -> str:
        while True:
            candidate = f"{base}_{self._temp_counter}"
            self._temp_counter += 1
            if candidate not in self.arrays and candidate not in self.symbols:
                return candidate

    # -- symbols ------------------------------------------------------------------------
    def add_symbol(self, name: str, dtype: str = "int64") -> Symbol:
        existing = self.symbols.get(name)
        if existing is not None and existing != dtype:
            raise InvalidSDFGError(f"Symbol {name!r} redefined with a different type")
        self.symbols[name] = dtype
        return Symbol(name)

    def add_constant(self, name: str, value: Union[int, float]) -> None:
        self.constants[name] = value

    def free_symbols(self) -> Set[str]:
        """Symbols used anywhere but never defined (by interstate-edge
        assignments or as map parameters); these must be provided by the
        caller."""
        used = self.used_symbols()
        assigned: Set[str] = set()
        for edge in self.edges():
            assigned |= set(edge.data.assignments.keys())
        from .nodes import MapEntry

        for state in self.states():
            for node in state.nodes():
                if isinstance(node, MapEntry):
                    assigned |= set(node.map.params)
        return used - assigned - set(self.constants)

    def used_symbols(self) -> Set[str]:
        used: Set[str] = set()
        for descriptor in self.arrays.values():
            used |= {symbol.name for symbol in descriptor.free_symbols()}
        for edge in self.edges():
            used |= edge.data.free_symbols()
        for state in self.states():
            for dataflow_edge in state.edges():
                used |= {symbol.name for symbol in dataflow_edge.data.free_symbols()}
            for entry in state.nodes():
                from .nodes import MapEntry

                if isinstance(entry, MapEntry):
                    for rng in entry.map.ranges:
                        used |= {symbol.name for symbol in rng.free_symbols()}
        return used & (set(self.symbols) | set(self.constants))

    # -- state machine ---------------------------------------------------------------------
    def add_state(self, label: Optional[str] = None, is_start_state: bool = False) -> SDFGState:
        if label is None:
            label = f"state_{self._state_counter}"
            self._state_counter += 1
        elif any(state.label == label for state in self.states()):
            label = f"{label}_{self._state_counter}"
            self._state_counter += 1
        state = SDFGState(label, self)
        self._graph.add_node(state)
        if is_start_state or self.start_state is None:
            if is_start_state:
                self.start_state = state
            elif self.start_state is None:
                self.start_state = state
        return state

    def add_state_after(self, state: SDFGState, label: Optional[str] = None) -> SDFGState:
        """Insert a new state after ``state``, rewiring its outgoing edges."""
        new_state = self.add_state(label)
        for edge in self.out_edges(state):
            self.remove_edge(edge)
            self.add_edge(new_state, edge.dst, edge.data)
        self.add_edge(state, new_state, InterstateEdge())
        return new_state

    def add_edge(self, src: SDFGState, dst: SDFGState, data: Optional[InterstateEdge] = None) -> StateEdge:
        data = data or InterstateEdge()
        edge = StateEdge(src, dst, data)
        self._graph.add_edge(src, dst, key=edge.key, edge=edge)
        return edge

    def remove_edge(self, edge: StateEdge) -> None:
        self._graph.remove_edge(edge.src, edge.dst, key=edge.key)

    def remove_state(self, state: SDFGState) -> None:
        self._graph.remove_node(state)
        if self.start_state is state:
            self.start_state = None

    def states(self) -> List[SDFGState]:
        return list(self._graph.nodes())

    def edges(self) -> List[StateEdge]:
        return [data["edge"] for _, _, data in self._graph.edges(data=True)]

    def in_edges(self, state: SDFGState) -> List[StateEdge]:
        return [data["edge"] for _, _, data in self._graph.in_edges(state, data=True)]

    def out_edges(self, state: SDFGState) -> List[StateEdge]:
        return [data["edge"] for _, _, data in self._graph.out_edges(state, data=True)]

    def in_degree(self, state: SDFGState) -> int:
        return self._graph.in_degree(state)

    def out_degree(self, state: SDFGState) -> int:
        return self._graph.out_degree(state)

    def edges_between(self, src: SDFGState, dst: SDFGState) -> List[StateEdge]:
        if not self._graph.has_edge(src, dst):
            return []
        return [data["edge"] for data in self._graph[src][dst].values()]

    def topological_states(self) -> List[SDFGState]:
        """States in a quasi-topological order (loops broken arbitrarily)."""
        try:
            return list(nx.topological_sort(self._graph))
        except nx.NetworkXUnfeasible:
            # Cyclic state machine (loops): DFS preorder from the start state.
            if self.start_state is None:
                return self.states()
            order = list(nx.dfs_preorder_nodes(self._graph, self.start_state))
            remaining = [state for state in self.states() if state not in order]
            return order + remaining

    def predecessors(self, state: SDFGState) -> List[SDFGState]:
        return list(self._graph.predecessors(state))

    def successors(self, state: SDFGState) -> List[SDFGState]:
        return list(self._graph.successors(state))

    # -- queries ---------------------------------------------------------------------------------
    def arglist(self) -> Dict[str, Data]:
        """Externally visible containers (non-transient), i.e. run arguments."""
        return {
            name: descriptor
            for name, descriptor in self.arrays.items()
            if not descriptor.transient
        }

    def transients(self) -> Dict[str, Data]:
        return {
            name: descriptor for name, descriptor in self.arrays.items() if descriptor.transient
        }

    def total_nodes(self) -> int:
        return sum(state.number_of_nodes() for state in self.states())

    def node_iter(self) -> Iterator:
        for state in self.states():
            for node in state.nodes():
                yield state, node

    def map_entries(self) -> Iterator:
        """Yield ``(state, map entry)`` pairs in deterministic order.

        The enumeration order (state order, then topological node order)
        is the order pattern-based map transformations number their
        matches in.
        """
        for state in self.states():
            for entry in state.map_entries():
                yield state, entry

    # -- high-level pipeline hooks (implemented in repro.transforms) ------------------------------
    def validate(self) -> None:
        from .validation import validate_sdfg

        validate_sdfg(self)

    def simplify(self) -> "SDFG":
        """Run the simplification pipeline (§6.1) in place and return self."""
        from ..transforms.simplify import simplify_sdfg

        simplify_sdfg(self)
        return self

    def apply_auto_optimizations(self) -> "SDFG":
        """Run the -O1/-O2-equivalent data-centric passes (§6.2, §6.3)."""
        from ..transforms.pipeline import data_centric_pipeline

        data_centric_pipeline().apply(self)
        return self

    def compile(self, **kwargs):
        """Generate and load an executable Python program for this SDFG."""
        from ..codegen.sdfg_python import compile_sdfg

        return compile_sdfg(self, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SDFG {self.name}: {len(self.states())} states, "
            f"{len(self.arrays)} containers, {len(self.symbols)} symbols>"
        )
