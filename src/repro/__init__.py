"""DCIR reproduction: bridging control-centric and data-centric optimization.

Re-implementation (in pure Python) of the system described in
"Bridging Control-Centric and Data-Centric Optimization" (CGO 2023):
an MLIR-like IR with control-centric passes, a DaCe-like SDFG IR with
data-centric passes, the ``sdfg`` dialect bridging the two, and the DCIR
compilation pipeline that combines them.

Quick start::

    from repro import compile_c, run_compiled

    result = compile_c(C_SOURCE, pipeline="dcir")
    print(run_compiled(result).return_value)
"""

from .pipeline import (
    PIPELINES,
    CompileResult,
    PipelineError,
    RunResult,
    compile_and_run,
    compile_c,
    run_compiled,
)

__version__ = "1.0.0"

__all__ = [
    "CompileResult",
    "PIPELINES",
    "PipelineError",
    "RunResult",
    "__version__",
    "compile_and_run",
    "compile_c",
    "run_compiled",
]
