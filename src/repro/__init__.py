"""DCIR reproduction: bridging control-centric and data-centric optimization.

Re-implementation (in pure Python) of the system described in
"Bridging Control-Centric and Data-Centric Optimization" (CGO 2023):
an MLIR-like IR with control-centric passes, a DaCe-like SDFG IR with
data-centric passes, the ``sdfg`` dialect bridging the two, and the DCIR
compilation pipeline that combines them.

Quick start::

    from repro import compile_c, run_compiled

    result = compile_c(C_SOURCE, pipeline="dcir")
    print(run_compiled(result).return_value)

Evaluation-scale sweeps go through the service layer
(:mod:`repro.service`), which memoizes compilation by content address,
compiles batches in parallel, and runs whole workload suites::

    from repro.service import CompileCache, Session, compile_many

    # Content-addressed cache: the second compile is a rehydration, not a
    # re-run of the pipeline.  Point it at a directory (or set the
    # REPRO_CACHE_DIR environment variable) to persist across processes.
    cache = CompileCache(directory=".repro-cache")
    result = cache.get_or_compile(C_SOURCE, "dcir")        # cold: compiles
    result = cache.get_or_compile(C_SOURCE, "dcir")        # warm: cache_hit=True

    # Parallel batch compilation with per-item error isolation.
    outcomes = compile_many([(C_SOURCE, p) for p in PIPELINES], cache=cache)

    # Suite runner: compile + run a workload set, with cache reuse and a
    # structured report (compile/run time, cache hits, movement stats).
    session = Session(cache=cache)
    report = session.run_polybench(["gemm", "atax"], pipelines=("gcc", "dcir"))
    print(report.table())
"""

from .pipeline import (
    PIPELINES,
    CompileResult,
    GeneratedProgram,
    PipelineError,
    RunResult,
    compile_and_run,
    compile_c,
    generate_program,
    run_compiled,
)

__version__ = "1.1.0"

from .service import (  # noqa: E402  (needs __version__ for cache keys)
    CompileCache,
    Session,
    SuiteReport,
    compile_many,
)

__all__ = [
    "CompileCache",
    "CompileResult",
    "GeneratedProgram",
    "PIPELINES",
    "PipelineError",
    "RunResult",
    "Session",
    "SuiteReport",
    "__version__",
    "compile_and_run",
    "compile_c",
    "compile_many",
    "generate_program",
    "run_compiled",
]
