"""DCIR reproduction: bridging control-centric and data-centric optimization.

Re-implementation (in pure Python) of the system described in
"Bridging Control-Centric and Data-Centric Optimization" (CGO 2023):
an MLIR-like IR with control-centric passes, a DaCe-like SDFG IR with
data-centric passes, the ``sdfg`` dialect bridging the two, and the DCIR
compilation pipeline that combines them.

Quick start::

    from repro import compile_c, run_compiled

    result = compile_c(C_SOURCE, pipeline="dcir")
    print(run_compiled(result).return_value)

Or start from NumPy-style Python instead of C — the second frontend
lowers into the same IR, so every pipeline, the cache, the tuner and the
native backend apply unchanged::

    import numpy as np
    from repro import program, compile_and_run

    @program
    def heat(N=48, T=6):
        u = np.zeros(N)
        for i in range(N):
            u[i] = ((i * 5) % 13) * 0.2 - 1.0
        for t in range(T):
            u[1:-1] = u[1:-1] + 0.1 * (u[:-2] - 2.0 * u[1:-1] + u[2:])
        s = 0.0
        for i in range(N):
            s += u[i]
        return s

    assert abs(compile_and_run(heat, "dcir").return_value - heat()) < 1e-12

Define your own pipeline
------------------------

Pipelines are declarative :class:`PipelineSpec` values; the six paper
pipelines are simply pre-registered specs (``PIPELINES`` is a live view of
the registry).  Build a custom composition — an ablation, a new pass
ordering, a workload-specific pipeline — and every entry point accepts it
directly, or register it to address it by name::

    from repro import PipelineSpec, get_pipeline, register_pipeline
    from repro.pipeline import paper_control_passes, paper_data_passes

    # dcir without memory-reducing loop fusion (a §6.3 ablation):
    nofuse = get_pipeline("dcir").without_pass("map-fusion", name="dcir-nofuse")
    result = compile_c(C_SOURCE, nofuse)              # pass the spec directly...
    register_pipeline(nofuse)
    result = compile_c(C_SOURCE, "dcir-nofuse")       # ...or by registered name

Specs serialize to JSON (``spec.to_dict()`` / ``PipelineSpec.from_dict``)
and are content-addressed by their *canonical* serialization (everything
except the display name), so the compile cache keys custom pipelines
correctly: ``"dcir"``, ``get_pipeline("dcir")`` and an equivalent
hand-built spec share one cache entry, while dropping a pass or flipping a
codegen flag yields a new one.  Sweep specs through the service layer like
any name: ``Session().run_suite(workloads, pipelines=("dcir", nofuse))``.

Evaluation-scale sweeps go through the service layer
(:mod:`repro.service`), which memoizes compilation by content address,
compiles batches in parallel, and runs whole workload suites::

    from repro.service import CompileCache, Session, compile_many

    # Content-addressed cache: the second compile is a rehydration, not a
    # re-run of the pipeline.  Point it at a directory (or set the
    # REPRO_CACHE_DIR environment variable) to persist across processes.
    cache = CompileCache(directory=".repro-cache")
    result = cache.get_or_compile(C_SOURCE, "dcir")        # cold: compiles
    result = cache.get_or_compile(C_SOURCE, "dcir")        # warm: cache_hit=True

    # Parallel batch compilation with per-item error isolation.
    outcomes = compile_many([(C_SOURCE, p) for p in PIPELINES], cache=cache)

    # Suite runner: compile + run a workload set, with cache reuse and a
    # structured report (compile/run time, cache hits, movement stats).
    session = Session(cache=cache)
    report = session.run_polybench(["gemm", "atax"], pipelines=("gcc", "dcir"))
    print(report.table())

Data-centric passes are pattern-based transformations
(:mod:`repro.transforms`): each separates ``match(sdfg) -> list[Match]``
(deterministic site enumeration) from ``apply_match(sdfg, match)``
(one-site rewrite), records per-run match/application counts on its
:class:`~repro.passbase.PassRecord`, and declares tunable parameters
(``MapTiling(tile_size=16)``, ``Vectorization(width=8)``) that serialize
through :class:`PassSpec` params into the spec's content address.

Auto-tuning (:mod:`repro.tuning`) searches the pipeline space *between*
the six compositions per kernel — ablations, reorderings, codegen-option
sweeps, transformation-parameter presets and tiled/vectorized schedule
additions — with pluggable strategies and evaluators, every candidate
batch deduplicated through the compile cache::

    report = tune_kernel("gemm", budget=8, seed=0)   # reproducible search
    register_winner(report, "gemm-tuned")            # now a named pipeline

A command-line interface mirrors the library: ``python -m repro
list-pipelines``, ``python -m repro compile``, ``python -m repro run``,
``python -m repro tune``, ``python -m repro transforms list|match`` (see
``python -m repro --help``).
"""

from .pipeline import (
    PIPELINES,
    CodegenOptions,
    CompilationReport,
    CompileResult,
    GeneratedProgram,
    PassSpec,
    PipelineError,
    PipelineSpec,
    RunResult,
    compile_and_run,
    compile_c,
    generate_program,
    get_pipeline,
    list_pipelines,
    register_pipeline,
    run_compiled,
    unregister_pipeline,
)
from .codegen import (
    CompiledNative,
    NativeCodegenError,
    ToolchainError,
    generate_c_code,
    have_compiler,
)
from .errors import (
    CacheCorruption,
    CompileTimeout,
    FrontendError,
    PermanentError,
    ToolchainCrash,
    TransientError,
    WorkerLost,
    failure_kind,
)
from .frontend_py import PythonProgram, lower_python, program

__version__ = "1.8.0"

from .service import (  # noqa: E402  (needs __version__ for cache keys)
    CompileCache,
    RetryPolicy,
    Session,
    SuiteReport,
    compile_many,
)
from .tuning import (  # noqa: E402  (builds on the service layer)
    SearchSpace,
    TuningReport,
    register_winner,
    tune,
    tune_kernel,
)

__all__ = [
    "CacheCorruption",
    "CodegenOptions",
    "CompilationReport",
    "CompileCache",
    "CompileResult",
    "CompileTimeout",
    "CompiledNative",
    "FrontendError",
    "GeneratedProgram",
    "NativeCodegenError",
    "PIPELINES",
    "PassSpec",
    "PermanentError",
    "PipelineError",
    "PipelineSpec",
    "PythonProgram",
    "RetryPolicy",
    "RunResult",
    "SearchSpace",
    "Session",
    "SuiteReport",
    "ToolchainCrash",
    "ToolchainError",
    "TransientError",
    "TuningReport",
    "WorkerLost",
    "__version__",
    "failure_kind",
    "compile_and_run",
    "compile_c",
    "compile_many",
    "generate_c_code",
    "generate_program",
    "have_compiler",
    "get_pipeline",
    "list_pipelines",
    "lower_python",
    "program",
    "register_pipeline",
    "register_winner",
    "run_compiled",
    "tune",
    "tune_kernel",
    "unregister_pipeline",
]
