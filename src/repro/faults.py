"""Deterministic fault injection for the compilation service.

The robustness layer (timeouts, retries, pool respawn, cache
self-healing) is only trustworthy if it is *exercised*; this module
arms the seams it protects so chaos tests and ``benchmarks/bench_chaos.py``
can prove — deterministically, with a seeded RNG — that every injected
fault degrades into a typed, recorded outcome instead of a crash.

Activation is environment-driven so faults reach worker processes and
subcommands without plumbing::

    REPRO_FAULTS=cc_hang:0.3,cache_corrupt:0.2,worker_kill:1

Each entry is ``name:probability`` with an optional ``:limit`` third
field bounding the total number of firings (``worker_kill:1:1`` kills
exactly one worker).  Known fault classes:

* ``cc_hang`` — the toolchain's compiler invocation hangs; surfaces as
  :class:`~repro.errors.CompileTimeout` at the ``compile_shared`` seam.
* ``cc_crash`` — the compiler dies on a signal; surfaces as
  :class:`~repro.errors.ToolchainCrash`.
* ``cache_corrupt`` — the on-disk compile cache writes a torn (truncated)
  entry, as a writer killed mid-``write`` would leave behind.
* ``worker_kill`` — a process-pool worker SIGKILLs itself before
  compiling, as the OOM killer would (fires only inside pool workers,
  never in the parent or in thread executors).

``REPRO_FAULTS_SEED`` seeds the per-fault RNGs (default 0), so a fault
plan fires at the same decision points in every run.  When a *global*
budget must hold across processes (one kill total, even with N workers
racing), set ``REPRO_FAULTS_DIR`` to a directory: firings then claim
``<dir>/<fault>.<n>`` slots with ``O_EXCL``, which is atomic across
processes; without it limits are per-process.

The fault-free path stays fast: every seam calls :func:`active_plan`,
which is one environment lookup returning ``None`` when ``REPRO_FAULTS``
is unset — the <5% hardening-overhead gate in ``bench_chaos`` measures
exactly this.
"""

from __future__ import annotations

import os
import random
import signal
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .errors import CompileTimeout, PipelineError, ToolchainCrash
from .perf import PERF

#: Environment variable holding the fault specification string.
FAULTS_ENV = "REPRO_FAULTS"
#: Environment variable seeding the fault RNGs (default 0).
FAULTS_SEED_ENV = "REPRO_FAULTS_SEED"
#: Environment variable naming the cross-process budget directory.
FAULTS_DIR_ENV = "REPRO_FAULTS_DIR"

#: The injectable fault classes.
KNOWN_FAULTS = ("cc_hang", "cc_crash", "cache_corrupt", "worker_kill")


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: a class name, a firing probability and a budget."""

    name: str
    probability: float
    limit: Optional[int] = None  # None: unlimited firings


def parse_faults(text: str) -> Dict[str, FaultSpec]:
    """Parse a ``name:prob[,name:prob[:limit]]*`` specification string."""
    specs: Dict[str, FaultSpec] = {}
    for item in filter(None, (part.strip() for part in text.split(","))):
        fields = item.split(":")
        if len(fields) not in (2, 3):
            raise PipelineError(
                f"Bad {FAULTS_ENV} entry {item!r}: expected name:probability[:limit]"
            )
        name = fields[0]
        if name not in KNOWN_FAULTS:
            raise PipelineError(
                f"Unknown fault class {name!r}; known: {', '.join(KNOWN_FAULTS)}"
            )
        try:
            probability = float(fields[1])
        except ValueError:
            raise PipelineError(f"Bad probability in {FAULTS_ENV} entry {item!r}")
        if not 0.0 <= probability <= 1.0:
            raise PipelineError(
                f"Fault probability must be in [0, 1], got {probability} for {name!r}"
            )
        limit: Optional[int] = None
        if len(fields) == 3:
            try:
                limit = int(fields[2])
            except ValueError:
                raise PipelineError(f"Bad limit in {FAULTS_ENV} entry {item!r}")
        specs[name] = FaultSpec(name=name, probability=probability, limit=limit)
    return specs


#: Set (via :func:`mark_pool_worker`, a pool initializer) in processes
#: that are expendable: ``worker_kill`` only ever fires where this is
#: True, so it can never take down the parent or a thread executor.
_IN_POOL_WORKER = False


def mark_pool_worker() -> None:
    """Declare this process a pool worker (safe to kill under faults)."""
    global _IN_POOL_WORKER
    _IN_POOL_WORKER = True


class FaultPlan:
    """A parsed, seeded fault plan with per-fault firing state.

    Decision sequences are deterministic per fault name: fault ``f`` with
    seed ``s`` draws from ``random.Random(f"{s}:{f}")``, so adding or
    reordering *other* faults never shifts its firing pattern.
    """

    def __init__(
        self,
        specs: Dict[str, FaultSpec],
        seed: int = 0,
        budget_dir: Optional[str] = None,
    ):
        self.specs = dict(specs)
        self.seed = int(seed)
        self.budget_dir = budget_dir
        self._rngs = {
            name: random.Random(f"{self.seed}:{name}") for name in self.specs
        }
        self._fired: Dict[str, int] = {name: 0 for name in self.specs}

    @classmethod
    def from_env(cls, environ=os.environ) -> Optional["FaultPlan"]:
        """Build the plan armed by ``REPRO_FAULTS`` (None when unset/empty)."""
        text = environ.get(FAULTS_ENV)
        if not text:
            return None
        specs = parse_faults(text)
        if not specs:
            return None
        return cls(
            specs,
            seed=int(environ.get(FAULTS_SEED_ENV) or 0),
            budget_dir=environ.get(FAULTS_DIR_ENV) or None,
        )

    # -- firing decisions -------------------------------------------------------
    def _claim_budget(self, spec: FaultSpec) -> bool:
        """Claim one firing slot; False when the budget is exhausted."""
        if spec.limit is None:
            return True
        if self.budget_dir is not None:
            # Cross-process budget: slot files created O_EXCL are an
            # atomic claim even with N workers racing.
            for slot in range(spec.limit):
                path = os.path.join(self.budget_dir, f"{spec.name}.{slot}")
                try:
                    os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                    return True
                except FileExistsError:
                    continue
                except OSError:
                    return False  # unusable budget dir: fail safe (no firing)
            return False
        return self._fired[spec.name] < spec.limit

    def should_fire(self, name: str) -> bool:
        """Roll the (seeded) dice for one potential firing of ``name``."""
        spec = self.specs.get(name)
        if spec is None or spec.probability <= 0.0:
            return False
        roll = self._rngs[name].random()  # always draw: keeps sequences aligned
        if roll >= spec.probability:
            return False
        if not self._claim_budget(spec):
            return False
        self._fired[name] += 1
        PERF.increment(f"faults.{name}.fired")
        return True

    def fired(self, name: str) -> int:
        """How many times ``name`` has fired in this process."""
        return self._fired.get(name, 0)

    # -- seam hooks -------------------------------------------------------------
    def cc_fault(self, timeout: Optional[float] = None) -> None:
        """Toolchain seam: raise the armed compiler fault, if it fires.

        Called by ``compile_shared`` immediately before spawning the
        compiler; an injected hang is indistinguishable (to every layer
        above) from a real compiler that sat on the CPU until the
        deadline killed it.
        """
        if self.should_fire("cc_hang"):
            budget = timeout if timeout and timeout > 0 else 0.0
            raise CompileTimeout(
                f"injected fault: C compiler hung past its {budget:g}s deadline",
                seconds=budget,
            )
        if self.should_fire("cc_crash"):
            raise ToolchainCrash(
                "injected fault: C compiler killed by SIGSEGV",
                returncode=-signal.SIGSEGV,
            )

    def corrupt_cache_text(self, text: str) -> str:
        """Cache-write seam: return a torn version of ``text``, if armed.

        Truncation at one third simulates a writer killed mid-write with
        a non-atomic store — invalid JSON or a checksum mismatch, both of
        which the reader must quarantine.
        """
        if not self.should_fire("cache_corrupt"):
            return text
        return text[: max(1, len(text) // 3)]

    def maybe_kill_worker(self) -> None:
        """Worker seam: SIGKILL this process, if armed and expendable."""
        if not _IN_POOL_WORKER:
            return
        if self.should_fire("worker_kill"):
            os.kill(os.getpid(), signal.SIGKILL)


#: Cache of the environment-armed plan, keyed by the raw env triple so a
#: changed ``REPRO_FAULTS`` (tests, the chaos benchmark) rebuilds it.
_CACHED: Tuple[Optional[Tuple[Optional[str], Optional[str], Optional[str]]],
               Optional[FaultPlan]] = (None, None)


def active_plan() -> Optional[FaultPlan]:
    """The process-wide fault plan, or None when no faults are armed.

    Seams call this on their hot path; when ``REPRO_FAULTS`` is unset the
    cost is a dict lookup and a tuple compare.
    """
    global _CACHED
    key = (
        os.environ.get(FAULTS_ENV),
        os.environ.get(FAULTS_SEED_ENV),
        os.environ.get(FAULTS_DIR_ENV),
    )
    if key == _CACHED[0]:
        return _CACHED[1]
    plan = FaultPlan.from_env() if key[0] else None
    _CACHED = (key, plan)
    return plan


def reset_plan() -> None:
    """Drop the cached plan (tests that re-arm faults mid-process)."""
    global _CACHED
    _CACHED = (None, None)


__all__ = [
    "FAULTS_DIR_ENV",
    "FAULTS_ENV",
    "FAULTS_SEED_ENV",
    "FaultPlan",
    "FaultSpec",
    "KNOWN_FAULTS",
    "active_plan",
    "mark_pool_worker",
    "parse_faults",
    "reset_plan",
]
