"""Shared exception types of the compilation pipelines and the service layer.

``PipelineError`` lives here (rather than in :mod:`repro.pipeline`) so the
lower layers — conversion, codegen, the compile cache — can raise it for
user-facing misuse (unknown pipeline name, ``function=`` naming a function
that does not exist) without importing the pipeline package and creating an
import cycle.  ``FrontendError`` is its frontend-diagnostic refinement:
any frontend (C or Python) rejecting an input program raises it with a
source location, so callers — the CLI, the batch compiler, tests — can
rely on a precise "line N: what and why" message instead of a crash from
deep inside lowering.

Failure taxonomy
----------------

The service layer degrades instead of dying, and to do that it needs to
know *which* failures are worth another attempt.  Every failure is
classified on one axis:

* :class:`TransientError` — caused by the environment, not the request;
  retrying (or re-dispatching to a fresh worker) may succeed.  Subtypes:
  :class:`CompileTimeout` (a bounded external wait expired),
  :class:`ToolchainCrash` (the system compiler died on a signal),
  :class:`WorkerLost` (a pool worker was killed — OOM, SIGKILL — before
  reporting a result) and :class:`CacheCorruption` (a stored artifact
  failed its integrity check and could not be healed in place).
* :class:`PermanentError` — caused by the request itself (bad source,
  unknown pipeline, no compiler installed); retrying is pointless.

:func:`failure_kind` maps an exception (or its type name, for errors that
crossed a process boundary as strings) to a stable kind string recorded
on ``BatchOutcome``/``SuiteEntry``, so reports say *what class of thing*
went wrong instead of only quoting a message.
"""

from __future__ import annotations

from typing import Optional, Union


class PipelineError(Exception):
    """Raised for unknown pipelines, bad requests or failed compilation stages."""


class TransientError(PipelineError):
    """An environment-caused failure; the same request may succeed on retry."""


class PermanentError(PipelineError):
    """A request-caused failure; retrying the same request cannot succeed."""


class CompileTimeout(TransientError):
    """A deadline expired: a hung compiler process or an overrun request.

    ``seconds`` carries the budget that was exceeded (when known).
    """

    def __init__(self, message: str, seconds: Optional[float] = None):
        self.seconds = seconds
        super().__init__(message)


class ToolchainCrash(TransientError):
    """The system C compiler terminated abnormally (killed by a signal).

    Distinct from a *diagnosed* compile failure (nonzero exit with
    diagnostics, a :class:`ToolchainError` — permanent): a crash says
    nothing about the source being compiled, so it is worth retrying.
    """

    def __init__(self, message: str, returncode: Optional[int] = None):
        self.returncode = returncode
        super().__init__(message)


class WorkerLost(TransientError):
    """A batch worker process died (SIGKILL, OOM) before returning a result."""


class CacheCorruption(TransientError):
    """A cached artifact failed its integrity check and could not be healed."""


class ToolchainError(PermanentError):
    """C source cannot be compiled or loaded natively (diagnosed failure).

    Historically defined in :mod:`repro.codegen.toolchain` (which still
    re-exports it); it lives here so the taxonomy is one closed set.
    """


#: Stable failure-kind strings recorded on batch/suite outcomes.
KIND_TIMEOUT = "timeout"
KIND_TOOLCHAIN_CRASH = "toolchain-crash"
KIND_WORKER_LOST = "worker-lost"
KIND_CACHE_CORRUPTION = "cache-corruption"
KIND_PERMANENT = "permanent"
KIND_UNEXPECTED = "unexpected"
#: Catch-all for :class:`TransientError` subtypes outside the named four.
KIND_TRANSIENT = "transient"

#: Kinds whose failures are worth retrying.
TRANSIENT_KINDS = frozenset(
    {KIND_TIMEOUT, KIND_TOOLCHAIN_CRASH, KIND_WORKER_LOST,
     KIND_CACHE_CORRUPTION, KIND_TRANSIENT}
)

_KIND_BY_TYPE_NAME = {
    "CompileTimeout": KIND_TIMEOUT,
    "ToolchainCrash": KIND_TOOLCHAIN_CRASH,
    "WorkerLost": KIND_WORKER_LOST,
    "BrokenProcessPool": KIND_WORKER_LOST,
    "CacheCorruption": KIND_CACHE_CORRUPTION,
}

#: Type names diagnosed as *request* failures.  Includes frontend
#: diagnostics that predate the taxonomy and do not subclass
#: :class:`PipelineError` (``CParseError``, ``CLexerError``,
#: ``LoweringError``) — classifying by name keeps instance and
#: across-process (string) classification consistent.
_PERMANENT_TYPE_NAMES = frozenset({
    "PipelineError", "PermanentError", "FrontendError", "CParseError",
    "CLexerError", "LoweringError", "ToolchainError", "NativeCodegenError",
})


def failure_kind(error: Union[BaseException, type, str, None]) -> Optional[str]:
    """Classify an exception (instance, class or type name) into a kind string.

    Errors that crossed a process boundary survive only as type-name
    strings; classifying by name keeps the taxonomy usable on both sides.
    Unknown :class:`PipelineError` subtypes are request failures
    (``"permanent"``); anything outside the taxonomy is ``"unexpected"``.
    ``None`` (no error) maps to ``None``.
    """
    if error is None:
        return None
    if isinstance(error, str):
        kind = _KIND_BY_TYPE_NAME.get(error)
        if kind is not None:
            return kind
        if error == "TransientError":
            return KIND_TRANSIENT
        if error in _PERMANENT_TYPE_NAMES:
            return KIND_PERMANENT
        return KIND_UNEXPECTED
    cls = error if isinstance(error, type) else type(error)
    for base in cls.__mro__:
        kind = _KIND_BY_TYPE_NAME.get(base.__name__)
        if kind is not None:
            return kind
    if issubclass(cls, TransientError):
        return KIND_TRANSIENT
    if issubclass(cls, PipelineError):
        return KIND_PERMANENT
    if any(base.__name__ in _PERMANENT_TYPE_NAMES for base in cls.__mro__):
        return KIND_PERMANENT
    return KIND_UNEXPECTED


def is_transient(error: Union[BaseException, type, str, None]) -> bool:
    """Whether a failure is worth retrying (see :func:`failure_kind`)."""
    if isinstance(error, BaseException):
        return isinstance(error, TransientError)
    if isinstance(error, type):
        return issubclass(error, TransientError)
    return failure_kind(error) in TRANSIENT_KINDS


class FrontendError(PipelineError):
    """A frontend rejected the input program.

    Carries the 1-based source line of the offending construct (relative
    to the program's own source: for a Python program, line 1 is the
    ``def`` line) plus the source text of that line when available.  The
    rendered message always leads with ``line N:`` so diagnostics stay
    grep-able in CLI and batch-error output.
    """

    def __init__(self, message: str, line: Optional[int] = None,
                 source_line: Optional[str] = None):
        self.line = line
        self.source_line = source_line.strip() if source_line else None
        prefix = f"line {line}: " if line is not None else ""
        suffix = f"\n    {self.source_line}" if self.source_line else ""
        super().__init__(prefix + message + suffix)
