"""Shared exception types of the compilation pipelines and the service layer.

``PipelineError`` lives here (rather than in :mod:`repro.pipeline`) so the
lower layers — conversion, codegen, the compile cache — can raise it for
user-facing misuse (unknown pipeline name, ``function=`` naming a function
that does not exist) without importing the pipeline package and creating an
import cycle.
"""

from __future__ import annotations


class PipelineError(Exception):
    """Raised for unknown pipelines, bad requests or failed compilation stages."""
