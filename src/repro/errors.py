"""Shared exception types of the compilation pipelines and the service layer.

``PipelineError`` lives here (rather than in :mod:`repro.pipeline`) so the
lower layers — conversion, codegen, the compile cache — can raise it for
user-facing misuse (unknown pipeline name, ``function=`` naming a function
that does not exist) without importing the pipeline package and creating an
import cycle.  ``FrontendError`` is its frontend-diagnostic refinement:
any frontend (C or Python) rejecting an input program raises it with a
source location, so callers — the CLI, the batch compiler, tests — can
rely on a precise "line N: what and why" message instead of a crash from
deep inside lowering.
"""

from __future__ import annotations

from typing import Optional


class PipelineError(Exception):
    """Raised for unknown pipelines, bad requests or failed compilation stages."""


class FrontendError(PipelineError):
    """A frontend rejected the input program.

    Carries the 1-based source line of the offending construct (relative
    to the program's own source: for a Python program, line 1 is the
    ``def`` line) plus the source text of that line when available.  The
    rendered message always leads with ``line N:`` so diagnostics stay
    grep-able in CLI and batch-error output.
    """

    def __init__(self, message: str, line: Optional[int] = None,
                 source_line: Optional[str] = None):
        self.line = line
        self.source_line = source_line.strip() if source_line else None
        prefix = f"line {line}: " if line is not None else ""
        suffix = f"\n    {self.source_line}" if self.source_line else ""
        super().__init__(prefix + message + suffix)
