"""Loading generated Python source into executable objects.

Both code generators emit *self-contained* Python source (imports included)
whose top level defines a ``run(**kwargs)`` function.  That makes the code
string the canonical serializable artifact: the compile cache stores it,
and rehydration is a single ``exec`` — no IR objects required.
"""

from __future__ import annotations

from typing import Callable, Dict


class ProgramLoadError(Exception):
    """Raised when generated code does not define the expected entry point."""


def load_entry(code: str, entry: str = "run", filename: str = "<generated>") -> Callable:
    """Execute generated source and return its ``entry`` callable."""
    namespace: Dict[str, object] = {}
    exec(compile(code, filename, "exec"), namespace)
    try:
        function = namespace[entry]
    except KeyError:
        raise ProgramLoadError(
            f"Generated code defines no {entry!r} entry point "
            f"(defined names: {sorted(k for k in namespace if not k.startswith('__'))})"
        ) from None
    if not callable(function):
        raise ProgramLoadError(f"Generated name {entry!r} is not callable")
    return function
