"""Loading generated Python source into executable objects.

Both code generators emit *self-contained* Python source (imports included)
whose top level defines a ``run(**kwargs)`` function.  That makes the code
string the canonical serializable artifact: the compile cache stores it,
and rehydration is a single ``exec`` — no IR objects required.

Generated code is registered in :mod:`linecache` under a per-artifact
filename (the requested name suffixed with the content hash), so a
traceback raised inside a generated ``run()`` shows the offending
generated source line instead of a blank frame.  The hash suffix matters:
callers reuse display names like ``<cached:dcir>`` for *different*
programs, and keying the cache on the bare name would show one kernel's
source in another kernel's traceback.
"""

from __future__ import annotations

import hashlib
import linecache
from typing import Callable, Dict


class ProgramLoadError(Exception):
    """Raised when generated code does not define the expected entry point."""


def _register_source(code: str, filename: str) -> str:
    """Register ``code`` in linecache; return the unique per-artifact filename."""
    digest = hashlib.sha256(code.encode("utf-8")).hexdigest()[:12]
    unique = f"<{filename.strip('<>')}#{digest}>"
    # mtime=None marks the entry as non-file-backed, so
    # ``linecache.checkcache`` never evicts it in favor of the filesystem.
    linecache.cache[unique] = (
        len(code),
        None,
        code.splitlines(keepends=True),
        unique,
    )
    return unique


def load_entry(code: str, entry: str = "run", filename: str = "<generated>") -> Callable:
    """Execute generated source and return its ``entry`` callable."""
    namespace: Dict[str, object] = {}
    unique = _register_source(code, filename)
    exec(compile(code, unique, "exec"), namespace)
    try:
        function = namespace[entry]
    except KeyError:
        raise ProgramLoadError(
            f"Generated code defines no {entry!r} entry point "
            f"(defined names: {sorted(k for k in namespace if not k.startswith('__'))})"
        ) from None
    if not callable(function):
        raise ProgramLoadError(f"Generated name {entry!r} is not callable")
    return function
