"""SDFG → executable Python code generation.

DaCe generates C++ from SDFGs; this reproduction generates Python (the
substrate available here), preserving what matters for the evaluation:
structured loops are raised from the state machine (no per-iteration
dispatch overhead), transient containers are allocated either up front
(``persistent`` lifetime, after memory pre-allocation) or at their first
use inside whatever loop that happens to be (modelling allocation cost on
the critical path), map scopes become loops — or vectorized numpy
expressions in the ICC/SLEEF-modelling vectorized mode — and WCR memlets
become in-place updates.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..symbolic import Expr, Subset
from ..sdfg import (
    SDFG,
    AccessNode,
    Memlet,
    SDFGState,
    Scalar,
    Tasklet,
)
from ..sdfg.data import Array, DTYPES, LIFETIME_PERSISTENT, Stream
from ..sdfg.nodes import MapEntry, MapExit, SCHEDULE_PARALLEL, is_scope_entry, is_scope_exit
from ..sdfg.parallelism import NUM_THREADS_ENV, ParallelismInfo, analyze_map_parallelism
from .control_flow import (
    BranchNode,
    ControlFlowNode,
    DispatchNode,
    LoopNode,
    SequenceNode,
    StateNode,
    build_control_flow,
)
from .loader import load_entry


class CodegenError(Exception):
    """Raised when an SDFG cannot be turned into executable code."""


def vectorizable_map(state, entry: "MapEntry", members) -> bool:
    """Whether a map scope can be emitted as a vector (numpy) operation.

    Shared between the code generator (the global ``vectorize`` flag of
    the ``dcir+vec`` pipeline vectorizes every eligible map) and the
    ``Vectorization`` transformation (which annotates individual maps):
    single parameter, no nested scopes, assignment-only tasklets, and no
    WCR updates (vector semantics would reorder the reduction).
    """
    if len(entry.map.params) != 1:
        return False
    for node in members:
        if isinstance(node, MapEntry):
            return False
        if isinstance(node, Tasklet):
            for line in node.code.splitlines():
                if not re.match(r"^\s*\w+\s*=[^=].*$", line) and line.strip():
                    return False
        for edge in state.in_edges(node) + state.out_edges(node):
            if edge.data.wcr is not None:
                return False
    return True


def python_expr(expression: Expr) -> str:
    """Render a symbolic expression as Python source."""
    text = str(expression)
    text = text.replace("Min(", "min(").replace("Max(", "max(")
    text = text.replace(" and ", " and ").replace(" or ", " or ")
    return text


class _Writer:
    """Tiny indentation-aware source writer."""

    def __init__(self):
        self.lines: List[str] = []
        self.indent = 0

    def emit(self, line: str = "") -> None:
        self.lines.append("    " * self.indent + line if line else "")

    def block(self):
        writer = self

        class _Indent:
            def __enter__(self_inner):
                writer.indent += 1
                self_inner.start = len(writer.lines)

            def __exit__(self_inner, *exc):
                if len(writer.lines) == self_inner.start:
                    writer.emit("pass")
                writer.indent -= 1

        return _Indent()

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


# Derived from the central dtype table so the interpreted and native
# backends can never disagree on element types (sdfg/data.py::DTYPES).
_NUMPY_DTYPES = {name: f"np.{info.numpy_name}" for name, info in DTYPES.items()}


# Runtime support for parallel-scheduled maps, emitted into the generated
# module only when the SDFG actually contains one (sequential programs
# stay byte-identical).  Workers are forked processes writing through
# ``multiprocessing.shared_memory`` segments: fork keeps the generated
# body function callable without pickling, shared memory makes array
# writes visible to the parent, and per-chunk partial slots carry scalar
# reduction results back (the fork itself privatizes everything else).
_PARALLEL_HELPERS = f"""\
import multiprocessing as _repro_mp
import os as _repro_os
from multiprocessing import shared_memory as _repro_shm

_repro_fork_ok = "fork" in _repro_mp.get_all_start_methods()
_repro_ctx = _repro_mp.get_context("fork") if _repro_fork_ok else None

def _repro_workers(requested):
    if requested and int(requested) > 0:
        return int(requested)
    env = _repro_os.environ.get({NUM_THREADS_ENV!r}, "").strip()
    if env:
        try:
            value = int(env)
            if value > 0:
                return value
        except ValueError:
            pass
    try:
        return max(1, len(_repro_os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, _repro_os.cpu_count() or 1)

def _repro_chunks(start, end, step, pieces):
    total = len(range(start, end, step))
    if total == 0:
        return []
    pieces = max(1, min(int(pieces), total))
    bounds = []
    for index in range(pieces):
        low = (total * index) // pieces
        high = (total * (index + 1)) // pieces
        if high > low:
            bounds.append((start + step * low, start + step * high))
    return bounds

class _ReproShared:
    def __init__(self):
        self._arrays = []
        self._extra = []
    def share(self, array):
        segment = _repro_shm.SharedMemory(create=True, size=max(1, array.nbytes))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        self._arrays.append((segment, array))
        return view
    def partials(self, count, dtype, identity):
        size = max(1, int(count) * np.dtype(dtype).itemsize)
        segment = _repro_shm.SharedMemory(create=True, size=size)
        view = np.ndarray((int(count),), dtype=dtype, buffer=segment.buf)
        view[...] = identity
        self._extra.append(segment)
        return view
    def restore(self):
        originals = []
        for segment, original in self._arrays:
            view = np.ndarray(original.shape, dtype=original.dtype, buffer=segment.buf)
            original[...] = view
            del view
            originals.append(original)
        for segment, _ in self._arrays:
            segment.close()
            segment.unlink()
        for segment in self._extra:
            segment.close()
            segment.unlink()
        self._arrays = []
        self._extra = []
        return tuple(originals)\
"""


def _reduction_identity(operator: str, dtype: str) -> str:
    """Identity-element literal for one scalar reduction, as source text."""
    floating = dtype.startswith("float")
    if operator == "+":
        return "0.0" if floating else "0"
    if operator == "*":
        return "1.0" if floating else "1"
    if operator == "min":
        return "float('inf')" if floating else f"int(np.iinfo({_NUMPY_DTYPES[dtype]}).max)"
    if operator == "max":
        return "float('-inf')" if floating else f"int(np.iinfo({_NUMPY_DTYPES[dtype]}).min)"
    raise CodegenError(f"No reduction identity for WCR operator {operator!r}")


#: Parent-side fold of one partials vector into the pre-map scalar value.
_REDUCTION_COMBINE = {
    "+": "{name} = {name} + {partials}.sum().item()",
    "*": "{name} = {name} * {partials}.prod().item()",
    "min": "{name} = min({name}, {partials}.min().item())",
    "max": "{name} = max({name}, {partials}.max().item())",
}


class SDFGPythonGenerator:
    """Generates a Python ``run(**kwargs)`` function from an SDFG."""

    def __init__(self, sdfg: SDFG, vectorize: bool = False, count_allocations: bool = True):
        self.sdfg = sdfg
        self.vectorize = vectorize
        self.count_allocations = count_allocations
        self.writer = _Writer()
        self._value_counter = 0
        self._parallel_counter = 0
        self._allocated_persistent: Set[str] = set()
        # Parallel-scheduled map scopes whose safety proof succeeds.  The
        # interpreted executor has no atomics (workers are processes), so
        # maps needing atomic WCR updates also lower sequentially here —
        # the annotation is a request, the proof is the authority.
        self._parallel_maps: Dict[int, ParallelismInfo] = {}
        for state, entry in sdfg.map_entries():
            if entry.map.schedule != SCHEDULE_PARALLEL:
                continue
            if state.scope_dict().get(entry) is not None:
                continue
            info = analyze_map_parallelism(sdfg, state, entry)
            if info.ok and not info.atomic_edges:
                self._parallel_maps[id(entry)] = info

    # -- public -------------------------------------------------------------------
    def generate(self) -> str:
        writer = self.writer
        writer.emit("import math")
        writer.emit("import numpy as np")
        if self._parallel_maps:
            for line in _PARALLEL_HELPERS.splitlines():
                writer.emit(line)
        writer.emit()
        writer.emit("def run(**_args):")
        with writer.block():
            self._emit_prologue()
            tree = build_control_flow(self.sdfg)
            if not tree.children:
                writer.emit("pass")
            self._emit_sequence(tree)
            self._emit_epilogue()
        return writer.text()

    # -- prologue / epilogue -----------------------------------------------------------
    def _emit_prologue(self) -> None:
        writer = self.writer
        writer.emit("_alloc_count = 0")
        # Symbols: free symbols come from the caller, constants are inlined.
        for name, value in self.sdfg.constants.items():
            writer.emit(f"{name} = {value!r}")
        free = self.sdfg.free_symbols()
        for name in sorted(free):
            writer.emit(f"{name} = _args[{name!r}]")
        for name in sorted(set(self.sdfg.symbols) - free - set(self.sdfg.constants)):
            writer.emit(f"{name} = 0")
        # Externally-visible containers are passed in.
        for name, descriptor in self.sdfg.arrays.items():
            if descriptor.transient:
                continue
            if isinstance(descriptor, Scalar):
                default = "0.0" if descriptor.dtype.startswith("float") else "0"
                writer.emit(f"{name} = _args.get({name!r}, {default})")
            else:
                writer.emit(f"{name} = _args[{name!r}]")
        # Transients: arrays are storage, allocated once here for correctness;
        # the *cost* of a non-persistent (not pre-allocated) container is
        # modelled by the _alloc_count increments emitted at its first-use
        # state (see _emit_lazy_allocations), which may sit inside a loop.
        for name, descriptor in self.sdfg.arrays.items():
            if not descriptor.transient:
                continue
            if isinstance(descriptor, Scalar):
                default = "0.0" if descriptor.dtype.startswith("float") else "0"
                writer.emit(f"{name} = {default}")
            elif isinstance(descriptor, Stream):
                writer.emit(f"{name} = []")
            else:
                count_now = descriptor.lifetime == LIFETIME_PERSISTENT
                self._emit_allocation(name, descriptor, count=count_now)
                if count_now:
                    self._allocated_persistent.add(name)

    def _emit_allocation(self, name: str, descriptor: Array, count: bool = True) -> None:
        shape = ", ".join(f"int({python_expr(dim)})" for dim in descriptor.shape)
        dtype = _NUMPY_DTYPES[descriptor.dtype]
        self.writer.emit(f"{name} = np.empty(({shape},), dtype={dtype})")
        if self.count_allocations and count:
            self.writer.emit("_alloc_count += 1")

    def _emit_epilogue(self) -> None:
        writer = self.writer
        outputs = []
        for name, descriptor in self.sdfg.arrays.items():
            if not descriptor.transient or name in self.sdfg.return_values:
                outputs.append(name)
        entries = ", ".join(f"{name!r}: {name}" for name in dict.fromkeys(outputs))
        writer.emit(f"return {{'__allocations': _alloc_count, {entries}}}")

    # -- control flow ----------------------------------------------------------------------
    def _emit_sequence(self, node: SequenceNode) -> None:
        for child in node.children:
            self._emit_cf(child)

    def _emit_cf(self, node: ControlFlowNode) -> None:
        writer = self.writer
        if isinstance(node, StateNode):
            self._emit_state(node.state)
            self._emit_assignments(node.assignments)
        elif isinstance(node, SequenceNode):
            self._emit_sequence(node)
        elif isinstance(node, LoopNode):
            if node.guard.is_empty():
                writer.emit(f"while {python_expr(node.condition)}:")
                with writer.block():
                    if node.body.children:
                        self._emit_sequence(node.body)
                    else:
                        writer.emit("pass")
            else:
                writer.emit("while True:")
                with writer.block():
                    self._emit_state(node.guard)
                    writer.emit(f"if not ({python_expr(node.condition)}):")
                    with writer.block():
                        writer.emit("break")
                    self._emit_sequence(node.body)
            self._emit_assignments(node.exit_assignments)
        elif isinstance(node, BranchNode):
            writer.emit(f"if {python_expr(node.condition)}:")
            with writer.block():
                self._emit_assignments(node.then_assignments)
                if node.then_body.children:
                    self._emit_sequence(node.then_body)
                else:
                    writer.emit("pass")
            if node.else_body.children or node.else_assignments:
                writer.emit("else:")
                with writer.block():
                    self._emit_assignments(node.else_assignments)
                    if node.else_body.children:
                        self._emit_sequence(node.else_body)
                    else:
                        writer.emit("pass")
        elif isinstance(node, DispatchNode):
            self._emit_dispatch(node)
        else:  # pragma: no cover - defensive
            raise CodegenError(f"Unknown control-flow node {node!r}")

    def _emit_assignments(self, assignments: Dict[str, Expr]) -> None:
        for name, value in assignments.items():
            self.writer.emit(f"{name} = {python_expr(value)}")

    def _emit_dispatch(self, node: DispatchNode) -> None:
        """Generic state-machine interpreter for unstructured regions."""
        writer = self.writer
        writer.emit(f"_state = {node.entry.label!r}")
        writer.emit("while _state is not None:")
        with writer.block():
            first = True
            for state in node.states:
                keyword = "if" if first else "elif"
                first = False
                writer.emit(f"{keyword} _state == {state.label!r}:")
                with writer.block():
                    self._emit_state(state)
                    out_edges = self.sdfg.out_edges(state)
                    if not out_edges:
                        writer.emit("_state = None")
                        continue
                    branch_first = True
                    unconditional_emitted = False
                    for edge in out_edges:
                        if edge.data.is_unconditional:
                            prefix = "if True" if branch_first else "else"
                            if branch_first:
                                writer.emit("if True:")
                            else:
                                writer.emit("else:")
                            unconditional_emitted = True
                        else:
                            keyword2 = "if" if branch_first else "elif"
                            writer.emit(f"{keyword2} {python_expr(edge.data.condition)}:")
                        with writer.block():
                            self._emit_assignments(edge.data.assignments)
                            writer.emit(f"_state = {edge.dst.label!r}")
                        branch_first = False
                    if not unconditional_emitted:
                        writer.emit("else:")
                        with writer.block():
                            writer.emit("_state = None")
            writer.emit("else:")
            with writer.block():
                writer.emit("_state = None")

    # -- state dataflow ------------------------------------------------------------------------
    def _emit_state(self, state: SDFGState) -> None:
        if state.is_empty():
            return
        self._emit_lazy_allocations(state)
        scope = state.scope_dict()
        value_names: Dict[Tuple[int, Optional[str]], str] = {}
        for node in state.topological_nodes():
            if scope.get(node) is not None:
                continue  # emitted as part of its map scope
            self._emit_node(state, node, scope, value_names)

    def _emit_lazy_allocations(self, state: SDFGState) -> None:
        """Charge allocation cost for non-pre-allocated transients.

        Containers that were not hoisted by memory pre-allocation (§6.3) pay
        an allocation each time their first-use state executes — inside a
        loop if that is where they are used — which is what the allocation
        counter of the run results reports.
        """
        if not self.count_allocations:
            return
        for name in sorted(state.read_set() | state.write_set()):
            descriptor = self.sdfg.arrays.get(name)
            if (
                isinstance(descriptor, Array)
                and descriptor.transient
                and descriptor.lifetime != LIFETIME_PERSISTENT
                and name not in self._allocated_persistent
            ):
                self._allocated_persistent.add(name)
                self.writer.emit(f"_alloc_count += 1  # allocation of {name} on this path")

    def _emit_node(self, state, node, scope, value_names) -> None:
        if isinstance(node, Tasklet):
            self._emit_tasklet(state, node, value_names, vector_param=None)
        elif isinstance(node, MapEntry):
            self._emit_map(state, node, scope, value_names)
        elif isinstance(node, AccessNode):
            self._emit_access_copies(state, node, value_names)
        elif isinstance(node, MapExit) or is_scope_exit(node):
            return
        elif is_scope_entry(node):
            return

    # -- access-node copies -----------------------------------------------------------------
    def _emit_access_copies(self, state, node: AccessNode, value_names) -> None:
        """Emit access→access copy edges terminating at this node."""
        for edge in state.in_edges(node):
            if not isinstance(edge.src, AccessNode) or edge.data.is_empty:
                continue
            source = edge.src.data
            destination = node.data
            src_descriptor = self.sdfg.arrays[source]
            dst_descriptor = self.sdfg.arrays[destination]
            if isinstance(dst_descriptor, Scalar) and isinstance(src_descriptor, Scalar):
                self.writer.emit(f"{destination} = {source}")
            elif isinstance(dst_descriptor, Scalar):
                subset = edge.data.subset
                index = self._subset_index(subset) if subset is not None else "0"
                self.writer.emit(f"{destination} = {source}[{index}]")
            elif isinstance(src_descriptor, Scalar):
                subset = edge.data.subset
                index = self._subset_index(subset) if subset is not None else ":"
                self.writer.emit(f"{destination}[{index}] = {source}")
            else:
                self.writer.emit(f"np.copyto({destination}, {source})")

    # -- tasklets -------------------------------------------------------------------------------
    def _emit_tasklet(self, state, tasklet: Tasklet, value_names, vector_param: Optional[str]) -> None:
        if tasklet.language == "mlir":
            raise CodegenError(
                f"Tasklet {tasklet.label!r} was kept in MLIR form and cannot be executed by "
                "the Python backend"
            )
        writer = self.writer
        # Bind input connectors.
        for edge in state.in_edges(tasklet):
            if edge.dst_conn is None:
                continue
            expression = self._read_expression(state, edge, value_names)
            writer.emit(f"{edge.dst_conn} = {expression}")
        code = tasklet.code
        if vector_param is not None:
            # Vector emission (global flag or per-map annotation): scalar
            # math functions become their numpy element-wise equivalents.
            code = code.replace("math.", "np.")
        for line in code.splitlines():
            writer.emit(line)
        # Write output connectors.
        for edge in state.out_edges(tasklet):
            if edge.src_conn is None:
                continue
            destination = edge.dst
            if isinstance(destination, (AccessNode, MapExit)):
                self._emit_write(edge, edge.src_conn)
            else:
                # Value edge to another code node.
                temp = f"_val{self._value_counter}"
                self._value_counter += 1
                writer.emit(f"{temp} = {edge.src_conn}")
                value_names[(id(tasklet), edge.src_conn)] = temp

    def _read_expression(self, state, edge, value_names) -> str:
        source = edge.src
        memlet: Memlet = edge.data
        if isinstance(source, AccessNode):
            return self._memlet_read(source.data, memlet)
        if isinstance(source, MapEntry):
            if memlet.is_empty:
                return "None"
            return self._memlet_read(memlet.data, memlet)
        # Value edge from another code node.
        key = (id(source), edge.src_conn)
        if key in value_names:
            return value_names[key]
        if memlet.is_empty:
            return "None"
        return self._memlet_read(memlet.data, memlet)

    def _memlet_read(self, data: str, memlet: Memlet) -> str:
        descriptor = self.sdfg.arrays[data]
        if isinstance(descriptor, Scalar):
            return data
        if memlet.is_empty or memlet.subset is None or memlet.dynamic:
            return data
        if memlet.subset.is_point():
            return f"{data}[{self._subset_index(memlet.subset)}]"
        if self._covers_whole(descriptor, memlet.subset):
            return data
        return f"{data}[{self._subset_slices(memlet.subset)}]"

    def _emit_write(self, edge, value_expr: str) -> None:
        memlet: Memlet = edge.data
        destination_node = edge.dst
        data = memlet.data if not memlet.is_empty else (
            destination_node.data if isinstance(destination_node, AccessNode) else None
        )
        if data is None:
            return
        descriptor = self.sdfg.arrays[data]
        writer = self.writer
        operator = {"+": "+=", "*": "*="}.get(memlet.wcr, "=") if memlet.wcr else "="
        if isinstance(descriptor, Scalar):
            if memlet.wcr in ("min", "max"):
                writer.emit(f"{data} = {memlet.wcr}({data}, {value_expr})")
            else:
                writer.emit(f"{data} {operator} {value_expr}")
            return
        if memlet.dynamic and memlet.subset is None:
            return  # in-place mutation already performed through the input view
        if memlet.subset is None:
            writer.emit(f"{data}[...] {operator} {value_expr}")
            return
        if memlet.subset.is_point():
            target = f"{data}[{self._subset_index(memlet.subset)}]"
        elif self._covers_whole(descriptor, memlet.subset) and memlet.dynamic:
            return
        else:
            target = f"{data}[{self._subset_slices(memlet.subset)}]"
        if memlet.wcr in ("min", "max"):
            writer.emit(f"{target} = {memlet.wcr}({target}, {value_expr})")
        else:
            writer.emit(f"{target} {operator} {value_expr}")

    # -- maps ------------------------------------------------------------------------------------
    def _emit_map(self, state, entry: MapEntry, scope, value_names) -> None:
        writer = self.writer
        exit_node = state.exit_node(entry)
        members = [
            node
            for node in state.topological_nodes()
            if scope.get(node) is entry and node is not exit_node
        ]
        vectorizable = (
            (self.vectorize or entry.map.vectorized)
            and self._vectorizable(state, entry, members)
        )
        params = entry.map.params
        ranges = entry.map.ranges

        if vectorizable:
            for param, rng in zip(params, ranges):
                writer.emit(
                    f"{param} = np.arange(int({python_expr(rng.start)}), "
                    f"int({python_expr(rng.end)}), int({python_expr(rng.step)}))"
                )
            for node in members:
                self._emit_scope_member(state, node, scope, value_names, vector_param=params[0])
            return

        info = self._parallel_maps.get(id(entry))
        if info is not None:
            self._emit_parallel_map(state, entry, members, scope, value_names, info)
            return

        self._emit_sequential_loops(state, entry, members, scope, value_names)

    def _emit_sequential_loops(self, state, entry: MapEntry, members, scope, value_names) -> None:
        writer = self.writer
        params = entry.map.params
        ranges = entry.map.ranges
        for param, rng in zip(params, ranges):
            writer.emit(
                f"for {param} in range(int({python_expr(rng.start)}), "
                f"int({python_expr(rng.end)}), int({python_expr(rng.step)})):"
            )
            writer.indent += 1
        if not members:
            writer.emit("pass")
        for node in members:
            self._emit_scope_member(state, node, scope, value_names, vector_param=None)
        for _ in params:
            writer.indent -= 1

    def _emit_parallel_map(self, state, entry: MapEntry, members, scope, value_names,
                           info: ParallelismInfo) -> None:
        """Emit a map as a fork/join over chunks of its first dimension.

        The chunk grain is the outermost map parameter (after MapTiling
        that is the tile loop), split contiguously across the resolved
        worker count.  Written arrays move into shared-memory segments so
        worker writes survive the fork boundary; scalar WCR reductions
        accumulate privately per chunk into partial slots that the parent
        folds back in chunk order (deterministic for a fixed chunking).
        Degenerate chunkings — one worker, empty range, or no ``fork``
        start method on this platform — take the sequential loop nest.
        """
        writer = self.writer
        params = entry.map.params
        ranges = entry.map.ranges
        index = self._parallel_counter
        self._parallel_counter += 1
        chunks = f"_pchunks{index}"
        first = ranges[0]
        start = f"int({python_expr(first.start)})"
        end = f"int({python_expr(first.end)})"
        step = f"int({python_expr(first.step)})"
        requested = entry.map.n_threads or 0
        writer.emit(
            f"{chunks} = _repro_chunks({start}, {end}, {step}, "
            f"_repro_workers({requested})) if _repro_fork_ok else []"
        )
        writer.emit(f"if len({chunks}) <= 1:")
        with writer.block():
            self._emit_sequential_loops(state, entry, members, scope, dict(value_names))
        writer.emit("else:")
        with writer.block():
            shared = f"_pshared{index}"
            writer.emit(f"{shared} = _ReproShared()")
            written = list(info.written_arrays)
            for name in written:
                writer.emit(f"{name} = {shared}.share({name})")
            partials = {}
            for name, operator in info.reductions:
                slot = f"_partial{index}_{name}"
                partials[name] = slot
                dtype = self.sdfg.arrays[name].dtype
                identity = _reduction_identity(operator, dtype)
                writer.emit(
                    f"{slot} = {shared}.partials(len({chunks}), "
                    f"{_NUMPY_DTYPES[dtype]}, {identity})"
                )
            body = f"_pbody{index}"
            writer.emit(f"def {body}(_pindex, _plow, _phigh):")
            with writer.block():
                for name, operator in info.reductions:
                    dtype = self.sdfg.arrays[name].dtype
                    writer.emit(f"{name} = {_reduction_identity(operator, dtype)}")
                writer.emit(f"for {params[0]} in range(_plow, _phigh, {step}):")
                writer.indent += 1
                for param, rng in zip(params[1:], ranges[1:]):
                    writer.emit(
                        f"for {param} in range(int({python_expr(rng.start)}), "
                        f"int({python_expr(rng.end)}), int({python_expr(rng.step)})):"
                    )
                    writer.indent += 1
                if not members:
                    writer.emit("pass")
                for node in members:
                    self._emit_scope_member(state, node, scope, dict(value_names), vector_param=None)
                for _ in params:
                    writer.indent -= 1
                for name, _ in info.reductions:
                    writer.emit(f"{partials[name]}[_pindex] = {name}")
            procs = f"_pprocs{index}"
            writer.emit(f"{procs} = []")
            writer.emit(f"for _pindex, (_plow, _phigh) in enumerate({chunks}):")
            with writer.block():
                writer.emit(
                    f"_proc = _repro_ctx.Process(target={body}, "
                    "args=(_pindex, int(_plow), int(_phigh)))"
                )
                writer.emit("_proc.start()")
                writer.emit(f"{procs}.append(_proc)")
            writer.emit(f"for _proc in {procs}:")
            with writer.block():
                writer.emit("_proc.join()")
                writer.emit("if _proc.exitcode != 0:")
                with writer.block():
                    writer.emit(
                        "raise RuntimeError('parallel map worker failed "
                        "(exit code %r)' % (_proc.exitcode,))"
                    )
            for name, operator in info.reductions:
                writer.emit(_REDUCTION_COMBINE[operator].format(name=name, partials=partials[name]))
                writer.emit(f"{partials[name]} = None")
            if written:
                targets = ", ".join(written) + ("," if len(written) == 1 else "")
                writer.emit(f"{targets} = {shared}.restore()")
            else:
                writer.emit(f"{shared}.restore()")

    def _emit_scope_member(self, state, node, scope, value_names, vector_param) -> None:
        if isinstance(node, Tasklet):
            self._emit_tasklet(state, node, value_names, vector_param)
        elif isinstance(node, MapEntry):
            self._emit_map(state, node, scope, value_names)
        elif isinstance(node, AccessNode):
            self._emit_access_copies(state, node, value_names)

    def _vectorizable(self, state, entry: MapEntry, members) -> bool:
        return vectorizable_map(state, entry, members)

    # -- subset rendering ----------------------------------------------------------------------------
    @staticmethod
    def _subset_index(subset: Subset) -> str:
        return ", ".join(python_expr(index) for index in subset.indices())

    @staticmethod
    def _subset_slices(subset: Subset) -> str:
        pieces = []
        for rng in subset.ranges:
            if rng.is_point():
                pieces.append(python_expr(rng.start))
            else:
                piece = f"int({python_expr(rng.start)}):int({python_expr(rng.end)})"
                if str(rng.step) != "1":
                    piece += f":int({python_expr(rng.step)})"
                pieces.append(piece)
        return ", ".join(pieces)

    def _covers_whole(self, descriptor, subset: Subset) -> bool:
        if len(descriptor.shape) != subset.dims:
            return False
        full = Subset.full(descriptor.shape)
        covered = subset.covers(full)
        return bool(covered)


@dataclass
class CompiledSDFG:
    """An executable program generated from an SDFG."""

    sdfg: Optional[SDFG]
    code: str
    _function: object = field(repr=False, default=None)

    def __call__(self, **kwargs):
        return self._function(**kwargs)

    def run(self, **kwargs):
        return self._function(**kwargs)

    @classmethod
    def from_code(cls, code: str, sdfg: Optional[SDFG] = None, name: str = "cached") -> "CompiledSDFG":
        """Rehydrate an executable from previously generated code.

        The SDFG is optional: the code string is self-contained, so cache
        layers can persist it alone and reload without any IR.
        """
        return cls(sdfg=sdfg, code=code, _function=load_entry(code, filename=f"<sdfg:{name}>"))


def generate_code(sdfg: SDFG, vectorize: bool = False) -> str:
    """Generate Python source implementing ``sdfg``."""
    return SDFGPythonGenerator(sdfg, vectorize=vectorize).generate()


def compile_sdfg(sdfg: SDFG, vectorize: bool = False) -> CompiledSDFG:
    """Generate and load an executable program for ``sdfg``."""
    code = generate_code(sdfg, vectorize=vectorize)
    return CompiledSDFG.from_code(code, sdfg=sdfg, name=sdfg.name)
