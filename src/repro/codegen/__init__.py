"""Code generation backends and the data-movement cost model."""

from .control_flow import (
    BranchNode,
    ControlFlowBuilder,
    DispatchNode,
    LoopNode,
    SequenceNode,
    StateNode,
    build_control_flow,
    states_in_tree,
)
from .cost_model import (
    ALLOCATION_COST_BYTES,
    ITERATION_COST_BYTES,
    MovementReport,
    movement_score,
    sdfg_movement_report,
    sdfg_score,
)
from .loader import ProgramLoadError, load_entry
from .mlir_python import CompiledMLIR, MLIRCodegenError, compile_mlir, generate_mlir_code
from .sdfg_c import NativeCodegenError, SDFGCGenerator, c_symbolic, generate_c_code
from .sdfg_python import (
    CodegenError,
    CompiledSDFG,
    SDFGPythonGenerator,
    compile_sdfg,
    generate_code,
    vectorizable_map,
    python_expr,
)
from .toolchain import (
    CompiledNative,
    ToolchainError,
    compile_shared,
    find_compiler,
    have_compiler,
)

__all__ = [
    "ALLOCATION_COST_BYTES",
    "ITERATION_COST_BYTES",
    "BranchNode",
    "CodegenError",
    "CompiledMLIR",
    "CompiledNative",
    "CompiledSDFG",
    "ControlFlowBuilder",
    "DispatchNode",
    "LoopNode",
    "MLIRCodegenError",
    "MovementReport",
    "NativeCodegenError",
    "ProgramLoadError",
    "SDFGCGenerator",
    "SDFGPythonGenerator",
    "SequenceNode",
    "StateNode",
    "ToolchainError",
    "build_control_flow",
    "c_symbolic",
    "compile_mlir",
    "compile_sdfg",
    "compile_shared",
    "find_compiler",
    "generate_c_code",
    "generate_code",
    "have_compiler",
    "vectorizable_map",
    "generate_mlir_code",
    "load_entry",
    "movement_score",
    "python_expr",
    "sdfg_movement_report",
    "sdfg_score",
    "states_in_tree",
]
