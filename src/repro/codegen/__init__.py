"""Code generation backends and the data-movement cost model."""

from .control_flow import (
    BranchNode,
    ControlFlowBuilder,
    DispatchNode,
    LoopNode,
    SequenceNode,
    StateNode,
    build_control_flow,
    states_in_tree,
)
from .cost_model import (
    ALLOCATION_COST_BYTES,
    ITERATION_COST_BYTES,
    MovementReport,
    movement_score,
    sdfg_movement_report,
    sdfg_score,
)
from .loader import ProgramLoadError, load_entry
from .mlir_python import CompiledMLIR, MLIRCodegenError, compile_mlir, generate_mlir_code
from .sdfg_python import (
    CodegenError,
    CompiledSDFG,
    SDFGPythonGenerator,
    compile_sdfg,
    generate_code,
    vectorizable_map,
    python_expr,
)

__all__ = [
    "ALLOCATION_COST_BYTES",
    "ITERATION_COST_BYTES",
    "BranchNode",
    "CodegenError",
    "CompiledMLIR",
    "CompiledSDFG",
    "ControlFlowBuilder",
    "DispatchNode",
    "LoopNode",
    "MLIRCodegenError",
    "MovementReport",
    "ProgramLoadError",
    "SDFGPythonGenerator",
    "SequenceNode",
    "StateNode",
    "build_control_flow",
    "compile_mlir",
    "compile_sdfg",
    "generate_code",
    "vectorizable_map",
    "generate_mlir_code",
    "load_entry",
    "movement_score",
    "python_expr",
    "sdfg_movement_report",
    "sdfg_score",
    "states_in_tree",
]
