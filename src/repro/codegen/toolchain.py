"""System-compiler toolchain for the native SDFG backend.

The native backend splits work the same way the Python backend does: code
*emission* (:mod:`repro.codegen.sdfg_c`) is pure and cacheable, while this
module turns emitted C into a live callable — find a system compiler,
build a shared object, load it through :mod:`ctypes` and wrap it behind
the same ``run(**kwargs) -> dict`` calling convention the interpreted
backend uses, so every consumer (timing loop, differential checks, the
tuner) is backend-agnostic.

Shared objects are cached on disk keyed by the SHA-256 of the C source
(plus compiler identity and flags), so re-running a cached compilation is
pure reuse: no ``cc`` process is spawned.  The ``REPRO_CC`` environment
variable overrides compiler discovery; pointing it at a non-existent
path simulates a machine without a compiler (the graceful-degradation
tests do exactly that).
"""

from __future__ import annotations

import ctypes
import hashlib
import json
import os
import re
import shutil
import subprocess
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from ..perf import PERF
from ..sdfg.data import DTYPES
from ..symbolic import sympify

#: Environment variable naming (or stubbing away) the C compiler.
CC_ENV = "REPRO_CC"

#: Environment variable overriding the shared-object cache directory.
NATIVE_CACHE_ENV = "REPRO_NATIVE_CACHE_DIR"

#: Flags used for every native build (part of the .so cache key).
CFLAGS = ("-std=c11", "-O2", "-fPIC", "-shared")

#: Marker line embedding the ABI description in generated C source.
ABI_MARKER = "REPRO-NATIVE-ABI:"


class ToolchainError(Exception):
    """Raised when C source cannot be compiled or loaded natively."""


def find_compiler() -> Optional[str]:
    """Path of the system C compiler, or None when there is none.

    ``REPRO_CC`` wins when set (even if it names a missing file — that is
    the supported way to simulate a compiler-less machine); otherwise the
    first of ``cc``/``gcc``/``clang`` found on PATH.
    """
    override = os.environ.get(CC_ENV)
    if override:
        path = shutil.which(override) or (override if os.access(override, os.X_OK) else None)
        return path
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def have_compiler() -> bool:
    """Whether a usable system C compiler is available."""
    return find_compiler() is not None


def native_cache_dir() -> Path:
    """Directory holding compiled shared objects (created on demand)."""
    override = os.environ.get(NATIVE_CACHE_ENV)
    if override:
        return Path(override)
    base = os.environ.get("REPRO_CACHE_DIR")
    if base:
        return Path(base) / "native"
    return Path(tempfile.gettempdir()) / f"repro-native-{os.getuid()}"


def _source_digest(code: str, compiler: str) -> str:
    basis = json.dumps(
        {"code": code, "compiler": os.path.basename(compiler), "flags": CFLAGS},
        sort_keys=True,
    )
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()


def compile_shared(code: str, name: str = "program") -> Path:
    """Compile C source to a cached shared object; return its path.

    Cache hits (same source, compiler and flags) spawn no compiler
    process — the ``toolchain.so_cache_hits`` profiler counter records
    them, ``toolchain.cc_runs`` records actual builds.
    """
    compiler = find_compiler()
    if compiler is None:
        configured = os.environ.get(CC_ENV)
        detail = (
            f"{CC_ENV}={configured!r} does not name an executable compiler"
            if configured
            else "no 'cc', 'gcc' or 'clang' found on PATH"
        )
        raise ToolchainError(f"No C compiler available ({detail})")
    directory = native_cache_dir()
    digest = _source_digest(code, compiler)
    library = directory / f"{name}-{digest[:16]}.so"
    if library.exists():
        PERF.increment("toolchain.so_cache_hits")
        return library
    PERF.increment("toolchain.cc_runs")
    directory.mkdir(parents=True, exist_ok=True)
    source_path = directory / f".{library.stem}.{os.getpid()}.c"
    scratch = directory / f".{library.name}.{os.getpid()}.tmp"
    try:
        source_path.write_text(code, encoding="utf-8")
        command = [compiler, *CFLAGS, "-o", str(scratch), str(source_path), "-lm"]
        proc = subprocess.run(command, capture_output=True, text=True)
        if proc.returncode != 0:
            raise ToolchainError(
                f"C compiler failed ({' '.join(command)}):\n{proc.stderr.strip()}"
            )
        scratch.replace(library)  # atomic: concurrent builders see old or new
    finally:
        for leftover in (source_path, scratch):
            try:
                leftover.unlink()
            except OSError:
                pass
    return library


def parse_abi(code: str) -> Dict:
    """Extract the embedded ABI description from generated C source."""
    for line in code.splitlines():
        marker = line.find(ABI_MARKER)
        if marker >= 0:
            text = line[marker + len(ABI_MARKER):].strip().rstrip("*/").strip()
            try:
                return json.loads(text)
            except ValueError as exc:
                raise ToolchainError(f"Malformed native ABI header: {exc}") from exc
    raise ToolchainError("Generated C source carries no native ABI header")


def _evaluate_shape(dims: List[str], env: Dict[str, float]) -> tuple:
    return tuple(int(sympify(dim).evaluate(dict(env))) for dim in dims)


@dataclass
class CompiledNative:
    """A natively compiled SDFG program behind the interpreted calling convention.

    Like :class:`~repro.codegen.sdfg_python.CompiledSDFG`, the code string
    is the whole artifact: :meth:`from_code` rehydrates a live callable
    from cached C source alone, using the ABI header the code generator
    embedded (interface containers, free symbols, constants) to rebuild
    the ctypes marshalling layer without any IR.
    """

    code: str
    abi: Dict
    library: Path
    _function: object = field(repr=False, default=None)

    def __call__(self, **kwargs):
        return self.run(**kwargs)

    @classmethod
    def from_code(cls, code: str, name: str = "program") -> "CompiledNative":
        """Compile (or reuse the cached .so for) generated C and load it."""
        abi = parse_abi(code)
        safe = re.sub(r"[^A-Za-z0-9_.-]", "_", str(abi.get("name") or name))
        library = compile_shared(code, name=safe)
        handle = ctypes.CDLL(str(library))
        try:
            function = getattr(handle, abi["entry"])
        except AttributeError as exc:
            raise ToolchainError(
                f"Shared object {library} exports no {abi['entry']!r} symbol"
            ) from exc
        function.restype = None
        return cls(code=code, abi=abi, library=library, _function=function)

    # -- the interpreted-backend calling convention -----------------------------------
    def run(self, **kwargs) -> Dict:
        """Execute the native program; returns the same dict shape as the
        interpreted backend (``__allocations`` plus every interface
        container), so results are directly comparable."""
        abi = self.abi
        symbol_values = {name: int(kwargs[name]) for name in abi["symbols"]}
        env = {**abi.get("constants", {}), **symbol_values}
        argv = []
        arrays = []  # (name, caller object, marshalled buffer)
        cells = []  # (name, dtype, ctypes cell)
        for arg in abi["args"]:
            info = DTYPES[arg["dtype"]]
            if arg["kind"] == "array":
                dtype = np.dtype(info.numpy_name)
                if arg["transient"]:
                    # Wrapper-allocated output (a transient in return_values):
                    # the interpreted backend allocates it inside run().
                    original = buffer = np.empty(_evaluate_shape(arg["shape"], env), dtype)
                else:
                    original = kwargs[arg["name"]]
                    buffer = np.ascontiguousarray(original, dtype=dtype)
                argv.append(ctypes.c_void_p(buffer.ctypes.data))
                arrays.append((arg["name"], original, buffer))
            else:
                default = 0.0 if arg["dtype"].startswith("float") else 0
                initial = 0 if arg["transient"] else kwargs.get(arg["name"], default)
                cell = getattr(ctypes, info.ctypes_name)(initial)
                argv.append(ctypes.byref(cell))
                cells.append((arg["name"], arg["dtype"], cell))
        argv.extend(ctypes.c_int64(symbol_values[name]) for name in abi["symbols"])
        allocations = ctypes.c_int64(0)
        argv.append(ctypes.byref(allocations))
        self._function(*argv)
        outputs: Dict = {"__allocations": int(allocations.value)}
        for name, original, buffer in arrays:
            if buffer is not original and isinstance(original, np.ndarray):
                # The marshalling copy must not hide in-place mutation from
                # the caller (the interpreted backend writes through).
                original[...] = buffer
                outputs[name] = original
            else:
                outputs[name] = buffer
        for name, dtype, cell in cells:
            value = cell.value
            outputs[name] = float(value) if dtype.startswith("float") else int(value)
        return outputs
