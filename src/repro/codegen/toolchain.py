"""System-compiler toolchain for the native SDFG backend.

The native backend splits work the same way the Python backend does: code
*emission* (:mod:`repro.codegen.sdfg_c`) is pure and cacheable, while this
module turns emitted C into a live callable — find a system compiler,
build a shared object, load it through :mod:`ctypes` and wrap it behind
the same ``run(**kwargs) -> dict`` calling convention the interpreted
backend uses, so every consumer (timing loop, differential checks, the
tuner) is backend-agnostic.

Shared objects are cached on disk keyed by the SHA-256 of the C source
(plus compiler identity and flags), so re-running a cached compilation is
pure reuse: no ``cc`` process is spawned.  The ``REPRO_CC`` environment
variable overrides compiler discovery; pointing it at a non-existent
path simulates a machine without a compiler (the graceful-degradation
tests do exactly that).

Every external wait here is bounded and every failure typed: the
compiler runs in its own process group under a deadline
(``REPRO_CC_TIMEOUT``, default 120s; on expiry the whole group is
SIGKILLed and :class:`~repro.errors.CompileTimeout` raised, so a hung
``cc`` can never wedge a compile), a compiler killed by a signal raises
:class:`~repro.errors.ToolchainCrash` (transient — the source is not at
fault), and transient failures are retried under a
:class:`~repro.service.resilience.RetryPolicy` with deterministic
backoff.  A cached ``.so`` that fails to ``dlopen`` (truncated or
garbled on disk) is quarantined and rebuilt once before
:class:`~repro.errors.CacheCorruption` is raised.
"""

from __future__ import annotations

import ctypes
import hashlib
import json
import os
import re
import shutil
import signal
import subprocess
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from ..errors import CacheCorruption, CompileTimeout, ToolchainCrash, ToolchainError
from ..perf import PERF
from ..sdfg.data import DTYPES
from ..symbolic import sympify

#: Environment variable naming (or stubbing away) the C compiler.
CC_ENV = "REPRO_CC"

#: Environment variable overriding the shared-object cache directory.
NATIVE_CACHE_ENV = "REPRO_NATIVE_CACHE_DIR"

#: Environment variable overriding the compiler-process deadline
#: (seconds; values <= 0 disable the timeout entirely).
CC_TIMEOUT_ENV = "REPRO_CC_TIMEOUT"

#: Default compiler-process deadline.  Generous — our translation units
#: compile in milliseconds — because its job is to bound *hangs*, not to
#: race healthy builds.
DEFAULT_CC_TIMEOUT = 120.0

#: Flags used for every native build (part of the .so cache key).
CFLAGS = ("-std=c11", "-O2", "-fPIC", "-shared")

#: Extra flag appended when (and only when) the source contains OpenMP
#: pragmas and the compiler is known to support them.
OPENMP_FLAG = "-fopenmp"

#: Marker line embedding the ABI description in generated C source.
ABI_MARKER = "REPRO-NATIVE-ABI:"

#: Deadline for one-shot feature probes (``--version``, the OpenMP test
#: compile).  Probes are best-effort: expiry or failure records "feature
#: absent" rather than raising.
PROBE_TIMEOUT = 10.0

def cc_timeout() -> Optional[float]:
    """The compiler-process deadline in seconds (None: disabled)."""
    raw = os.environ.get(CC_TIMEOUT_ENV)
    if raw is None or raw == "":
        return DEFAULT_CC_TIMEOUT
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_CC_TIMEOUT
    return value if value > 0 else None


def find_compiler() -> Optional[str]:
    """Path of the system C compiler, or None when there is none.

    ``REPRO_CC`` wins when set (even if it names a missing file — that is
    the supported way to simulate a compiler-less machine); otherwise the
    first of ``cc``/``gcc``/``clang`` found on PATH.
    """
    override = os.environ.get(CC_ENV)
    if override:
        path = shutil.which(override) or (override if os.access(override, os.X_OK) else None)
        return path
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def have_compiler() -> bool:
    """Whether a usable system C compiler is available."""
    return find_compiler() is not None


@dataclass(frozen=True)
class CompilerFeatures:
    """Once-per-process feature record for one compiler executable."""

    #: Absolute path of the probed compiler.
    path: str
    #: First line of ``--version`` output (None when the probe failed).
    version: Optional[str]
    #: Whether an OpenMP test compile with ``-fopenmp`` succeeded; None
    #: until something asks for an OpenMP build (the probe is lazy so
    #: plain sequential compiles never spawn extra compiler processes —
    #: fault-injection stubs see exactly the calls they always saw).
    openmp: Optional[bool]


#: Probe results memoized per compiler path for the process lifetime.
_VERSIONS: Dict[str, Optional[str]] = {}
_OPENMP: Dict[str, bool] = {}


def _probe_version(compiler: str) -> Optional[str]:
    PERF.increment("toolchain.feature_probes")
    try:
        proc = subprocess.run(
            [compiler, "--version"],
            capture_output=True, text=True, timeout=PROBE_TIMEOUT,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    lines = (proc.stdout or "").splitlines()
    return lines[0].strip() if lines else None


_OPENMP_PROBE_SOURCE = """\
#ifdef _OPENMP
#include <omp.h>
int main(void) { return omp_get_max_threads() > 0 ? 0 : 1; }
#else
#error OpenMP not enabled
#endif
"""


def _probe_openmp(compiler: str) -> bool:
    PERF.increment("toolchain.feature_probes")
    with tempfile.TemporaryDirectory(prefix="repro-omp-probe-") as scratch:
        source = Path(scratch) / "probe.c"
        binary = Path(scratch) / "probe.bin"
        source.write_text(_OPENMP_PROBE_SOURCE, encoding="utf-8")
        try:
            proc = subprocess.run(
                [compiler, OPENMP_FLAG, str(source), "-o", str(binary)],
                capture_output=True, timeout=PROBE_TIMEOUT,
            )
        except (OSError, subprocess.SubprocessError):
            return False
        return proc.returncode == 0


def compiler_features(
    compiler: Optional[str] = None, probe_openmp: bool = False,
) -> Optional[CompilerFeatures]:
    """Feature record of ``compiler`` (default: the discovered one).

    Each fact is probed at most once per process and per compiler path:
    the version on the first call, OpenMP support on the first call with
    ``probe_openmp=True`` (OpenMP builds and bench metadata ask; plain
    sequential compiles never do).  Returns None without a compiler.
    """
    if compiler is None:
        compiler = find_compiler()
        if compiler is None:
            return None
    if compiler not in _VERSIONS:
        _VERSIONS[compiler] = _probe_version(compiler)
    if probe_openmp and compiler not in _OPENMP:
        supported = _probe_openmp(compiler)
        _OPENMP[compiler] = supported
        if supported:
            PERF.increment("toolchain.openmp_supported")
    return CompilerFeatures(
        path=compiler,
        version=_VERSIONS[compiler],
        openmp=_OPENMP.get(compiler),
    )


def have_openmp() -> bool:
    """Whether the discovered compiler accepts ``-fopenmp`` (probed once)."""
    features = compiler_features(probe_openmp=True)
    return bool(features and features.openmp)


def native_cache_dir() -> Path:
    """Directory holding compiled shared objects (created on demand)."""
    override = os.environ.get(NATIVE_CACHE_ENV)
    if override:
        return Path(override)
    base = os.environ.get("REPRO_CACHE_DIR")
    if base:
        return Path(base) / "native"
    return Path(tempfile.gettempdir()) / f"repro-native-{os.getuid()}"


def _source_digest(code: str, compiler: str, flags: tuple = CFLAGS) -> str:
    basis = json.dumps(
        {"code": code, "compiler": os.path.basename(compiler), "flags": flags},
        sort_keys=True,
    )
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()


def _run_compiler(command: List[str], timeout: Optional[float]) -> None:
    """Spawn the compiler in its own process group under a deadline.

    ``subprocess.run(timeout=)`` only kills the direct child; compiler
    drivers fork (cc → cc1 → as), so on expiry the whole process group
    is SIGKILLed — a hung compiler can never wedge a compile, and never
    leaks grandchildren either.
    """
    proc = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        start_new_session=True,  # own process group: killable as a unit
    )
    try:
        _, stderr = proc.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        try:
            os.killpg(proc.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError, OSError):
            proc.kill()
        proc.wait()
        PERF.increment("toolchain.cc_timeouts")
        raise CompileTimeout(
            f"C compiler timed out after {timeout:g}s ({' '.join(command)})",
            seconds=timeout,
        )
    if proc.returncode == 0:
        return
    if proc.returncode < 0:
        # Killed by a signal (OOM, SIGSEGV in the compiler itself): says
        # nothing about the source, so the failure is transient.
        PERF.increment("toolchain.cc_crashes")
        raise ToolchainCrash(
            f"C compiler killed by signal {-proc.returncode} ({' '.join(command)})",
            returncode=proc.returncode,
        )
    raise ToolchainError(
        f"C compiler failed ({' '.join(command)}):\n{(stderr or '').strip()}"
    )


def compile_shared(
    code: str,
    name: str = "program",
    timeout: Optional[float] = None,
    retry: Optional["object"] = None,
) -> Path:
    """Compile C source to a cached shared object; return its path.

    Cache hits (same source, compiler and flags) spawn no compiler
    process — the ``toolchain.so_cache_hits`` profiler counter records
    them, ``toolchain.cc_runs`` records actual builds.

    ``timeout`` bounds the compiler process (default: ``REPRO_CC_TIMEOUT``
    or 120s); expiry kills the compiler's whole process group and raises
    :class:`~repro.errors.CompileTimeout`.  ``retry`` is a
    :class:`~repro.service.resilience.RetryPolicy` applied to transient
    failures only (timeouts, signal-killed compilers — never diagnosed
    compile errors); the default comes from the ``REPRO_MAX_ATTEMPTS``/
    ``REPRO_RETRY_BACKOFF`` environment knobs.
    """
    compiler = find_compiler()
    if compiler is None:
        configured = os.environ.get(CC_ENV)
        detail = (
            f"{CC_ENV}={configured!r} does not name an executable compiler"
            if configured
            else "no 'cc', 'gcc' or 'clang' found on PATH"
        )
        raise ToolchainError(f"No C compiler available ({detail})")
    flags = CFLAGS
    if "#pragma omp" in code:
        # OpenMP build: add -fopenmp only when the (once-per-process)
        # feature probe says the compiler accepts it.  Without support
        # the pragmas compile as no-ops — a clean sequential fallback.
        features = compiler_features(compiler, probe_openmp=True)
        if features is not None and features.openmp:
            flags = CFLAGS + (OPENMP_FLAG,)
    directory = native_cache_dir()
    digest = _source_digest(code, compiler, flags)
    library = directory / f"{name}-{digest[:16]}.so"
    if library.exists():
        PERF.increment("toolchain.so_cache_hits")
        return library
    if timeout is None:
        timeout = cc_timeout()
    if retry is None:
        # Lazy import: codegen must not import the service package at
        # module load (service → pipeline → codegen would cycle).
        from ..service.resilience import RetryPolicy

        retry = RetryPolicy.from_env()

    def build() -> None:
        from ..faults import active_plan

        plan = active_plan()
        if plan is not None:
            plan.cc_fault(timeout)  # injected hang/crash, at the real seam
        PERF.increment("toolchain.cc_runs")
        directory.mkdir(parents=True, exist_ok=True)
        source_path = directory / f".{library.stem}.{os.getpid()}.c"
        scratch = directory / f".{library.name}.{os.getpid()}.tmp"
        try:
            source_path.write_text(code, encoding="utf-8")
            command = [compiler, *flags, "-o", str(scratch), str(source_path), "-lm"]
            _run_compiler(command, timeout)
            scratch.replace(library)  # atomic: concurrent builders see old or new
        finally:
            for leftover in (source_path, scratch):
                try:
                    leftover.unlink()
                except OSError:
                    pass

    _, attempts = retry.run(build, describe=f"native build of {name}")
    if attempts > 1:
        PERF.increment("toolchain.cc_retries", attempts - 1)
    return library


def parse_abi(code: str) -> Dict:
    """Extract the embedded ABI description from generated C source."""
    for line in code.splitlines():
        marker = line.find(ABI_MARKER)
        if marker >= 0:
            text = line[marker + len(ABI_MARKER):].strip().rstrip("*/").strip()
            try:
                return json.loads(text)
            except ValueError as exc:
                raise ToolchainError(f"Malformed native ABI header: {exc}") from exc
    raise ToolchainError("Generated C source carries no native ABI header")


def _evaluate_shape(dims: List[str], env: Dict[str, float]) -> tuple:
    return tuple(int(sympify(dim).evaluate(dict(env))) for dim in dims)


@dataclass
class CompiledNative:
    """A natively compiled SDFG program behind the interpreted calling convention.

    Like :class:`~repro.codegen.sdfg_python.CompiledSDFG`, the code string
    is the whole artifact: :meth:`from_code` rehydrates a live callable
    from cached C source alone, using the ABI header the code generator
    embedded (interface containers, free symbols, constants) to rebuild
    the ctypes marshalling layer without any IR.
    """

    code: str
    abi: Dict
    library: Path
    _function: object = field(repr=False, default=None)

    def __call__(self, **kwargs):
        return self.run(**kwargs)

    @classmethod
    def from_code(
        cls,
        code: str,
        name: str = "program",
        timeout: Optional[float] = None,
        retry: Optional[object] = None,
    ) -> "CompiledNative":
        """Compile (or reuse the cached .so for) generated C and load it.

        A cached shared object that fails to ``dlopen`` (truncated or
        garbled by a killed writer or a bad disk) is quarantined
        (unlinked, counted under ``toolchain.so_corrupt_evicted``) and
        rebuilt from source once — self-healing, exactly like the
        compile cache.  A rebuild that *still* cannot be loaded raises
        :class:`~repro.errors.CacheCorruption`.
        """
        abi = parse_abi(code)
        safe = re.sub(r"[^A-Za-z0-9_.-]", "_", str(abi.get("name") or name))
        handle = None
        for attempt in (1, 2):
            library = compile_shared(code, name=safe, timeout=timeout, retry=retry)
            try:
                handle = ctypes.CDLL(str(library))
                break
            except OSError as exc:
                PERF.increment("toolchain.so_corrupt_evicted")
                try:
                    library.unlink()  # quarantine: force a rebuild
                except OSError:
                    pass
                if attempt == 2:
                    raise CacheCorruption(
                        f"Shared object {library} cannot be loaded even after a "
                        f"rebuild from source ({exc})"
                    ) from exc
        try:
            function = getattr(handle, abi["entry"])
        except AttributeError as exc:
            raise ToolchainError(
                f"Shared object {library} exports no {abi['entry']!r} symbol"
            ) from exc
        function.restype = None
        if "#pragma omp" in code:
            # Record what the (memoized) feature probe decided for this
            # OpenMP translation unit, so callers can tell a parallel
            # build from a pragma-ignoring sequential fallback.
            features = compiler_features(probe_openmp=True)
            if features is not None:
                abi["toolchain"] = {
                    "compiler": features.path,
                    "version": features.version,
                    "openmp": bool(features.openmp),
                }
        return cls(code=code, abi=abi, library=library, _function=function)

    # -- the interpreted-backend calling convention -----------------------------------
    def run(self, **kwargs) -> Dict:
        """Execute the native program; returns the same dict shape as the
        interpreted backend (``__allocations`` plus every interface
        container), so results are directly comparable."""
        abi = self.abi
        symbol_values = {name: int(kwargs[name]) for name in abi["symbols"]}
        env = {**abi.get("constants", {}), **symbol_values}
        argv = []
        arrays = []  # (name, caller object, marshalled buffer)
        cells = []  # (name, dtype, ctypes cell)
        for arg in abi["args"]:
            info = DTYPES[arg["dtype"]]
            if arg["kind"] == "array":
                dtype = np.dtype(info.numpy_name)
                if arg["transient"]:
                    # Wrapper-allocated output (a transient in return_values):
                    # the interpreted backend allocates it inside run().
                    original = buffer = np.empty(_evaluate_shape(arg["shape"], env), dtype)
                else:
                    original = kwargs[arg["name"]]
                    buffer = np.ascontiguousarray(original, dtype=dtype)
                argv.append(ctypes.c_void_p(buffer.ctypes.data))
                arrays.append((arg["name"], original, buffer))
            else:
                default = 0.0 if arg["dtype"].startswith("float") else 0
                initial = 0 if arg["transient"] else kwargs.get(arg["name"], default)
                cell = getattr(ctypes, info.ctypes_name)(initial)
                argv.append(ctypes.byref(cell))
                cells.append((arg["name"], arg["dtype"], cell))
        argv.extend(ctypes.c_int64(symbol_values[name]) for name in abi["symbols"])
        allocations = ctypes.c_int64(0)
        argv.append(ctypes.byref(allocations))
        self._function(*argv)
        outputs: Dict = {"__allocations": int(allocations.value)}
        for name, original, buffer in arrays:
            if buffer is not original and isinstance(original, np.ndarray):
                # The marshalling copy must not hide in-place mutation from
                # the caller (the interpreted backend writes through).
                original[...] = buffer
                outputs[name] = original
            else:
                outputs[name] = buffer
        for name, dtype, cell in cells:
            value = cell.value
            outputs[name] = float(value) if dtype.startswith("float") else int(value)
        return outputs
