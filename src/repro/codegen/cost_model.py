"""Data-movement cost model.

The paper explains performance differences through data movement (bytes
moved, allocations on the critical path, cache behaviour measured with
PAPI).  Native counters are not available here, so this module computes a
static movement report from the IR itself: per-state memlet volumes are
multiplied by the (symbolically evaluated) execution count of the state
derived from the structured control-flow tree, and allocations are counted
with the same multiplier.  The reports play the role of the paper's
performance-counter analysis when explaining *why* one pipeline is faster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..symbolic import Expr, Integer, SymbolicError
from ..sdfg import SDFG, AccessNode, SDFGState
from ..sdfg.data import Array, LIFETIME_PERSISTENT, Scalar
from ..sdfg.nodes import MapEntry
from .control_flow import (
    BranchNode,
    ControlFlowNode,
    DispatchNode,
    LoopNode,
    SequenceNode,
    StateNode,
    build_control_flow,
)


@dataclass
class MovementReport:
    """Aggregate data-movement statistics for one program."""

    elements_moved: float = 0.0
    bytes_moved: float = 0.0
    allocations: float = 0.0
    allocated_bytes: float = 0.0
    per_container: Dict[str, float] = field(default_factory=dict)

    def add(self, container: str, elements: float, element_bytes: int) -> None:
        self.elements_moved += elements
        self.bytes_moved += elements * element_bytes
        self.per_container[container] = self.per_container.get(container, 0.0) + elements

    def __str__(self) -> str:
        return (
            f"MovementReport(elements={self.elements_moved:.0f}, "
            f"bytes={self.bytes_moved:.0f}, allocations={self.allocations:.0f})"
        )


#: Bytes-equivalent cost charged per dynamic allocation by
#: :func:`movement_score` — allocations sit on the critical path (the paper's
#: §7 explanation for the `gcc`/`clang` gap), so a heap allocation is charged
#: like moving one cache line's worth of data.
ALLOCATION_COST_BYTES = 256.0


def movement_score(
    report: "MovementReport", allocation_cost_bytes: float = ALLOCATION_COST_BYTES
) -> float:
    """Scalar cost of a movement report — lower is better.

    The score is the modeled byte traffic plus an allocation penalty:
    ``bytes_moved + allocation_cost_bytes * allocations``.  It is a pure
    function of the report, hence deterministic, and *monotone* in data
    movement: adding any movement (e.g. a redundant copy state) or any
    allocation strictly increases it.  The auto-tuner's static evaluator
    ranks candidate pipelines by this number in place of measured runtime.
    """
    return float(report.bytes_moved + allocation_cost_bytes * report.allocations)


def sdfg_score(sdfg: SDFG, symbols: Optional[Mapping[str, float]] = None) -> float:
    """Static cost of an SDFG: :func:`movement_score` of its movement report."""
    return movement_score(sdfg_movement_report(sdfg, symbols))


def _evaluate(expression: Expr, symbols: Mapping[str, float], default: float = 1.0) -> float:
    try:
        return float(expression.evaluate(dict(symbols)))
    except (SymbolicError, TypeError, ValueError):
        return default


def sdfg_movement_report(sdfg: SDFG, symbols: Optional[Mapping[str, float]] = None) -> MovementReport:
    """Static data-movement report of an SDFG under given symbol values."""
    symbols = dict(symbols or {})
    symbols.update(sdfg.constants)
    report = MovementReport()
    tree = build_control_flow(sdfg)
    _walk(sdfg, tree, 1.0, symbols, report)
    return report


def _walk(sdfg: SDFG, node: ControlFlowNode, multiplier: float, symbols, report) -> None:
    if isinstance(node, SequenceNode):
        for child in node.children:
            _walk(sdfg, child, multiplier, symbols, report)
    elif isinstance(node, StateNode):
        _count_state(sdfg, node.state, multiplier, symbols, report)
    elif isinstance(node, LoopNode):
        trips = _loop_trip_count(sdfg, node, symbols)
        _count_state(sdfg, node.guard, multiplier * (trips + 1), symbols, report)
        _walk(sdfg, node.body, multiplier * trips, symbols, report)
    elif isinstance(node, BranchNode):
        # Both branches weighted by half (no branch-probability information).
        _walk(sdfg, node.then_body, multiplier * 0.5, symbols, report)
        _walk(sdfg, node.else_body, multiplier * 0.5, symbols, report)
    elif isinstance(node, DispatchNode):
        for state in node.states:
            _count_state(sdfg, state, multiplier, symbols, report)


def _loop_trip_count(sdfg: SDFG, node: LoopNode, symbols) -> float:
    from ..transforms.loop_analysis import find_loops

    for loop in find_loops(sdfg):
        if loop.guard is node.guard:
            trip = loop.trip_count()
            if trip is not None:
                return max(0.0, _evaluate(trip, symbols, default=1.0))
    return 1.0


def _count_state(sdfg: SDFG, state: SDFGState, multiplier: float, symbols, report: MovementReport) -> None:
    # Allocation cost: non-persistent transient arrays allocate on every
    # execution of the state that first touches them.
    for name in state.read_set() | state.write_set():
        descriptor = sdfg.arrays.get(name)
        if (
            isinstance(descriptor, Array)
            and descriptor.transient
            and descriptor.lifetime != LIFETIME_PERSISTENT
        ):
            report.allocations += multiplier
            report.allocated_bytes += multiplier * _evaluate(descriptor.size_in_bytes(), symbols)

    scope = state.scope_dict()
    for edge in state.edges():
        memlet = edge.data
        if memlet.is_empty or memlet.data is None:
            continue
        descriptor = sdfg.arrays.get(memlet.data)
        if descriptor is None:
            continue
        # Only count movement at container boundaries (edges touching access
        # nodes), once per edge, scaled by enclosing map ranges.
        if not isinstance(edge.src, AccessNode) and not isinstance(edge.dst, AccessNode):
            continue
        elements = _evaluate(memlet.volume, symbols, default=1.0)
        scale = multiplier
        entry = scope.get(edge.src) or scope.get(edge.dst)
        while entry is not None:
            for rng in entry.map.ranges:
                scale *= max(1.0, _evaluate(rng.num_elements(), symbols, default=1.0))
            entry = scope.get(entry)
        report.add(memlet.data, elements * scale, descriptor.element_bytes())

    # Persistent allocations are counted once, attributed to the start state.
    if state is sdfg.start_state:
        for name, descriptor in sdfg.arrays.items():
            if (
                isinstance(descriptor, Array)
                and descriptor.transient
                and descriptor.lifetime == LIFETIME_PERSISTENT
            ):
                report.allocations += 1
                report.allocated_bytes += _evaluate(descriptor.size_in_bytes(), symbols)
