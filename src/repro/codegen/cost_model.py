"""Data-movement cost model.

The paper explains performance differences through data movement (bytes
moved, allocations on the critical path, cache behaviour measured with
PAPI).  Native counters are not available here, so this module computes a
static movement report from the IR itself: per-state memlet volumes are
multiplied by the (symbolically evaluated) execution count of the state
derived from the structured control-flow tree, and allocations are counted
with the same multiplier.  The reports play the role of the paper's
performance-counter analysis when explaining *why* one pipeline is faster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..symbolic import Expr, Integer, SymbolicError
from ..sdfg import SDFG, AccessNode, SDFGState
from ..sdfg.data import Array, LIFETIME_PERSISTENT, Scalar
from ..sdfg.nodes import MapEntry, SCHEDULE_PARALLEL
from ..sdfg.parallelism import default_workers
from .control_flow import (
    BranchNode,
    ControlFlowNode,
    DispatchNode,
    LoopNode,
    SequenceNode,
    StateNode,
    build_control_flow,
)


@dataclass
class MovementReport:
    """Aggregate data-movement statistics for one program.

    ``iterations`` models dynamic loop overhead: the total number of
    innermost-body executions of state-machine loops *and* map scopes.  A
    map annotated for vector emission (``Vectorization``) executes its
    body as one vector operation, so it contributes 1 per dynamic
    execution instead of its range product — which is how the static
    model scores tiled/vectorized schedules differently from their scalar
    originals despite identical byte traffic.
    """

    elements_moved: float = 0.0
    bytes_moved: float = 0.0
    allocations: float = 0.0
    allocated_bytes: float = 0.0
    iterations: float = 0.0
    per_container: Dict[str, float] = field(default_factory=dict)

    def add(self, container: str, elements: float, element_bytes: int) -> None:
        self.elements_moved += elements
        self.bytes_moved += elements * element_bytes
        self.per_container[container] = self.per_container.get(container, 0.0) + elements

    def __str__(self) -> str:
        return (
            f"MovementReport(elements={self.elements_moved:.0f}, "
            f"bytes={self.bytes_moved:.0f}, allocations={self.allocations:.0f}, "
            f"iterations={self.iterations:.0f})"
        )


#: Bytes-equivalent cost charged per dynamic allocation by
#: :func:`movement_score` — allocations sit on the critical path (the paper's
#: §7 explanation for the `gcc`/`clang` gap), so a heap allocation is charged
#: like moving one cache line's worth of data.
ALLOCATION_COST_BYTES = 256.0

#: Bytes-equivalent cost charged per dynamic loop/map iteration by
#: :func:`movement_score` — loop bookkeeping (index arithmetic, branch)
#: costs roughly as much as moving a couple of bytes.  This is what makes
#: vector emission (one vector operation instead of N scalar iterations)
#: visible to the static evaluator.
ITERATION_COST_BYTES = 2.0

#: Iterations-equivalent fork/join overhead charged per dynamic execution
#: of a parallel-scheduled map scope.  Spawning and joining workers costs
#: real time regardless of the range, so a parallel schedule only wins in
#: the static model when the per-worker share of the body executions
#: shrinks by more than this constant — which is what keeps the tuner from
#: parallelizing tiny maps.
PARALLEL_FORK_JOIN_ITERATIONS = 512.0


def movement_score(
    report: "MovementReport",
    allocation_cost_bytes: float = ALLOCATION_COST_BYTES,
    iteration_cost_bytes: float = ITERATION_COST_BYTES,
) -> float:
    """Scalar cost of a movement report — lower is better.

    The score is the modeled byte traffic plus allocation and
    loop-overhead penalties: ``bytes_moved + allocation_cost_bytes *
    allocations + iteration_cost_bytes * iterations``.  It is a pure
    function of the report, hence deterministic, and *monotone* in data
    movement: adding any movement (e.g. a redundant copy state), any
    allocation or any loop iteration strictly increases it.  The
    auto-tuner's static evaluator ranks candidate pipelines by this
    number in place of measured runtime.
    """
    return float(
        report.bytes_moved
        + allocation_cost_bytes * report.allocations
        + iteration_cost_bytes * report.iterations
    )


def sdfg_score(sdfg: SDFG, symbols: Optional[Mapping[str, float]] = None) -> float:
    """Static cost of an SDFG: :func:`movement_score` of its movement report."""
    return movement_score(sdfg_movement_report(sdfg, symbols))


def _evaluate(expression: Expr, symbols: Mapping[str, float], default: float = 1.0) -> float:
    try:
        return float(expression.evaluate(dict(symbols)))
    except (SymbolicError, TypeError, ValueError):
        return default


def sdfg_movement_report(sdfg: SDFG, symbols: Optional[Mapping[str, float]] = None) -> MovementReport:
    """Static data-movement report of an SDFG under given symbol values."""
    symbols = dict(symbols or {})
    symbols.update(sdfg.constants)
    report = MovementReport()
    tree = build_control_flow(sdfg)
    _walk(sdfg, tree, 1.0, symbols, report)
    return report


def _walk(sdfg: SDFG, node: ControlFlowNode, multiplier: float, symbols, report) -> None:
    if isinstance(node, SequenceNode):
        for child in node.children:
            _walk(sdfg, child, multiplier, symbols, report)
    elif isinstance(node, StateNode):
        _count_state(sdfg, node.state, multiplier, symbols, report)
    elif isinstance(node, LoopNode):
        trips = _loop_trip_count(sdfg, node, symbols)
        report.iterations += multiplier * trips
        _count_state(sdfg, node.guard, multiplier * (trips + 1), symbols, report)
        _walk(sdfg, node.body, multiplier * trips, symbols, report)
    elif isinstance(node, BranchNode):
        # Both branches weighted by half (no branch-probability information).
        _walk(sdfg, node.then_body, multiplier * 0.5, symbols, report)
        _walk(sdfg, node.else_body, multiplier * 0.5, symbols, report)
    elif isinstance(node, DispatchNode):
        for state in node.states:
            _count_state(sdfg, state, multiplier, symbols, report)


def _scope_context(scope, innermost, symbols) -> "Tuple[Dict[str, float], float]":
    """Bindings and iteration scale of an enclosing map-scope chain.

    Walks the scope chain outermost-first, multiplying each map's range
    product into the scale and binding its parameters to their range
    *starts* — so scope-dependent inner bounds (the ``[t, min(t + T, N))``
    ranges tiling creates) evaluate to their typical (first-tile) extent
    instead of silently defaulting to 1.
    """
    chain = []
    current = innermost
    while current is not None:
        chain.append(current)
        current = scope.get(current)
    bindings: Dict[str, float] = dict(symbols)
    scale = 1.0
    for entry in reversed(chain):
        for param, rng in zip(entry.map.params, entry.map.ranges):
            scale *= max(1.0, _evaluate(rng.num_elements(), bindings, default=1.0))
            bindings[param] = _evaluate(rng.start, bindings, default=0.0)
    return bindings, scale


def _map_body_executions(map_obj, symbols) -> float:
    """Dynamic body executions of one map scope per enclosing execution.

    The range product for scalar loops; 1 for maps annotated for vector
    emission (the body runs as a single vector operation).  A
    parallel-scheduled map charges the per-worker share of its body
    executions (its critical path) plus a fork/join constant — byte
    traffic is unchanged, since parallelism moves the same data.
    """
    if map_obj.vectorized:
        return 1.0
    product = 1.0
    for rng in map_obj.ranges:
        product *= max(1.0, _evaluate(rng.num_elements(), symbols, default=1.0))
    if map_obj.schedule == SCHEDULE_PARALLEL:
        workers = float(map_obj.n_threads or default_workers())
        return max(1.0, product / max(1.0, workers)) + PARALLEL_FORK_JOIN_ITERATIONS
    return product


def _loop_trip_count(sdfg: SDFG, node: LoopNode, symbols) -> float:
    from ..transforms.loop_analysis import find_loops

    for loop in find_loops(sdfg):
        if loop.guard is node.guard:
            trip = loop.trip_count()
            if trip is not None:
                return max(0.0, _evaluate(trip, symbols, default=1.0))
    return 1.0


def _count_state(sdfg: SDFG, state: SDFGState, multiplier: float, symbols, report: MovementReport) -> None:
    # Allocation cost: non-persistent transient arrays allocate on every
    # execution of the state that first touches them.
    for name in state.read_set() | state.write_set():
        descriptor = sdfg.arrays.get(name)
        if (
            isinstance(descriptor, Array)
            and descriptor.transient
            and descriptor.lifetime != LIFETIME_PERSISTENT
        ):
            report.allocations += multiplier
            report.allocated_bytes += multiplier * _evaluate(descriptor.size_in_bytes(), symbols)

    scope = state.scope_dict()

    # Loop overhead of map scopes: each map contributes its dynamic body
    # executions (own range product — or 1 per execution when annotated
    # for vector emission — times every enclosing scope's contribution).
    for entry in state.map_entries():
        bindings, scale = _scope_context(scope, scope.get(entry), symbols)
        report.iterations += multiplier * scale * _map_body_executions(entry.map, bindings)

    for edge in state.edges():
        memlet = edge.data
        if memlet.is_empty or memlet.data is None:
            continue
        descriptor = sdfg.arrays.get(memlet.data)
        if descriptor is None:
            continue
        # Only count movement at container boundaries (edges touching access
        # nodes), once per edge, scaled by enclosing map ranges.
        if not isinstance(edge.src, AccessNode) and not isinstance(edge.dst, AccessNode):
            continue
        # Scale by the scopes enclosing the *access-node* endpoint: a
        # boundary memlet's propagated volume already aggregates the
        # per-iteration traffic of the scope it crosses, so scaling it by
        # the code-side endpoint's scope would double-count (and make
        # strip-mining look like it reduced traffic).
        anchor = edge.src if isinstance(edge.src, AccessNode) else edge.dst
        bindings, scope_scale = _scope_context(scope, scope.get(anchor), symbols)
        elements = _evaluate(memlet.volume, bindings, default=1.0)
        report.add(memlet.data, elements * multiplier * scope_scale, descriptor.element_bytes())

    # Persistent allocations are counted once, attributed to the start state.
    if state is sdfg.start_state:
        for name, descriptor in sdfg.arrays.items():
            if (
                isinstance(descriptor, Array)
                and descriptor.transient
                and descriptor.lifetime == LIFETIME_PERSISTENT
            ):
                report.allocations += 1
                report.allocated_bytes += _evaluate(descriptor.size_in_bytes(), symbols)
