"""MLIR → executable Python code generation (baseline pipelines).

The control-centric pipelines (``gcc``, ``clang``, ``mlir``) never convert
to the SDFG IR; they execute the MLIR functions directly through this code
generator.  Two switches model the difference between a native compiler on
the original C and the Polygeist→MLIR→LLVM path the paper compares against
(§7.2, observation 3):

* ``native_scalars`` — promote one-element memrefs (Polygeist's
  representation of C scalars) to plain Python variables, as a register
  allocator would; the ``mlir`` pipeline keeps them as memory.
* ``preallocate`` — hoist all allocations to function entry, as a compiler
  with whole-function scope does; the ``mlir`` pipeline allocates where the
  ``memref.alloc`` op appears.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..dialects.arith import BINARY_PYTHON_OPERATORS, CMP_PYTHON_OPERATORS
from ..dialects.func import FuncOp
from ..dialects.math_dialect import MATH_PYTHON_FUNCTIONS
from ..dialects.scf import ForOp, IfOp, WhileOp
from ..ir.core import Operation, Value
from ..ir.types import DYNAMIC, FloatType, IndexType, IntegerType, MemRefType
from .loader import load_entry


class MLIRCodegenError(Exception):
    """Raised when an operation cannot be executed by the Python backend."""


_NUMPY_DTYPES = {
    "f64": "np.float64",
    "f32": "np.float32",
    "i64": "np.int64",
    "i32": "np.int32",
    "i1": "np.bool_",
    "index": "np.int64",
}


def _numpy_dtype(type_obj) -> str:
    return _NUMPY_DTYPES.get(str(type_obj), "np.float64")


class _Writer:
    def __init__(self):
        self.lines: List[str] = []
        self.indent = 1

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)


class MLIRPythonGenerator:
    """Generates Python code for one MLIR function."""

    def __init__(self, func_op: FuncOp, native_scalars: bool = True, preallocate: bool = True,
                 count_allocations: bool = True):
        self.func_op = func_op
        self.native_scalars = native_scalars
        self.preallocate = preallocate
        self.count_allocations = count_allocations
        self.writer = _Writer()
        self.names: Dict[Value, str] = {}
        self.scalar_cells: Dict[Value, str] = {}
        self._counter = 0
        self._prealloc_lines: List[str] = []

    # -- helpers --------------------------------------------------------------------
    def _name(self, value: Value) -> str:
        if value not in self.names:
            self.names[value] = f"v{self._counter}"
            self._counter += 1
        return self.names[value]

    def _is_scalar_cell(self, value: Value) -> bool:
        return self.native_scalars and isinstance(value.type, MemRefType) and \
            value.type.num_elements() == 1

    # -- entry ----------------------------------------------------------------------
    def generate(self) -> str:
        header = ["import math", "import numpy as np", "", "def run(**_args):"]
        writer = self.writer
        writer.emit("_alloc_count = 0")
        for argument in self.func_op.body.arguments:
            name = self._name(argument)
            arg_key = argument.name_hint or f"arg{argument.arg_index}"
            writer.emit(f"{name} = _args[{arg_key!r}]")
        self._emit_block(self.func_op.body)
        body_lines = writer.lines
        if self.preallocate and self._prealloc_lines:
            # Hoist allocations right after the argument bindings.
            arg_count = 1 + len(self.func_op.body.arguments)
            body_lines = body_lines[:arg_count] + self._prealloc_lines + body_lines[arg_count:]
        return "\n".join(header + body_lines) + "\n"

    # -- statements --------------------------------------------------------------------
    def _emit_block(self, block) -> None:
        for op in block.operations:
            self._emit_op(op)

    def _emit_op(self, op: Operation) -> None:
        writer = self.writer
        name = op.name
        if name == "arith.constant":
            writer.emit(f"{self._name(op.result)} = {op.attributes['value']!r}")
        elif name in BINARY_PYTHON_OPERATORS:
            operator = BINARY_PYTHON_OPERATORS[name]
            lhs, rhs = self._name(op.operand(0)), self._name(op.operand(1))
            if name in ("arith.divsi", "arith.remsi"):
                # C semantics: truncate towards zero.
                function = "int" if name == "arith.divsi" else "math.fmod"
                writer.emit(f"{self._name(op.result)} = int({function}({lhs} / {rhs}))"
                            if name == "arith.divsi"
                            else f"{self._name(op.result)} = int(math.fmod({lhs}, {rhs}))")
            else:
                writer.emit(f"{self._name(op.result)} = {lhs} {operator} {rhs}")
        elif name in ("arith.minsi", "arith.minf"):
            writer.emit(f"{self._name(op.result)} = min({self._name(op.operand(0))}, {self._name(op.operand(1))})")
        elif name in ("arith.maxsi", "arith.maxf"):
            writer.emit(f"{self._name(op.result)} = max({self._name(op.operand(0))}, {self._name(op.operand(1))})")
        elif name in ("arith.cmpi", "arith.cmpf"):
            predicate = CMP_PYTHON_OPERATORS[op.attributes["predicate"]]
            writer.emit(
                f"{self._name(op.result)} = {self._name(op.operand(0))} {predicate} "
                f"{self._name(op.operand(1))}"
            )
        elif name == "arith.select":
            writer.emit(
                f"{self._name(op.result)} = {self._name(op.operand(1))} if "
                f"{self._name(op.operand(0))} else {self._name(op.operand(2))}"
            )
        elif name == "arith.negf":
            writer.emit(f"{self._name(op.result)} = -{self._name(op.operand(0))}")
        elif name in ("arith.index_cast", "arith.extsi", "arith.trunci", "arith.fptosi"):
            writer.emit(f"{self._name(op.result)} = int({self._name(op.operand(0))})")
        elif name in ("arith.sitofp", "arith.extf", "arith.truncf"):
            writer.emit(f"{self._name(op.result)} = float({self._name(op.operand(0))})")
        elif name in MATH_PYTHON_FUNCTIONS:
            arguments = ", ".join(self._name(operand) for operand in op.operands)
            writer.emit(f"{self._name(op.result)} = {MATH_PYTHON_FUNCTIONS[name]}({arguments})")
        elif name in ("memref.alloc", "memref.alloca"):
            self._emit_alloc(op)
        elif name == "memref.load":
            self._emit_load(op)
        elif name == "memref.store":
            self._emit_store(op)
        elif name == "memref.copy":
            writer.emit(f"np.copyto({self._name(op.operand(1))}, {self._name(op.operand(0))})")
        elif name == "memref.dealloc":
            writer.emit("pass  # dealloc")
        elif name == "memref.dim":
            writer.emit(
                f"{self._name(op.result)} = {self._name(op.operand(0))}.shape"
                f"[{self._name(op.operand(1))}]"
            )
        elif name == "scf.for":
            self._emit_for(op)
        elif name == "scf.if":
            self._emit_if(op)
        elif name == "scf.while":
            self._emit_while(op)
        elif name in ("scf.yield", "scf.condition"):
            return
        elif name == "func.return":
            if op.operands:
                writer.emit(
                    f"return {{'__return': {self._name(op.operand(0))}, "
                    f"'__allocations': _alloc_count}}"
                )
            else:
                writer.emit("return {'__allocations': _alloc_count}")
        elif name == "func.call":
            raise MLIRCodegenError(
                f"Unexpected un-inlined call to {op.get_attr('callee')!r}"
            )
        else:
            raise MLIRCodegenError(f"Cannot generate Python for operation {name!r}")

    # -- memory -------------------------------------------------------------------------
    def _emit_alloc(self, op: Operation) -> None:
        memref_type: MemRefType = op.result.type
        if self._is_scalar_cell(op.result):
            default = "0.0" if isinstance(memref_type.element_type, FloatType) else "0"
            self.scalar_cells[op.result] = self._name(op.result)
            self.writer.emit(f"{self._name(op.result)} = {default}")
            return
        dynamic = [self._name(operand) for operand in op.operands]
        shape_parts: List[str] = []
        for dim in memref_type.shape:
            if dim == DYNAMIC:
                shape_parts.append(f"int({dynamic.pop(0)})")
            else:
                shape_parts.append(str(dim))
        line = (
            f"{self._name(op.result)} = np.empty(({', '.join(shape_parts)},), "
            f"dtype={_numpy_dtype(memref_type.element_type)})"
        )
        # Hoisting to function entry is only possible when the shape does not
        # depend on values computed later (static shapes); it only matters
        # for allocations sitting inside loops (indent > 1).
        hoistable = (
            self.preallocate
            and not memref_type.has_dynamic_dims
            and self.writer.indent > 1
        )
        if hoistable:
            indent = "    "
            self._prealloc_lines.append(indent + line)
            if self.count_allocations:
                self._prealloc_lines.append(indent + "_alloc_count += 1")
        else:
            self.writer.emit(line)
            if self.count_allocations:
                self.writer.emit("_alloc_count += 1")

    def _emit_load(self, op: Operation) -> None:
        memref = op.operand(0)
        if memref in self.scalar_cells:
            self.writer.emit(f"{self._name(op.result)} = {self.scalar_cells[memref]}")
            return
        indices = ", ".join(self._name(index) for index in op.operands[1:])
        self.writer.emit(f"{self._name(op.result)} = {self._name(memref)}[{indices}]")

    def _emit_store(self, op: Operation) -> None:
        memref = op.operand(1)
        if memref in self.scalar_cells:
            self.writer.emit(f"{self.scalar_cells[memref]} = {self._name(op.operand(0))}")
            return
        indices = ", ".join(self._name(index) for index in op.operands[2:])
        self.writer.emit(f"{self._name(memref)}[{indices}] = {self._name(op.operand(0))}")

    # -- control flow ----------------------------------------------------------------------
    def _emit_for(self, op: ForOp) -> None:
        if op.iter_args_init:
            raise MLIRCodegenError("scf.for with iteration arguments is not supported")
        induction = self._name(op.induction_variable)
        self.writer.emit(
            f"for {induction} in range(int({self._name(op.lower_bound)}), "
            f"int({self._name(op.upper_bound)}), int({self._name(op.step)})):"
        )
        self.writer.indent += 1
        body_start = len(self.writer.lines)
        self._emit_block(op.body)
        if len(self.writer.lines) == body_start:
            self.writer.emit("pass")
        self.writer.indent -= 1

    def _emit_if(self, op: IfOp) -> None:
        if op.results:
            raise MLIRCodegenError("scf.if with results is not supported")
        self.writer.emit(f"if {self._name(op.condition)}:")
        self.writer.indent += 1
        body_start = len(self.writer.lines)
        self._emit_block(op.then_block)
        if len(self.writer.lines) == body_start:
            self.writer.emit("pass")
        self.writer.indent -= 1
        else_block = op.else_block
        if else_block is not None and len(else_block.operations) > 1:
            self.writer.emit("else:")
            self.writer.indent += 1
            self._emit_block(else_block)
            self.writer.indent -= 1

    def _emit_while(self, op: WhileOp) -> None:
        if op.operands:
            raise MLIRCodegenError("scf.while with loop-carried values is not supported")
        self.writer.emit("while True:")
        self.writer.indent += 1
        self._emit_block(op.before_block)
        condition_op = op.before_block.terminator
        self.writer.emit(f"if not {self._name(condition_op.operand(0))}:")
        self.writer.indent += 1
        self.writer.emit("break")
        self.writer.indent -= 1
        self._emit_block(op.after_block)
        self.writer.indent -= 1


@dataclass
class CompiledMLIR:
    """An executable program generated from an MLIR function."""

    code: str
    _function: object = field(repr=False, default=None)

    def __call__(self, **kwargs):
        return self._function(**kwargs)

    def run(self, **kwargs):
        return self._function(**kwargs)

    @classmethod
    def from_code(cls, code: str, name: str = "cached") -> "CompiledMLIR":
        """Rehydrate an executable from previously generated code."""
        return cls(code=code, _function=load_entry(code, filename=f"<mlir:{name}>"))


def generate_mlir_code(
    module, function: Optional[str] = None, native_scalars: bool = True, preallocate: bool = True
) -> str:
    """Generate Python source for a function of an MLIR module."""
    func_ops = [op for op in module.body.operations if isinstance(op, FuncOp)]
    if function is not None:
        func_ops = [op for op in func_ops if op.sym_name == function]
    if not func_ops:
        raise MLIRCodegenError("Module contains no function to generate code for")
    generator = MLIRPythonGenerator(
        func_ops[0], native_scalars=native_scalars, preallocate=preallocate
    )
    return generator.generate()


def compile_mlir(
    module, function: Optional[str] = None, native_scalars: bool = True, preallocate: bool = True
) -> CompiledMLIR:
    """Generate and load an executable program for an MLIR function."""
    code = generate_mlir_code(
        module, function=function, native_scalars=native_scalars, preallocate=preallocate
    )
    return CompiledMLIR.from_code(code)
