"""Structured control-flow raising from the SDFG state machine.

The SDFG state machine is a general CFG; for code generation we raise it
back into structured regions (sequences, counted/while loops, branches)
using dominator analysis — the same capability §5.1 notes for the reverse
(SDFG → MLIR) direction.  State machines that do not fit the structured
patterns fall back to a generic dispatch region, so any SDFG can be
generated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import networkx as nx

from ..symbolic import Expr, Not
from ..sdfg import SDFG, InterstateEdge, SDFGState, StateEdge
from ..transforms.loop_analysis import LoopInfo, find_loops


class ControlFlowNode:
    """Base class of structured control-flow tree nodes."""


@dataclass
class StateNode(ControlFlowNode):
    """Execute one state, then apply the assignments of its taken edge."""

    state: SDFGState
    assignments: Dict[str, Expr] = field(default_factory=dict)


@dataclass
class SequenceNode(ControlFlowNode):
    children: List[ControlFlowNode] = field(default_factory=list)


@dataclass
class LoopNode(ControlFlowNode):
    """``while condition:`` loop around a guard state."""

    guard: SDFGState
    condition: Expr
    body: SequenceNode
    exit_assignments: Dict[str, Expr] = field(default_factory=dict)


@dataclass
class BranchNode(ControlFlowNode):
    """Two-way branch with a merge point."""

    condition: Expr
    then_body: SequenceNode
    else_body: SequenceNode
    then_assignments: Dict[str, Expr] = field(default_factory=dict)
    else_assignments: Dict[str, Expr] = field(default_factory=dict)


@dataclass
class DispatchNode(ControlFlowNode):
    """Fallback: interpret the remaining state machine generically."""

    entry: SDFGState
    states: List[SDFGState] = field(default_factory=list)


class ControlFlowBuilder:
    """Builds the structured control-flow tree of an SDFG."""

    def __init__(self, sdfg: SDFG):
        self.sdfg = sdfg
        self.loops: Dict[SDFGState, LoopInfo] = {
            loop.guard: loop for loop in find_loops(sdfg)
        }
        self._postdominators = self._compute_postdominators()
        # States participating in cycles that are not recognized structured
        # loops must be emitted by the generic dispatcher.
        self._cyclic_states: Set[SDFGState] = set()
        for component in nx.strongly_connected_components(sdfg._graph):
            if len(component) > 1:
                self._cyclic_states |= set(component)
        loop_covered = set(self.loops)
        for loop in self.loops.values():
            loop_covered |= loop.body_states
        self._unstructured_cycles = self._cyclic_states - loop_covered

    def _compute_postdominators(self) -> Dict[SDFGState, Optional[SDFGState]]:
        # Build a bare reversed CFG (states only, no edge payloads).
        # ``MultiDiGraph.reverse(copy=True)`` deep-copies every interstate
        # edge — and, through its state references, effectively the whole
        # SDFG — which used to dominate compile time.
        graph = nx.DiGraph()
        graph.add_nodes_from(self.sdfg._graph.nodes())
        graph.add_edges_from((dst, src) for src, dst in self.sdfg._graph.edges())
        sink = "__virtual_sink__"
        graph.add_node(sink)
        for state in self.sdfg.states():
            if self.sdfg.out_degree(state) == 0:
                graph.add_edge(sink, state)
        try:
            dominators = nx.immediate_dominators(graph, sink)
        except nx.NetworkXError:
            return {}
        return {
            state: parent if parent != sink else None
            for state, parent in dominators.items()
            if state != sink
        }

    # -- public API ---------------------------------------------------------------
    def build(self) -> SequenceNode:
        if self.sdfg.start_state is None:
            return SequenceNode([])
        return self._build_region(self.sdfg.start_state, None)

    # -- region construction ---------------------------------------------------------
    def _build_region(self, entry: SDFGState, stop: Optional[SDFGState]) -> SequenceNode:
        sequence = SequenceNode([])
        current: Optional[SDFGState] = entry
        visited: Set[SDFGState] = set()
        while current is not None and current is not stop:
            if current in visited or current in self._unstructured_cycles:
                # Unexpected cycle not recognized as a loop: fall back.
                sequence.children.append(self._dispatch_from(current))
                return sequence
            visited.add(current)

            loop = self.loops.get(current)
            if loop is not None and loop.exit_edge is not None:
                body = self._build_region(loop.body_edge.dst, current)
                sequence.children.append(
                    LoopNode(
                        guard=current,
                        condition=loop.body_edge.data.condition,
                        body=body,
                        exit_assignments=dict(loop.exit_edge.data.assignments),
                    )
                )
                current = loop.exit_edge.dst
                continue

            out_edges = self.sdfg.out_edges(current)
            if len(out_edges) == 0:
                sequence.children.append(StateNode(current))
                current = None
            elif len(out_edges) == 1:
                edge = out_edges[0]
                if not edge.data.is_unconditional:
                    # Conditionally-executed tail without an else branch.
                    sequence.children.append(StateNode(current))
                    merge = self._postdominators.get(current)
                    then_body = self._build_region(edge.dst, merge)
                    sequence.children.append(
                        BranchNode(
                            condition=edge.data.condition,
                            then_body=then_body,
                            else_body=SequenceNode([]),
                            then_assignments=dict(edge.data.assignments),
                        )
                    )
                    current = merge
                else:
                    sequence.children.append(
                        StateNode(current, dict(edge.data.assignments))
                    )
                    current = edge.dst
            elif len(out_edges) == 2:
                merge = self._postdominators.get(current)
                if merge is None and stop is None:
                    sequence.children.append(self._dispatch_from(current))
                    return sequence
                first, second = out_edges
                # Prefer the positively-conditioned edge as the "then" branch.
                if isinstance(first.data.condition, Not):
                    first, second = second, first
                sequence.children.append(StateNode(current))
                then_body = self._build_region(first.dst, merge if merge is not None else stop)
                else_body = self._build_region(second.dst, merge if merge is not None else stop)
                sequence.children.append(
                    BranchNode(
                        condition=first.data.condition,
                        then_body=then_body,
                        else_body=else_body,
                        then_assignments=dict(first.data.assignments),
                        else_assignments=dict(second.data.assignments),
                    )
                )
                current = merge
            else:
                sequence.children.append(self._dispatch_from(current))
                return sequence
        return sequence

    def _dispatch_from(self, entry: SDFGState) -> DispatchNode:
        reachable = [entry] + list(nx.descendants(self.sdfg._graph, entry))
        return DispatchNode(entry=entry, states=reachable)


def build_control_flow(sdfg: SDFG) -> SequenceNode:
    """Build the structured control-flow tree of ``sdfg``."""
    return ControlFlowBuilder(sdfg).build()


def states_in_tree(node: ControlFlowNode) -> List[SDFGState]:
    """All states referenced by a control-flow tree (for coverage checks)."""
    result: List[SDFGState] = []
    if isinstance(node, StateNode):
        result.append(node.state)
    elif isinstance(node, SequenceNode):
        for child in node.children:
            result.extend(states_in_tree(child))
    elif isinstance(node, LoopNode):
        result.append(node.guard)
        result.extend(states_in_tree(node.body))
    elif isinstance(node, BranchNode):
        result.extend(states_in_tree(node.then_body))
        result.extend(states_in_tree(node.else_body))
    elif isinstance(node, DispatchNode):
        result.extend(node.states)
    return result
