"""SDFG → C code generation (the native backend).

The paper's evaluation measures wall-clock time of *compiled* binaries;
this generator emits a C translation unit from the SDFG so schedules can
be validated against real machine code instead of the interpreted Python
backend.  It mirrors :class:`~repro.codegen.sdfg_python.SDFGPythonGenerator`
structurally — same control-flow tree, same state/scope emission order,
same lazy allocation accounting — so a native run and an interpreted run
of the same SDFG report identical ``__allocations`` counts and outputs:

* raised control flow becomes ``while``/``if``/``for`` statements (the
  dispatch fallback becomes an integer state machine);
* map scopes become counted loops; maps annotated by ``Vectorization``
  (or swept by the global ``vectorize`` flag) become SIMD-friendly inner
  loops (``#pragma GCC ivdep`` over the fixed-width body the transform
  already tiled);
* WCR memlets become in-place accumulations (``+=``, ``*=``, min/max);
* transient arrays become ``malloc``/``free`` pairs; the allocation
  counter is threaded out through a pointer argument.

The generated source is self-contained and carries a one-line JSON ABI
header (interface containers, free symbols, constants), so
:class:`~repro.codegen.toolchain.CompiledNative` can rebuild the ctypes
marshalling layer from the code string alone — the same
rehydrate-from-source contract as ``CompiledSDFG.from_code``.

Constructs the scalar C model cannot express (MLIR-language tasklets,
streams, whole-array connector bindings, strided subset writes) raise
:class:`NativeCodegenError`; the pipeline layer falls back to the Python
backend with a diagnostic rather than failing the compilation.

Python-semantics note: ``/`` always divides in ``double`` (the tasklet
raiser emits ``//`` for integer division), ``//``/``%`` follow Python's
floor/sign rules via inline helpers, and ``int()`` truncates toward zero
— all matching the interpreted backend so differential checks compare
equal bit-for-bit on integer data.
"""

from __future__ import annotations

import ast
import json
from typing import Dict, List, Optional, Set, Tuple

from ..symbolic import Expr, Subset
from ..symbolic.expr import (
    Add,
    And,
    BoolConst,
    Compare,
    Div,
    Float,
    FloorDiv,
    Integer,
    Max,
    Min,
    Mod,
    Mul,
    Not,
    Or,
    Pow,
    Symbol,
)
from ..sdfg import SDFG, AccessNode, Memlet, SDFGState, Scalar, Tasklet
from ..sdfg.data import Array, DTYPES, LIFETIME_PERSISTENT, Stream
from ..sdfg.nodes import MapEntry, MapExit, SCHEDULE_PARALLEL, is_scope_entry, is_scope_exit
from ..sdfg.parallelism import NUM_THREADS_ENV, ParallelismInfo, analyze_map_parallelism
from .control_flow import (
    BranchNode,
    ControlFlowNode,
    DispatchNode,
    LoopNode,
    SequenceNode,
    StateNode,
    build_control_flow,
)
from .sdfg_python import CodegenError, vectorizable_map
from .toolchain import ABI_MARKER

#: Exported entry-point symbol of every generated translation unit.
ENTRY_SYMBOL = "repro_run"


class NativeCodegenError(CodegenError):
    """Raised when an SDFG uses constructs the C backend cannot express.

    The pipeline layer treats this as "fall back to the Python backend",
    not as a compilation failure.
    """


_HELPERS = """\
static inline int64_t repro_fdiv_i64(int64_t a, int64_t b) {
    int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) q -= 1;  /* Python floor division */
    return q;
}
static inline int64_t repro_mod_i64(int64_t a, int64_t b) {
    int64_t r = a % b;
    if (r != 0 && ((r < 0) != (b < 0))) r += b;  /* Python sign-of-divisor rule */
    return r;
}
static inline double repro_mod_f64(double a, double b) {
    double r = fmod(a, b);
    if (r != 0.0 && ((r < 0.0) != (b < 0.0))) r += b;
    return r;
}
static inline int64_t repro_min_i64(int64_t a, int64_t b) { return a < b ? a : b; }
static inline int64_t repro_max_i64(int64_t a, int64_t b) { return a > b ? a : b; }
static inline double repro_min_f64(double a, double b) { return a < b ? a : b; }
static inline double repro_max_f64(double a, double b) { return a > b ? a : b; }
static inline int64_t repro_abs_i64(int64_t a) { return a < 0 ? -a : a; }\
"""

#: Worker-count resolution for parallel map schedules, emitted only when
#: the SDFG contains a provably parallel map (sequential translation
#: units stay byte-identical).  Resolution order matches the interpreted
#: backend: explicit ``n_threads`` annotation, then the environment
#: override, then the OpenMP runtime default (1 without OpenMP).
_OMP_HELPERS = f"""\
#ifdef _OPENMP
#include <omp.h>
#endif
static inline int repro_omp_threads(int64_t requested) {{
    if (requested > 0) return (int)requested;
    const char *env = getenv("{NUM_THREADS_ENV}");
    if (env && env[0]) {{
        int value = atoi(env);
        if (value > 0) return value;
    }}
#ifdef _OPENMP
    return omp_get_max_threads();
#else
    return 1;
#endif
}}\
"""


def _int_literal(value: int) -> str:
    return f"{value}LL" if abs(value) > 2**31 - 1 else str(value)


def _contains_float(expression: Expr) -> bool:
    if isinstance(expression, Float):
        return True
    for attr in ("args",):
        children = getattr(expression, attr, None)
        if children is not None:
            return any(_contains_float(child) for child in children)
    return any(
        _contains_float(child)
        for attr in ("num", "den", "base", "exp", "lhs", "rhs", "arg")
        for child in [getattr(expression, attr, None)]
        if isinstance(child, Expr)
    )


def c_symbolic(expression: Expr) -> str:
    """Render a symbolic expression as C source (the ``python_expr`` analog)."""
    if isinstance(expression, Integer):
        return _int_literal(expression.value)
    if isinstance(expression, Float):
        return repr(expression.value)
    if isinstance(expression, Symbol):
        return expression.name
    if isinstance(expression, Add):
        return "(" + " + ".join(c_symbolic(arg) for arg in expression.args) + ")"
    if isinstance(expression, Mul):
        return "(" + " * ".join(c_symbolic(arg) for arg in expression.args) + ")"
    if isinstance(expression, Div):
        return (
            f"((double)({c_symbolic(expression.num)}) / "
            f"(double)({c_symbolic(expression.den)}))"
        )
    if isinstance(expression, FloorDiv):
        return (
            f"repro_fdiv_i64((int64_t)({c_symbolic(expression.num)}), "
            f"(int64_t)({c_symbolic(expression.den)}))"
        )
    if isinstance(expression, Mod):
        return (
            f"repro_mod_i64((int64_t)({c_symbolic(expression.num)}), "
            f"(int64_t)({c_symbolic(expression.den)}))"
        )
    if isinstance(expression, Pow):
        return (
            f"pow((double)({c_symbolic(expression.base)}), "
            f"(double)({c_symbolic(expression.exp)}))"
        )
    if isinstance(expression, (Min, Max)):
        # Bounds and tiling clamps are integral; a float literal anywhere in
        # the tree switches to the double helper.
        suffix = "f64" if _contains_float(expression) else "i64"
        kind = "min" if isinstance(expression, Min) else "max"
        text = c_symbolic(expression.args[0])
        for arg in expression.args[1:]:
            text = f"repro_{kind}_{suffix}({text}, {c_symbolic(arg)})"
        return text
    if isinstance(expression, BoolConst):
        return "1" if expression.value else "0"
    if isinstance(expression, Compare):
        return (
            f"(({c_symbolic(expression.lhs)}) {expression.op} "
            f"({c_symbolic(expression.rhs)}))"
        )
    if isinstance(expression, And):
        return "(" + " && ".join(f"({c_symbolic(a)})" for a in expression.args) + ")"
    if isinstance(expression, Or):
        return "(" + " || ".join(f"({c_symbolic(a)})" for a in expression.args) + ")"
    if isinstance(expression, Not):
        return f"(!({c_symbolic(expression.arg)}))"
    raise NativeCodegenError(
        f"Cannot render symbolic expression {expression!r} as C"
    )


def _is_float_type(ctype: str) -> bool:
    return ctype in ("double", "float")


def _promote(left: str, right: str) -> str:
    if "double" in (left, right):
        return "double"
    if "float" in (left, right):
        return "float"
    return "int64_t"


_CMP_OPS = {
    ast.Eq: "==",
    ast.NotEq: "!=",
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
}

_UNARY_MATH = {"sqrt", "exp", "log", "log2", "sin", "cos", "tanh", "fabs"}
_BINARY_MATH = {"atan2", "pow"}


class _TaskletTranslator:
    """Translates one tasklet's Python assignment lines into C statements.

    Tasklet code (see :mod:`repro.conversion.raise_tasklets`) is a flat
    sequence of ``name = <expression>`` lines over a small expression
    grammar.  Each emitted tasklet gets a unique name prefix, so its
    locals live at the enclosing C scope without colliding across
    tasklets or loop iterations.
    """

    def __init__(self, generator: "SDFGCGenerator", prefix: str,
                 rename: Dict[str, Optional[str]], types: Dict[str, str]):
        self.generator = generator
        self.prefix = prefix
        self.rename = rename
        self.types = types

    def translate(self, code: str) -> None:
        try:
            tree = ast.parse(code)
        except SyntaxError as exc:
            raise NativeCodegenError(f"Unparseable tasklet code: {exc}") from exc
        for statement in tree.body:
            if (
                not isinstance(statement, ast.Assign)
                or len(statement.targets) != 1
                or not isinstance(statement.targets[0], ast.Name)
            ):
                raise NativeCodegenError(
                    "Native backend supports only 'name = expression' tasklet lines"
                )
            name = statement.targets[0].id
            text, ctype = self._visit(statement.value)
            mangled = self.rename.get(name)
            if mangled is None:
                mangled = self.prefix + name
                self.rename[name] = mangled
            if mangled in self.types:
                self.generator.writer.emit(f"{mangled} = {text};")
            else:
                self.types[mangled] = ctype
                self.generator.writer.emit(f"{ctype} {mangled} = {text};")

    # -- expression lowering -----------------------------------------------------------
    def _visit(self, node: ast.expr) -> Tuple[str, str]:
        if isinstance(node, ast.Constant):
            value = node.value
            if isinstance(value, bool):
                return ("1" if value else "0"), "int64_t"
            if isinstance(value, int):
                return _int_literal(value), "int64_t"
            if isinstance(value, float):
                return repr(value), "double"
            raise NativeCodegenError(f"Unsupported tasklet constant {value!r}")
        if isinstance(node, ast.Name):
            return self._name(node.id)
        if isinstance(node, ast.BinOp):
            return self._binop(node)
        if isinstance(node, ast.UnaryOp):
            text, ctype = self._visit(node.operand)
            if isinstance(node.op, ast.USub):
                return f"(-({text}))", ctype
            if isinstance(node.op, ast.UAdd):
                return f"(+({text}))", ctype
            if isinstance(node.op, ast.Not):
                return f"(!({text}))", "int64_t"
            if isinstance(node.op, ast.Invert):
                return f"(~({text}))", ctype
            raise NativeCodegenError(f"Unsupported unary operator {node.op!r}")
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1 or len(node.comparators) != 1:
                raise NativeCodegenError("Chained comparisons are not supported")
            operator = _CMP_OPS.get(type(node.ops[0]))
            if operator is None:
                raise NativeCodegenError(f"Unsupported comparison {node.ops[0]!r}")
            left, _ = self._visit(node.left)
            right, _ = self._visit(node.comparators[0])
            return f"(({left}) {operator} ({right}))", "int64_t"
        if isinstance(node, ast.BoolOp):
            joiner = " && " if isinstance(node.op, ast.And) else " || "
            parts = [f"({self._visit(value)[0]})" for value in node.values]
            return "(" + joiner.join(parts) + ")", "int64_t"
        if isinstance(node, ast.IfExp):
            condition, _ = self._visit(node.test)
            then_text, then_type = self._visit(node.body)
            else_text, else_type = self._visit(node.orelse)
            return (
                f"(({condition}) ? ({then_text}) : ({else_text}))",
                _promote(then_type, else_type),
            )
        if isinstance(node, ast.Call):
            return self._call(node)
        raise NativeCodegenError(
            f"Unsupported tasklet expression {ast.dump(node)}"
        )

    def _name(self, name: str) -> Tuple[str, str]:
        if name in self.rename:
            mangled = self.rename[name]
            if mangled is None:
                raise NativeCodegenError(
                    f"Tasklet reads connector {name!r} bound to an empty memlet"
                )
            return mangled, self.types[mangled]
        sdfg = self.generator.sdfg
        if name in sdfg.symbols:
            return name, DTYPES[sdfg.symbols[name]].c_type
        if name in sdfg.constants:
            value = sdfg.constants[name]
            return name, "double" if isinstance(value, float) else "int64_t"
        raise NativeCodegenError(f"Tasklet references unknown name {name!r}")

    def _binop(self, node: ast.BinOp) -> Tuple[str, str]:
        left, left_type = self._visit(node.left)
        right, right_type = self._visit(node.right)
        floats = _is_float_type(left_type) or _is_float_type(right_type)
        operator = node.op
        if isinstance(operator, ast.Div):
            # Python true division: always double (the raiser uses // for ints).
            return f"((double)({left}) / (double)({right}))", "double"
        if isinstance(operator, ast.FloorDiv):
            if floats:
                return f"floor((double)({left}) / (double)({right}))", "double"
            return f"repro_fdiv_i64((int64_t)({left}), (int64_t)({right}))", "int64_t"
        if isinstance(operator, ast.Mod):
            if floats:
                return f"repro_mod_f64((double)({left}), (double)({right}))", "double"
            return f"repro_mod_i64((int64_t)({left}), (int64_t)({right}))", "int64_t"
        if isinstance(operator, ast.Pow):
            return f"pow((double)({left}), (double)({right}))", "double"
        simple = {
            ast.Add: "+",
            ast.Sub: "-",
            ast.Mult: "*",
            ast.BitAnd: "&",
            ast.BitOr: "|",
            ast.BitXor: "^",
            ast.LShift: "<<",
            ast.RShift: ">>",
        }.get(type(operator))
        if simple is None:
            raise NativeCodegenError(f"Unsupported binary operator {operator!r}")
        return f"(({left}) {simple} ({right}))", _promote(left_type, right_type)

    def _call(self, node: ast.Call) -> Tuple[str, str]:
        if node.keywords:
            raise NativeCodegenError("Keyword arguments are not supported in tasklets")
        args = [self._visit(argument) for argument in node.args]
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "math"
        ):
            name = func.attr
            if name in _UNARY_MATH and len(args) == 1:
                return f"{name}((double)({args[0][0]}))", "double"
            if name in _BINARY_MATH and len(args) == 2:
                return (
                    f"{name}((double)({args[0][0]}), (double)({args[1][0]}))",
                    "double",
                )
            if name in ("floor", "ceil") and len(args) == 1:
                # math.floor/ceil return Python ints; the cast keeps parity.
                return f"(int64_t){name}((double)({args[0][0]}))", "int64_t"
            raise NativeCodegenError(f"Unsupported math function math.{name}")
        if not isinstance(func, ast.Name):
            raise NativeCodegenError("Unsupported tasklet call target")
        name = func.id
        if name == "float" and len(args) == 1:
            return f"((double)({args[0][0]}))", "double"
        if name == "int" and len(args) == 1:
            return f"((int64_t)({args[0][0]}))", "int64_t"
        if name == "bool" and len(args) == 1:
            return f"(({args[0][0]}) != 0)", "int64_t"
        if name == "abs" and len(args) == 1:
            text, ctype = args[0]
            if _is_float_type(ctype):
                return f"fabs((double)({text}))", "double"
            return f"repro_abs_i64((int64_t)({text}))", "int64_t"
        if name in ("min", "max") and len(args) >= 2:
            result_type = "int64_t"
            for _, ctype in args:
                result_type = _promote(result_type, ctype)
            suffix = "f64" if _is_float_type(result_type) else "i64"
            text = args[0][0]
            for argument, _ in args[1:]:
                text = f"repro_{name}_{suffix}({text}, {argument})"
            return text, "double" if suffix == "f64" else "int64_t"
        raise NativeCodegenError(f"Unsupported tasklet call {name!r}")


class _CWriter:
    """Tiny indentation-aware C source writer."""

    def __init__(self):
        self.lines: List[str] = []
        self.indent = 0

    def emit(self, line: str = "") -> None:
        self.lines.append("    " * self.indent + line if line else "")

    def brace(self, header: str):
        writer = self

        class _Block:
            def __enter__(self_inner):
                writer.emit(header + " {")
                writer.indent += 1

            def __exit__(self_inner, *exc):
                writer.indent -= 1
                writer.emit("}")

        return _Block()

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


class SDFGCGenerator:
    """Generates a C translation unit implementing an SDFG.

    Traversal order deliberately mirrors ``SDFGPythonGenerator`` (same
    control-flow tree, same topological node order, same first-use lazy
    allocation accounting) so the native and interpreted backends agree
    on outputs *and* on the reported allocation count.
    """

    def __init__(self, sdfg: SDFG, vectorize: bool = False, count_allocations: bool = True):
        self.sdfg = sdfg
        self.vectorize = vectorize
        self.count_allocations = count_allocations
        self.writer = _CWriter()
        self._value_counter = 0
        self._tasklet_counter = 0
        self._bound_counter = 0
        self._dispatch_counter = 0
        self._allocated_persistent: Set[str] = set()
        self._value_types: Dict[str, str] = {}
        self._declared: Set[str] = set()
        self._heap: List[str] = []
        self._interface = self._interface_containers()
        # Parallel-scheduled map scopes whose safety proof succeeds; maps
        # annotated parallel that fail the proof lower sequentially (the
        # annotation is a request, the proof is the authority).
        self._parallel_maps: Dict[int, ParallelismInfo] = {}
        self._atomic_edges: Set[int] = set()
        for state, entry in sdfg.map_entries():
            if entry.map.schedule != SCHEDULE_PARALLEL:
                continue
            if state.scope_dict().get(entry) is not None:
                continue
            info = analyze_map_parallelism(sdfg, state, entry)
            if info.ok:
                self._parallel_maps[id(entry)] = info
                self._atomic_edges |= info.atomic_edges

    # -- public -------------------------------------------------------------------
    def generate(self) -> str:
        writer = self.writer
        writer.emit("/* Generated by repro.codegen.sdfg_c — native SDFG backend. */")
        writer.emit(f"/* {ABI_MARKER} {json.dumps(self.abi(), sort_keys=True)} */")
        writer.emit("#include <math.h>")
        writer.emit("#include <stdint.h>")
        writer.emit("#include <stdlib.h>")
        writer.emit()
        for line in _HELPERS.splitlines():
            writer.emit(line)
        if self._parallel_maps:
            for line in _OMP_HELPERS.splitlines():
                writer.emit(line)
        writer.emit()
        with writer.brace(f"void {ENTRY_SYMBOL}({self._signature()})"):
            self._emit_prologue()
            tree = build_control_flow(self.sdfg)
            self._emit_sequence(tree)
            self._emit_epilogue()
        return writer.text()

    def abi(self) -> Dict:
        """The JSON ABI header: everything the ctypes wrapper must know."""
        args = []
        for name in self._interface:
            descriptor = self.sdfg.arrays[name]
            entry = {
                "name": name,
                "kind": "scalar" if isinstance(descriptor, Scalar) else "array",
                "dtype": descriptor.dtype,
                "transient": bool(descriptor.transient),
            }
            if isinstance(descriptor, Array):
                entry["shape"] = [str(dim) for dim in descriptor.shape]
            args.append(entry)
        return {
            "entry": ENTRY_SYMBOL,
            "name": self.sdfg.name,
            "args": args,
            "symbols": sorted(self.sdfg.free_symbols()),
            "constants": dict(self.sdfg.constants),
        }

    # -- interface / signature ---------------------------------------------------------
    def _interface_containers(self) -> List[str]:
        """Containers crossing the ABI, in the epilogue's output order."""
        names = []
        for name, descriptor in self.sdfg.arrays.items():
            if not descriptor.transient or name in self.sdfg.return_values:
                names.append(name)
        return list(dict.fromkeys(names))

    def _signature(self) -> str:
        parameters = []
        for name in self._interface:
            descriptor = self.sdfg.arrays[name]
            if isinstance(descriptor, Stream):
                raise NativeCodegenError(f"Stream container {name!r} crosses the ABI")
            ctype = DTYPES[descriptor.dtype].c_type
            if isinstance(descriptor, Scalar):
                parameters.append(f"{ctype} *_io_{name}")
            else:
                parameters.append(f"{ctype} *restrict {name}")
                self._declared.add(name)
        for symbol in sorted(self.sdfg.free_symbols()):
            dtype = self.sdfg.symbols.get(symbol, "int64")
            if dtype.startswith("float"):
                raise NativeCodegenError(f"Non-integer free symbol {symbol!r}")
            parameters.append(f"int64_t {symbol}")
            self._declared.add(symbol)
        parameters.append("int64_t *_alloc_out")
        return ", ".join(parameters)

    # -- prologue / epilogue -----------------------------------------------------------
    def _emit_prologue(self) -> None:
        writer = self.writer
        writer.emit("int64_t _alloc_count = 0;")
        for name, value in self.sdfg.constants.items():
            ctype = "double" if isinstance(value, float) else "int64_t"
            writer.emit(f"const {ctype} {name} = {value!r};")
            self._declared.add(name)
        free = self.sdfg.free_symbols()
        for name in sorted(set(self.sdfg.symbols) - free - set(self.sdfg.constants)):
            ctype = DTYPES[self.sdfg.symbols[name]].c_type
            zero = "0.0" if _is_float_type(ctype) else "0"
            writer.emit(f"{ctype} {name} = {zero};")
            self._declared.add(name)
        # Interstate assignments may introduce loop variables that were
        # never registered as SDFG symbols; Python creates them on first
        # assignment, C must declare them up front.
        for edge in self.sdfg.edges():
            for name in edge.data.assignments:
                if name not in self._declared:
                    writer.emit(f"int64_t {name} = 0;")
                    self._declared.add(name)
        # Interface scalars: read through the in/out cell (the wrapper
        # seeds it with the caller's value, or 0 for transient outputs —
        # exactly `_args.get(name, default)` / `name = 0` in Python).
        for name in self._interface:
            descriptor = self.sdfg.arrays[name]
            if isinstance(descriptor, Scalar):
                ctype = DTYPES[descriptor.dtype].c_type
                writer.emit(f"{ctype} {name} = *_io_{name};")
                self._declared.add(name)
        # Transient storage.  Interface transients (return values) are
        # wrapper-allocated parameters; everything else is malloc'd here.
        # Allocation *counting* mirrors the Python backend exactly:
        # persistent containers are charged up front, the rest at their
        # first-use state (see _emit_lazy_allocations).
        for name, descriptor in self.sdfg.arrays.items():
            if not descriptor.transient:
                continue
            if isinstance(descriptor, Scalar):
                if name in self._interface:
                    continue  # already bound from its in/out cell above
                ctype = DTYPES[descriptor.dtype].c_type
                zero = "0.0" if _is_float_type(ctype) else "0"
                writer.emit(f"{ctype} {name} = {zero};")
                self._declared.add(name)
            elif isinstance(descriptor, Stream):
                raise NativeCodegenError(
                    f"Stream container {name!r} is not supported by the native backend"
                )
            else:
                count_now = descriptor.lifetime == LIFETIME_PERSISTENT
                if name not in self._interface:
                    ctype = DTYPES[descriptor.dtype].c_type
                    total = c_symbolic(descriptor.total_size())
                    writer.emit(
                        f"{ctype} *{name} = "
                        f"({ctype} *)malloc(sizeof({ctype}) * (size_t)(int64_t)({total}));"
                    )
                    self._declared.add(name)
                    self._heap.append(name)
                if self.count_allocations and count_now:
                    writer.emit("_alloc_count += 1;")
                if count_now:
                    self._allocated_persistent.add(name)

    def _emit_epilogue(self) -> None:
        writer = self.writer
        for name in self._heap:
            writer.emit(f"free({name});")
        for name in self._interface:
            if isinstance(self.sdfg.arrays[name], Scalar):
                writer.emit(f"*_io_{name} = {name};")
        writer.emit("*_alloc_out = _alloc_count;")

    # -- control flow ----------------------------------------------------------------------
    def _emit_sequence(self, node: SequenceNode) -> None:
        for child in node.children:
            self._emit_cf(child)

    def _emit_cf(self, node: ControlFlowNode) -> None:
        writer = self.writer
        if isinstance(node, StateNode):
            self._emit_state(node.state)
            self._emit_assignments(node.assignments)
        elif isinstance(node, SequenceNode):
            self._emit_sequence(node)
        elif isinstance(node, LoopNode):
            if node.guard.is_empty():
                with writer.brace(f"while ({c_symbolic(node.condition)})"):
                    self._emit_sequence(node.body)
            else:
                with writer.brace("while (1)"):
                    self._emit_state(node.guard)
                    with writer.brace(f"if (!({c_symbolic(node.condition)}))"):
                        writer.emit("break;")
                    self._emit_sequence(node.body)
            self._emit_assignments(node.exit_assignments)
        elif isinstance(node, BranchNode):
            with writer.brace(f"if ({c_symbolic(node.condition)})"):
                self._emit_assignments(node.then_assignments)
                self._emit_sequence(node.then_body)
            if node.else_body.children or node.else_assignments:
                with writer.brace("else"):
                    self._emit_assignments(node.else_assignments)
                    self._emit_sequence(node.else_body)
        elif isinstance(node, DispatchNode):
            self._emit_dispatch(node)
        else:  # pragma: no cover - defensive
            raise NativeCodegenError(f"Unknown control-flow node {node!r}")

    def _emit_assignments(self, assignments: Dict[str, Expr]) -> None:
        for name, value in assignments.items():
            if name not in self._declared:
                raise NativeCodegenError(f"Assignment to undeclared symbol {name!r}")
            self.writer.emit(f"{name} = {c_symbolic(value)};")

    def _emit_dispatch(self, node: DispatchNode) -> None:
        """Integer state machine for unstructured control-flow regions."""
        writer = self.writer
        index = {state: position for position, state in enumerate(node.states)}
        register = f"_disp{self._dispatch_counter}"
        self._dispatch_counter += 1
        writer.emit(f"int64_t {register} = {index[node.entry]};")
        with writer.brace(f"while ({register} >= 0)"):
            for position, state in enumerate(node.states):
                keyword = "if" if position == 0 else "else if"
                with writer.brace(f"{keyword} ({register} == {position})"):
                    self._emit_state(state)
                    out_edges = self.sdfg.out_edges(state)
                    if not out_edges:
                        writer.emit(f"{register} = -1;")
                        continue
                    branch_first = True
                    unconditional_emitted = False
                    for edge in out_edges:
                        if edge.data.is_unconditional:
                            header = "if (1)" if branch_first else "else"
                            unconditional_emitted = True
                        else:
                            keyword2 = "if" if branch_first else "else if"
                            header = f"{keyword2} ({c_symbolic(edge.data.condition)})"
                        with writer.brace(header):
                            self._emit_assignments(edge.data.assignments)
                            writer.emit(f"{register} = {index[edge.dst]};")
                        branch_first = False
                    if not unconditional_emitted:
                        with writer.brace("else"):
                            writer.emit(f"{register} = -1;")
            with writer.brace("else"):
                writer.emit(f"{register} = -1;")

    # -- state dataflow ------------------------------------------------------------------------
    def _emit_state(self, state: SDFGState) -> None:
        if state.is_empty():
            return
        self._emit_lazy_allocations(state)
        scope = state.scope_dict()
        value_names: Dict[Tuple[int, Optional[str]], str] = {}
        for node in state.topological_nodes():
            if scope.get(node) is not None:
                continue  # emitted as part of its map scope
            self._emit_node(state, node, scope, value_names)

    def _emit_lazy_allocations(self, state: SDFGState) -> None:
        # Mirrors SDFGPythonGenerator._emit_lazy_allocations exactly, so
        # both backends charge allocations at the same program points.
        if not self.count_allocations:
            return
        for name in sorted(state.read_set() | state.write_set()):
            descriptor = self.sdfg.arrays.get(name)
            if (
                isinstance(descriptor, Array)
                and descriptor.transient
                and descriptor.lifetime != LIFETIME_PERSISTENT
                and name not in self._allocated_persistent
            ):
                self._allocated_persistent.add(name)
                self.writer.emit(f"_alloc_count += 1;  /* allocation of {name} on this path */")

    def _emit_node(self, state, node, scope, value_names) -> None:
        if isinstance(node, Tasklet):
            self._emit_tasklet(state, node, value_names)
        elif isinstance(node, MapEntry):
            self._emit_map(state, node, scope, value_names)
        elif isinstance(node, AccessNode):
            self._emit_access_copies(state, node)
        elif isinstance(node, MapExit) or is_scope_exit(node):
            return
        elif is_scope_entry(node):
            return

    # -- access-node copies -----------------------------------------------------------------
    def _emit_access_copies(self, state, node: AccessNode) -> None:
        writer = self.writer
        for edge in state.in_edges(node):
            if not isinstance(edge.src, AccessNode) or edge.data.is_empty:
                continue
            source, destination = edge.src.data, node.data
            src_descriptor = self.sdfg.arrays[source]
            dst_descriptor = self.sdfg.arrays[destination]
            if isinstance(dst_descriptor, Scalar) and isinstance(src_descriptor, Scalar):
                writer.emit(f"{destination} = {source};")
            elif isinstance(dst_descriptor, Scalar):
                subset = edge.data.subset
                index = self._flat_index(src_descriptor, subset.indices()) if subset is not None else "[0]"
                writer.emit(f"{destination} = {source}{index};")
            elif isinstance(src_descriptor, Scalar):
                subset = edge.data.subset
                if subset is not None and subset.is_point():
                    index = self._flat_index(dst_descriptor, subset.indices())
                    writer.emit(f"{destination}{index} = {source};")
                else:
                    self._emit_fill(destination, dst_descriptor, "=", source)
            else:
                self._emit_array_copy(destination, dst_descriptor, source, src_descriptor)

    def _emit_array_copy(self, destination, dst_descriptor, source, src_descriptor) -> None:
        if [str(d) for d in dst_descriptor.shape] != [str(d) for d in src_descriptor.shape]:
            raise NativeCodegenError(
                f"Array copy {source} -> {destination} with mismatched shapes"
            )
        ctype = DTYPES[dst_descriptor.dtype].c_type
        counter = f"_copy{self._bound_counter}"
        self._bound_counter += 1
        total = c_symbolic(dst_descriptor.total_size())
        header = (
            f"for (int64_t {counter} = 0; {counter} < (int64_t)({total}); {counter}++)"
        )
        with self.writer.brace(header):
            self.writer.emit(f"{destination}[{counter}] = ({ctype}){source}[{counter}];")

    def _emit_fill(self, name, descriptor, operator, value_expr) -> None:
        counter = f"_fill{self._bound_counter}"
        self._bound_counter += 1
        total = c_symbolic(descriptor.total_size())
        header = (
            f"for (int64_t {counter} = 0; {counter} < (int64_t)({total}); {counter}++)"
        )
        with self.writer.brace(header):
            self.writer.emit(f"{name}[{counter}] {operator} {value_expr};")

    # -- tasklets -------------------------------------------------------------------------------
    def _emit_tasklet(self, state, tasklet: Tasklet, value_names) -> None:
        if tasklet.language == "mlir":
            raise NativeCodegenError(
                f"Tasklet {tasklet.label!r} was kept in MLIR form and cannot be "
                "lowered by the native backend"
            )
        writer = self.writer
        prefix = f"_t{self._tasklet_counter}_"
        self._tasklet_counter += 1
        rename: Dict[str, Optional[str]] = {}
        types: Dict[str, str] = {}
        for edge in state.in_edges(tasklet):
            connector = edge.dst_conn
            if connector is None:
                continue
            read = self._read_expression(state, edge, value_names)
            if read is None:
                rename[connector] = None  # Python binds None; unusable in C
                continue
            text, ctype = read
            mangled = prefix + connector
            rename[connector] = mangled
            types[mangled] = ctype
            writer.emit(f"{ctype} {mangled} = {text};")
        _TaskletTranslator(self, prefix, rename, types).translate(tasklet.code)
        for edge in state.out_edges(tasklet):
            connector = edge.src_conn
            if connector is None:
                continue
            mangled = rename.get(connector)
            if mangled is None:
                raise NativeCodegenError(
                    f"Tasklet {tasklet.label!r} never assigns out connector {connector!r}"
                )
            if isinstance(edge.dst, (AccessNode, MapExit)):
                self._emit_write(edge, mangled)
            else:
                temp = f"_val{self._value_counter}"
                self._value_counter += 1
                ctype = types[mangled]
                writer.emit(f"{ctype} {temp} = {mangled};")
                value_names[(id(tasklet), connector)] = temp
                self._value_types[temp] = ctype

    def _read_expression(self, state, edge, value_names) -> Optional[Tuple[str, str]]:
        source = edge.src
        memlet: Memlet = edge.data
        if isinstance(source, AccessNode):
            return self._memlet_read(source.data, memlet)
        if isinstance(source, MapEntry):
            if memlet.is_empty:
                return None
            return self._memlet_read(memlet.data, memlet)
        key = (id(source), edge.src_conn)
        if key in value_names:
            temp = value_names[key]
            return temp, self._value_types[temp]
        if memlet.is_empty:
            return None
        return self._memlet_read(memlet.data, memlet)

    def _memlet_read(self, data: str, memlet: Memlet) -> Tuple[str, str]:
        descriptor = self.sdfg.arrays[data]
        ctype = DTYPES[descriptor.dtype].c_type
        if isinstance(descriptor, Scalar):
            return data, ctype
        if memlet.is_empty or memlet.subset is None or memlet.dynamic:
            raise NativeCodegenError(
                f"Whole-array connector binding of {data!r} (dynamic or unsubscripted "
                "memlet) is not expressible in scalar C"
            )
        if memlet.subset.is_point():
            return f"{data}{self._flat_index(descriptor, memlet.subset.indices())}", ctype
        raise NativeCodegenError(
            f"Non-point read of {data!r} is not expressible in scalar C"
        )

    def _emit_write(self, edge, value_expr: str) -> None:
        memlet: Memlet = edge.data
        destination_node = edge.dst
        data = memlet.data if not memlet.is_empty else (
            destination_node.data if isinstance(destination_node, AccessNode) else None
        )
        if data is None:
            return
        descriptor = self.sdfg.arrays[data]
        writer = self.writer
        atomic = id(edge) in self._atomic_edges
        if isinstance(descriptor, Scalar):
            self._emit_update(data, descriptor, memlet.wcr, value_expr)
            return
        if memlet.dynamic and memlet.subset is None:
            return  # in-place mutation already performed through the input view
        if memlet.subset is None:
            operator = {"+": "+=", "*": "*="}.get(memlet.wcr, "=")
            if memlet.wcr in ("min", "max"):
                raise NativeCodegenError(f"Broadcast {memlet.wcr}-WCR write to {data!r}")
            self._emit_fill(data, descriptor, operator, value_expr)
            return
        if memlet.subset.is_point():
            target = f"{data}{self._flat_index(descriptor, memlet.subset.indices())}"
            self._emit_update(target, descriptor, memlet.wcr, value_expr, atomic=atomic)
            return
        if self._covers_whole(descriptor, memlet.subset) and memlet.dynamic:
            return
        raise NativeCodegenError(
            f"Strided subset write to {data!r} is not expressible in scalar C"
        )

    def _emit_update(
        self, target: str, descriptor, wcr: Optional[str], value_expr: str,
        atomic: bool = False,
    ) -> None:
        """One write-conflict-resolved update: WCR memlets accumulate in place.

        ``atomic`` marks ``+``/``*`` WCR updates inside a parallel map
        whose target the partition proof could not privatize; the update
        statement itself is unchanged, so sequential builds stay
        byte-identical and non-OpenMP builds compile the same code.
        """
        writer = self.writer
        if atomic and wcr in ("+", "*"):
            writer.emit("#ifdef _OPENMP")
            writer.emit("#pragma omp atomic")
            writer.emit("#endif")
        if wcr in ("min", "max"):
            suffix = "f64" if descriptor.dtype.startswith("float") else "i64"
            writer.emit(f"{target} = repro_{wcr}_{suffix}({target}, {value_expr});")
        elif wcr == "+":
            writer.emit(f"{target} += {value_expr};")
        elif wcr == "*":
            writer.emit(f"{target} *= {value_expr};")
        elif wcr is None:
            writer.emit(f"{target} = {value_expr};")
        else:
            raise NativeCodegenError(f"Unsupported WCR operator {wcr!r}")

    # -- maps ------------------------------------------------------------------------------------
    def _emit_map(self, state, entry: MapEntry, scope, value_names) -> None:
        writer = self.writer
        exit_node = state.exit_node(entry)
        members = [
            node
            for node in state.topological_nodes()
            if scope.get(node) is entry and node is not exit_node
        ]
        vectorized = (
            (self.vectorize or entry.map.vectorized)
            and vectorizable_map(state, entry, members)
        )
        parallel = None if vectorized else self._parallel_maps.get(id(entry))
        opened = 0
        for position, (param, rng) in enumerate(zip(entry.map.params, entry.map.ranges)):
            bound = self._bound_counter
            self._bound_counter += 1
            writer.emit(f"const int64_t _lo{bound} = (int64_t)({c_symbolic(rng.start)});")
            writer.emit(f"const int64_t _hi{bound} = (int64_t)({c_symbolic(rng.end)});")
            writer.emit(f"const int64_t _st{bound} = (int64_t)({c_symbolic(rng.step)});")
            declare = "" if param in self._declared else "int64_t "
            if vectorized:
                # A Vectorization(width)-tiled inner map: fixed-width,
                # single-parameter, WCR-free — safe to ask for SIMD.
                writer.emit("#pragma GCC ivdep")
            if parallel is not None and position == 0:
                self._emit_parallel_pragma(entry, parallel)
            writer.emit(
                f"for ({declare}{param} = _lo{bound}; {param} < _hi{bound}; "
                f"{param} += _st{bound}) {{"
            )
            writer.indent += 1
            opened += 1
        for node in members:
            self._emit_scope_member(state, node, scope, value_names)
        for _ in range(opened):
            writer.indent -= 1
            writer.emit("}")

    def _emit_parallel_pragma(self, entry: MapEntry, info: ParallelismInfo) -> None:
        """The ``omp parallel for`` line splitting the chunked parameter.

        The loop variable is implicitly private; remaining scope
        parameters declared at function scope (interstate loop variables)
        need an explicit ``private`` clause, ones declared in their own
        ``for`` init are block-scoped and private already.  Scalar WCR
        accumulators become ``reduction`` clauses.  ``schedule(static)``
        keeps chunk assignment deterministic run to run.
        """
        writer = self.writer
        requested = entry.map.n_threads or 0
        clauses = [f"num_threads(repro_omp_threads({requested}))"]
        shared_params = [p for p in info.private_params if p in self._declared]
        if shared_params:
            clauses.append(f"private({', '.join(shared_params)})")
        for name, operator in info.reductions:
            clauses.append(f"reduction({operator}:{name})")
        clauses.append("schedule(static)")
        writer.emit("#ifdef _OPENMP")
        writer.emit(f"#pragma omp parallel for {' '.join(clauses)}")
        writer.emit("#endif")

    def _emit_scope_member(self, state, node, scope, value_names) -> None:
        if isinstance(node, Tasklet):
            self._emit_tasklet(state, node, value_names)
        elif isinstance(node, MapEntry):
            self._emit_map(state, node, scope, value_names)
        elif isinstance(node, AccessNode):
            self._emit_access_copies(state, node)

    # -- subset rendering ----------------------------------------------------------------------------
    def _flat_index(self, descriptor, indices) -> str:
        if len(indices) != len(descriptor.shape):
            raise NativeCodegenError(
                f"Partial index ({len(indices)} of {len(descriptor.shape)} dims) "
                "is not expressible in scalar C"
            )
        strides: List[Expr] = []
        stride: Expr = Integer(1)
        for dim in reversed(descriptor.shape):
            strides.append(stride)
            stride = stride * dim
        strides.reverse()
        terms = []
        for index, dim_stride in zip(indices, strides):
            text = f"(int64_t)({c_symbolic(index)})"
            if not (isinstance(dim_stride, Integer) and dim_stride.value == 1):
                text += f" * (int64_t)({c_symbolic(dim_stride)})"
            terms.append(text)
        return "[" + " + ".join(terms) + "]"

    def _covers_whole(self, descriptor, subset: Subset) -> bool:
        if len(descriptor.shape) != subset.dims:
            return False
        return bool(subset.covers(Subset.full(descriptor.shape)))


def generate_c_code(sdfg: SDFG, vectorize: bool = False) -> str:
    """Generate a C translation unit implementing ``sdfg``.

    Raises :class:`NativeCodegenError` when the SDFG uses constructs the
    native backend cannot express — callers fall back to
    :func:`~repro.codegen.sdfg_python.generate_code`.
    """
    return SDFGCGenerator(sdfg, vectorize=vectorize).generate()
