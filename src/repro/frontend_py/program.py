"""The :class:`PythonProgram` unit of compilation for the Python frontend.

A Python program is *self-contained data*, not a live function object: the
canonical (dedented, decorator-stripped) source text of one function plus
its size bindings.  Everything the rest of the stack needs follows from
that choice:

* **Content addressing** — :meth:`PythonProgram.cache_source` is a
  deterministic digest basis (canonical source + function name + sorted
  sizes), so the service cache keys Python programs exactly like C
  sources: same function source and sizes ⇒ same key, in every process
  and under every ``PYTHONHASHSEED``.
* **Process pools** — the object is plain strings and ints, so it pickles
  to :func:`repro.service.compile_many` workers without requiring the
  original function to be importable there.
* **Differential reference** — calling the program executes the *same
  canonical source* under plain Python/NumPy (``exec`` in a namespace
  binding ``np`` and ``math``), which is the reference every backend is
  checked against.  The traced and the reference computation can never
  drift apart because they are one piece of text.

The usual way to build one is the :func:`program` decorator::

    @repro.program
    def axpy(N=128):
        ...

    axpy()                    # plain-NumPy reference execution
    compile_and_run(axpy)     # through any pipeline, any backend
    axpy.bind(N=1024)         # same kernel, another problem size
"""

from __future__ import annotations

import hashlib
import inspect
import json
import math
import textwrap
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Union

from ..errors import FrontendError


def _canonical_source(text: str) -> str:
    """Dedent, strip decorator lines and normalize whitespace/line endings.

    The result is the *identity* of the program (its digest basis), so the
    normalization must be deterministic and version-independent: plain
    text manipulation only, no ``ast`` round-trips (``ast.unparse`` output
    drifts between Python versions).
    """
    lines = textwrap.dedent(text.replace("\r\n", "\n").replace("\r", "\n")).split("\n")
    start = 0
    while start < len(lines) and not lines[start].lstrip().startswith("def "):
        stripped = lines[start].strip()
        if stripped and not stripped.startswith(("@", "#")):
            raise FrontendError(
                "A Python program must be a single function definition "
                f"(optionally decorated); got leading text {stripped!r}"
            )
        start += 1
    if start == len(lines):
        raise FrontendError("No function definition found in the program source")
    return "\n".join(line.rstrip() for line in lines[start:]).strip("\n")


@dataclass(frozen=True)
class PythonProgram:
    """A NumPy-style Python function as a compilable, hashable unit.

    ``source`` is the canonical function source (line 1 is the ``def``
    line — frontend diagnostics use these line numbers); ``sizes`` are the
    bound values of the function's size parameters.  Instances are
    immutable: :meth:`bind` returns a rebound copy.
    """

    name: str
    source: str
    sizes: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(self, "sizes", dict(self.sizes))
        for key, value in self.sizes.items():
            if not isinstance(value, int) or isinstance(value, bool):
                raise FrontendError(
                    f"Size parameter {key!r} must be an int, got {value!r}"
                )

    # -- identity -----------------------------------------------------------------
    def cache_source(self) -> str:
        """Deterministic digest basis: canonical source + name + sizes."""
        return json.dumps(
            {
                "frontend": "python",
                "function": self.name,
                "source": self.source,
                "sizes": dict(sorted(self.sizes.items())),
            },
            sort_keys=True,
        )

    def content_id(self) -> str:
        """SHA-256 of the digest basis — stable across processes/hash seeds."""
        return hashlib.sha256(self.cache_source().encode("utf-8")).hexdigest()

    # -- rebinding ----------------------------------------------------------------
    def bind(self, sizes: Optional[Mapping[str, int]] = None, **more: int) -> "PythonProgram":
        """A copy with size bindings updated (``bind({'N': 64})`` / ``bind(N=64)``)."""
        merged = dict(self.sizes)
        merged.update(sizes or {})
        merged.update(more)
        return PythonProgram(name=self.name, source=self.source, sizes=merged)

    # -- reference execution -------------------------------------------------------
    def load(self) -> Callable:
        """Materialize the canonical source as a plain Python callable.

        The namespace binds only ``np`` and ``math`` — the exact surface
        the frontend supports — so a program that references anything
        else fails identically here and in tracing.
        """
        import numpy as np

        namespace: Dict[str, object] = {"np": np, "numpy": np, "math": math}
        exec(compile(self.source, f"<python-program:{self.name}>", "exec"), namespace)
        fn = namespace.get(self.name)
        if not callable(fn):
            raise FrontendError(
                f"Program source does not define a function named {self.name!r}"
            )
        return fn

    def __call__(self, **size_overrides: int):
        """Execute the program directly under plain Python/NumPy.

        This is the differential reference for every compiled backend:
        the same canonical source, the same size bindings, interpreted by
        Python itself.
        """
        bound = self.bind(size_overrides) if size_overrides else self
        return bound.load()(**bound.sizes)

    def __str__(self) -> str:
        sizes = ", ".join(f"{k}={v}" for k, v in sorted(self.sizes.items()))
        return f"<PythonProgram {self.name}({sizes})>"


#: What pipeline entry points accept as a Python-frontend source.
ProgramLike = Union[PythonProgram, Callable]


def as_program(source: ProgramLike, sizes: Optional[Mapping[str, int]] = None) -> PythonProgram:
    """Coerce a decorated program or a plain function into a :class:`PythonProgram`.

    Plain functions are canonicalized via :func:`inspect.getsource`; their
    default arguments become the size bindings (overridden by ``sizes``).
    """
    if isinstance(source, PythonProgram):
        return source.bind(sizes) if sizes else source
    if callable(source):
        return program(source).bind(sizes) if sizes else program(source)
    raise FrontendError(
        f"Cannot interpret {type(source).__name__} as a Python program; "
        "pass a @repro.program-decorated function or a plain function"
    )


def _signature_sizes(fn: Callable) -> Dict[str, int]:
    sizes: Dict[str, int] = {}
    for name, parameter in inspect.signature(fn).parameters.items():
        if parameter.kind not in (parameter.POSITIONAL_OR_KEYWORD, parameter.KEYWORD_ONLY):
            raise FrontendError(
                f"Unsupported parameter kind {parameter.kind.name} for {name!r}; "
                "size parameters must be plain keyword-bindable arguments"
            )
        if parameter.default is not inspect.Parameter.empty:
            if not isinstance(parameter.default, int) or isinstance(parameter.default, bool):
                raise FrontendError(
                    f"Default for size parameter {name!r} must be an int, "
                    f"got {parameter.default!r}"
                )
            sizes[name] = parameter.default
    return sizes


def program(fn: Optional[Callable] = None, *, name: Optional[str] = None,
            sizes: Optional[Mapping[str, int]] = None):
    """Decorator turning a NumPy-style function into a :class:`PythonProgram`.

    Bare (``@program``) or parameterized (``@program(sizes={"N": 64})``).
    Size parameters default to the function's own default arguments.
    """
    def wrap(function: Callable) -> PythonProgram:
        try:
            raw = inspect.getsource(function)
        except (OSError, TypeError) as exc:
            raise FrontendError(
                f"Cannot recover the source of {function!r} ({exc}); the Python "
                "frontend parses source text — define the function in a file "
                "or pass the source to PythonProgram directly"
            ) from None
        bindings = _signature_sizes(function)
        bindings.update(sizes or {})
        return PythonProgram(
            name=name or function.__name__,
            source=_canonical_source(raw),
            sizes=bindings,
        )

    return wrap if fn is None else wrap(fn)
