"""Python frontend driver: NumPy-style function → MLIR module.

Mirrors :func:`repro.frontend.compile_c_to_mlir` for the Python frontend
(the reproduction's JaCe-style second entry point): canonicalize the
program, translate its AST into the shared frontend C AST, and run the
*same* lowering the C frontend uses, so both frontends emit the identical
control-centric IR dialect surface by construction.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..dialects.builtin import ModuleOp
from ..frontend.lowering import LoweringError, lower_translation_unit
from ..ir.verifier import verify
from .program import ProgramLike, PythonProgram, as_program
from .translate import python_to_c_ast


def lower_python(source: ProgramLike, sizes: Optional[Mapping[str, int]] = None,
                 run_verifier: bool = True) -> ModuleOp:
    """Lower a NumPy-style Python function to the control-centric IR.

    ``source`` may be a ``@repro.program``-decorated function, a plain
    function (defaults become size bindings), or a :class:`PythonProgram`;
    ``sizes`` rebinds size parameters.  The result is an MLIR module in
    the scf/arith/math/memref dialects — indistinguishable, to every
    downstream pass and backend, from one produced by the C frontend.
    """
    program = as_program(source, sizes)
    unit = python_to_c_ast(program)
    try:
        module = lower_translation_unit(unit)
    except LoweringError as exc:  # pragma: no cover - translator pre-checks
        # The translator is supposed to reject anything lowering cannot
        # handle; surface the residue as a frontend diagnostic anyway.
        from ..errors import FrontendError

        raise FrontendError(
            f"Internal lowering failure for {program.name!r}: {exc}"
        ) from exc
    if run_verifier:
        verify(module)
    return module


def compile_python_to_mlir(program: PythonProgram, run_verifier: bool = True) -> ModuleOp:
    """Pipeline-facing twin of :func:`compile_c_to_mlir` for bound programs."""
    return lower_python(program, run_verifier=run_verifier)
