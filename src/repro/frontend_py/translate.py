"""Python/NumPy AST → the frontend C AST (the shared lowering's input).

The Python frontend deliberately reuses the C frontend's *lowering* stage
(:func:`repro.frontend.lowering.lower_translation_unit`): this module
translates a NumPy-style Python function into the same
:mod:`repro.frontend.c_ast` tree a parsed C kernel produces, so the two
frontends satisfy the control-centric IR contract by construction — one
lowering, one set of Polygeist-style artifacts (scalars spilled to
one-element memrefs, canonical ``scf.for`` loops, ``math`` dialect calls),
one pass/bridge/codegen stack below.

What the translation adds over C is the NumPy surface, desugared eagerly
into structured loops:

* ``np.zeros/ones/full/empty(shape)`` → array declarations plus
  initialization loop nests; shapes are resolved to concrete extents
  through the symbolic engine (``parse_expr`` + size substitution), so
  ``np.zeros((N + 1, 2 * M))`` works for any bound sizes;
* elementwise expressions over arrays and slices (``B[1:-1, 1:-1] =
  0.2 * (A[1:-1, :-2] + ...)``) → loop nests over the slice extent with
  offset subscripts — the memref-style accesses the data-centric passes
  expect;
* reductions — ``np.sum/np.max/np.min/np.mean`` (and the matching array
  methods) → accumulator loops whose ``+=`` stores feed
  ``wcr_detection``;
* Python's arithmetic semantics: ``/`` is true division (integer
  operands are cast to ``double``), ``//`` floors, ``**`` with a small
  constant exponent unrolls to multiplications.

Anything outside the supported subset raises
:class:`repro.errors.FrontendError` naming the offending source line —
never a crash from deep inside lowering.
"""

from __future__ import annotations

import ast as pyast
from typing import Callable, Dict, List, NoReturn, Optional, Sequence, Tuple, Union

from ..errors import FrontendError
from ..frontend import c_ast
from ..symbolic import Integer, SymbolicError, parse_expr
from .program import PythonProgram

_DOUBLE = c_ast.CType("double")
_INT = c_ast.CType("int")

#: NumPy/math function names → C math-library names the shared lowering
#: maps onto the ``math`` dialect (see ``C_MATH_FUNCTIONS``).
_UNARY_MATH = {
    "exp": "exp",
    "log": "log",
    "log2": "log2",
    "sqrt": "sqrt",
    "tanh": "tanh",
    "sin": "sin",
    "cos": "cos",
    "floor": "floor",
    "ceil": "ceil",
    "abs": "fabs",
    "absolute": "fabs",
    "fabs": "fabs",
}

#: Reduction spellings: np.<name>(a) and a.<name>().
_REDUCTIONS = {"sum": "sum", "mean": "mean", "max": "max", "min": "min",
               "amax": "max", "amin": "min"}

_ALLOCATORS = {"zeros", "ones", "empty", "full"}


class _Scalar:
    """A translated scalar expression with its float-ness."""

    __slots__ = ("expr", "is_float")

    def __init__(self, expr: c_ast.Expression, is_float: bool):
        self.expr = expr
        self.is_float = is_float


class _ArrayExpr:
    """A lazy elementwise array value: an extent plus an element builder.

    ``element(indices)`` produces the scalar C expression for one element,
    given loop-index expressions (one per extent dimension).  Array
    elements are always ``double``.
    """

    __slots__ = ("extent", "element")

    def __init__(self, extent: Tuple[int, ...],
                 element: Callable[[Sequence[c_ast.Expression]], c_ast.Expression]):
        self.extent = extent
        self.element = element


_Value = Union[_Scalar, _ArrayExpr]


class _Var:
    """Symbol-table entry: sizes, loop indices, scalars and arrays."""

    __slots__ = ("kind", "is_float", "shape", "value", "line")

    def __init__(self, kind: str, is_float: bool = False,
                 shape: Tuple[int, ...] = (), value: int = 0, line: int = 0):
        self.kind = kind  # 'size' | 'index' | 'scalar' | 'array'
        self.is_float = is_float
        self.shape = shape
        self.value = value
        self.line = line


class Translator:
    """Translate one :class:`PythonProgram` into a C translation unit."""

    def __init__(self, program: PythonProgram):
        self.program = program
        self.source_lines = program.source.split("\n")
        self.scopes: List[Dict[str, _Var]] = [{}]
        #: Names that went out of scope (for "assign it earlier" hints).
        self.retired: Dict[str, int] = {}
        self.block: List[c_ast.Statement] = []
        self._counter = 0
        self._used_names: set = set()
        self.return_type: Optional[c_ast.CType] = None

    # -- diagnostics ---------------------------------------------------------------
    def _error(self, message: str, node=None) -> NoReturn:
        line = getattr(node, "lineno", None)
        source_line = None
        if line is not None and 1 <= line <= len(self.source_lines):
            source_line = self.source_lines[line - 1]
        raise FrontendError(message, line=line, source_line=source_line)

    # -- names ---------------------------------------------------------------------
    def _fresh(self, stem: str) -> str:
        while True:
            name = f"_{stem}{self._counter}"
            self._counter += 1
            if name not in self._used_names:
                self._used_names.add(name)
                return name

    def _lookup(self, name: str) -> Optional[_Var]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    def _declare(self, name: str, var: _Var) -> None:
        self.scopes[-1][name] = var

    def _push(self) -> None:
        self.scopes.append({})

    def _pop(self) -> None:
        for name, var in self.scopes.pop().items():
            self.retired[name] = var.line

    # -- entry point -----------------------------------------------------------------
    def translate(self) -> c_ast.TranslationUnit:
        try:
            tree = pyast.parse(self.program.source)
        except SyntaxError as exc:
            raise FrontendError(
                f"Python syntax error: {exc.msg}", line=exc.lineno,
                source_line=(exc.text or "").rstrip() or None,
            ) from None
        functions = [n for n in tree.body if isinstance(n, pyast.FunctionDef)]
        if len(functions) != 1 or len(tree.body) != 1:
            self._error(
                "A Python program must consist of exactly one function definition",
                tree.body[0] if tree.body else None,
            )
        fn = functions[0]
        for name in pyast.walk(fn):
            if isinstance(name, pyast.Name):
                self._used_names.add(name.id)
            elif isinstance(name, pyast.arg):
                self._used_names.add(name.arg)

        self._bind_sizes(fn)
        self._check_returns(fn)

        body = self._compound(fn.body, top_level=True)
        if self.return_type is None:
            self._error(
                f"Program {fn.name!r} must end with a 'return <scalar>' "
                "statement (the checksum every backend is checked against)", fn,
            )
        unit = c_ast.TranslationUnit()
        unit.functions.append(
            c_ast.FunctionDef(fn.name, self.return_type, [], body)
        )
        return unit

    def _bind_sizes(self, fn: pyast.FunctionDef) -> None:
        arguments = fn.args
        if arguments.vararg or arguments.kwarg or arguments.posonlyargs:
            self._error("Size parameters must be plain named arguments", fn)
        sizes = dict(self.program.sizes)
        names = [a.arg for a in arguments.args + arguments.kwonlyargs]
        missing = [n for n in names if n not in sizes]
        if missing:
            self._error(
                f"Unbound size parameter(s) {', '.join(repr(n) for n in missing)}; "
                "bind them via defaults, @program(sizes=...), or .bind()", fn,
            )
        unknown = sorted(set(sizes) - set(names))
        if unknown:
            self._error(
                f"Size binding(s) {', '.join(repr(n) for n in unknown)} do not "
                f"match any parameter of {fn.name!r} (parameters: {names})", fn,
            )
        for param in names:
            self._declare(param, _Var("size", value=int(sizes[param]), line=fn.lineno))

    def _check_returns(self, fn: pyast.FunctionDef) -> None:
        last = fn.body[-1] if fn.body else None
        for node in pyast.walk(fn):
            if isinstance(node, pyast.Return) and node is not last:
                self._error(
                    "'return' is only supported as the final statement of the "
                    "program (early returns cannot be expressed in the "
                    "structured control-flow subset)", node,
                )

    # -- statements --------------------------------------------------------------------
    def _compound(self, statements: List[pyast.stmt], top_level: bool = False) -> c_ast.Compound:
        outer = self.block
        self.block = []
        for index, statement in enumerate(statements):
            if top_level and index == 0 and self._is_docstring(statement):
                continue
            self._statement(statement)
        compound = c_ast.Compound(self.block)
        self.block = outer
        return compound

    @staticmethod
    def _is_docstring(node: pyast.stmt) -> bool:
        return (isinstance(node, pyast.Expr)
                and isinstance(node.value, pyast.Constant)
                and isinstance(node.value.value, str))

    def _statement(self, node: pyast.stmt) -> None:
        if isinstance(node, pyast.Assign):
            self._stmt_assign(node)
        elif isinstance(node, pyast.AugAssign):
            self._stmt_aug_assign(node)
        elif isinstance(node, pyast.AnnAssign):
            if node.value is None:
                self._error("Annotations without a value are not supported", node)
            self._assign_target(node.target, node.value, node)
        elif isinstance(node, pyast.For):
            self._stmt_for(node)
        elif isinstance(node, pyast.While):
            self._stmt_while(node)
        elif isinstance(node, pyast.If):
            self._stmt_if(node)
        elif isinstance(node, pyast.Return):
            self._stmt_return(node)
        elif isinstance(node, pyast.Expr):
            if self._is_docstring(node):
                return
            self._error(
                "Expression statements have no effect in the compiled subset "
                "(assign the result to a name)", node,
            )
        elif isinstance(node, pyast.Pass):
            return
        else:
            self._error(
                f"Unsupported statement {type(node).__name__!r}; the Python "
                "frontend supports assignments, for-range loops, while, "
                "if/elif/else and a final return", node,
            )

    # -- assignment ---------------------------------------------------------------------
    def _stmt_assign(self, node: pyast.Assign) -> None:
        if len(node.targets) != 1:
            self._error("Chained assignment (a = b = ...) is not supported", node)
        self._assign_target(node.targets[0], node.value, node)

    def _assign_target(self, target: pyast.expr, value: pyast.expr, node: pyast.stmt) -> None:
        if isinstance(target, pyast.Name):
            self._assign_name(target, value, node)
        elif isinstance(target, pyast.Subscript):
            self._assign_subscript(target, value, node)
        elif isinstance(target, (pyast.Tuple, pyast.List)):
            self._error("Tuple unpacking is not supported", node)
        else:
            self._error(
                f"Unsupported assignment target {type(target).__name__!r}", node
            )

    def _assign_name(self, target: pyast.Name, value: pyast.expr, node: pyast.stmt) -> None:
        name = target.id
        existing = self._lookup(name)
        if existing is not None and existing.kind == "size":
            self._error(f"Cannot assign to size parameter {name!r}", node)
        if existing is not None and existing.kind == "index":
            self._error(f"Cannot assign to loop variable {name!r}", node)

        if self._allocator_name(value) is not None:
            self._alloc_array(name, value, node)
            return

        translated = self._expression(value)
        if isinstance(translated, _ArrayExpr):
            if existing is None:
                if not name.isidentifier() or not name.isascii():
                    self._error(f"Array name {name!r} is not a valid identifier", node)
                self.block.append(c_ast.VarDecl(
                    name, _DOUBLE,
                    array_dims=[c_ast.IntLiteral(d) for d in translated.extent],
                ))
                self._declare(name, _Var("array", is_float=True,
                                         shape=translated.extent, line=node.lineno))
                self._materialize(self._whole_view(name, translated.extent),
                                  translated, "")
            else:
                if existing.kind != "array":
                    self._error(
                        f"Cannot assign an array expression to scalar {name!r}", node
                    )
                if existing.shape != translated.extent:
                    self._error(
                        f"Shape mismatch assigning to {name!r}: target has shape "
                        f"{existing.shape}, value has shape {translated.extent}", node,
                    )
                translated = self._dealias(name, value, translated)
                self._materialize(self._whole_view(name, existing.shape), translated, "")
            return

        # Scalar value.
        if existing is None:
            if not name.isidentifier() or not name.isascii():
                self._error(f"Scalar name {name!r} is not a valid identifier", node)
            ctype = _DOUBLE if translated.is_float else _INT
            self.block.append(c_ast.VarDecl(name, ctype, init=translated.expr))
            self._declare(name, _Var("scalar", is_float=translated.is_float,
                                     line=node.lineno))
            return
        if existing.kind != "scalar":
            self._error(f"Cannot assign a scalar to array {name!r}", node)
        if translated.is_float and not existing.is_float:
            self._error(
                f"Scalar {name!r} was initialized as an integer but is "
                "re-assigned a float; initialize it with a float literal "
                "(e.g. 0.0)", node,
            )
        self.block.append(c_ast.ExpressionStatement(
            c_ast.Assignment("", c_ast.Identifier(name), translated.expr)
        ))

    def _assign_subscript(self, target: pyast.Subscript, value: pyast.expr,
                          node: pyast.stmt, op: str = "") -> None:
        name, index_nodes = self._subscript_parts(target)
        if self._has_slice(index_nodes):
            view = self._view(name, index_nodes, target)
            translated = self._expression(value)
            translated = self._dealias(name, value, translated)
            self._materialize(view, translated, op, node)
            return
        element = self._element_target(name, index_nodes, target)
        translated = self._expression(value)
        if isinstance(translated, _ArrayExpr):
            self._error("Cannot store an array expression into a single element", node)
        self.block.append(c_ast.ExpressionStatement(
            c_ast.Assignment(op, element, translated.expr)
        ))

    _AUG_OPS = {pyast.Add: "+", pyast.Sub: "-", pyast.Mult: "*", pyast.Div: "/"}

    def _stmt_aug_assign(self, node: pyast.AugAssign) -> None:
        op = self._AUG_OPS.get(type(node.op))
        if op is None:
            self._error(
                f"Unsupported augmented assignment operator "
                f"{type(node.op).__name__!r} (use +=, -=, *= or /=)", node,
            )
        target = node.target
        if isinstance(target, pyast.Name):
            name = target.id
            var = self._lookup(name)
            if var is None:
                self._hint_undefined(name, node)
            if var.kind == "array":
                view = self._whole_view(name, var.shape)
                translated = self._dealias(name, node.value,
                                           self._expression(node.value))
                self._materialize(view, translated, op, node)
                return
            if var.kind != "scalar":
                self._error(f"Cannot update {var.kind} {name!r} in place", node)
            translated = self._expression(node.value)
            if isinstance(translated, _ArrayExpr):
                self._error(f"Cannot add an array into scalar {name!r}", node)
            if (translated.is_float or op == "/") and not var.is_float:
                self._error(
                    f"Scalar {name!r} is an integer but the update produces a "
                    "float; initialize it with a float literal (e.g. 0.0)", node,
                )
            self.block.append(c_ast.ExpressionStatement(
                c_ast.Assignment(op, c_ast.Identifier(name), translated.expr)
            ))
            return
        if isinstance(target, pyast.Subscript):
            self._assign_subscript(target, node.value, node, op=op)
            return
        self._error(
            f"Unsupported augmented-assignment target {type(target).__name__!r}",
            node,
        )

    # -- arrays: allocation, views, materialization ----------------------------------------
    def _allocator_name(self, node: pyast.expr) -> Optional[str]:
        if not isinstance(node, pyast.Call):
            return None
        callee = node.func
        if (isinstance(callee, pyast.Attribute)
                and isinstance(callee.value, pyast.Name)
                and callee.value.id in ("np", "numpy")
                and callee.attr in _ALLOCATORS):
            return callee.attr
        return None

    def _alloc_array(self, name: str, call: pyast.Call, node: pyast.stmt) -> None:
        kind = self._allocator_name(call)
        if self._lookup(name) is not None:
            self._error(
                f"Array {name!r} is already defined; allocate each array once "
                "(overwrite it elementwise instead)", node,
            )
        for keyword in call.keywords:
            if keyword.arg == "dtype":
                if not self._is_float64_dtype(keyword.value):
                    self._error(
                        "Only dtype=np.float64 arrays are supported", node
                    )
            else:
                self._error(
                    f"Unsupported np.{kind} keyword {keyword.arg!r}", node
                )
        expected = 2 if kind == "full" else 1
        if len(call.args) != expected:
            self._error(
                f"np.{kind} takes {expected} positional argument(s) "
                f"(shape{', fill value' if kind == 'full' else ''})", node,
            )
        shape = self._shape(call.args[0])
        self.block.append(c_ast.VarDecl(
            name, _DOUBLE, array_dims=[c_ast.IntLiteral(d) for d in shape]
        ))
        self._declare(name, _Var("array", is_float=True, shape=shape, line=node.lineno))
        if kind == "empty":
            return
        if kind == "full":
            fill = self._expression(call.args[1])
            if isinstance(fill, _ArrayExpr):
                self._error("np.full's fill value must be a scalar", node)
            fill_expr = fill.expr
        else:
            fill_expr = c_ast.FloatLiteral(1.0 if kind == "ones" else 0.0)
        view = self._whole_view(name, shape)
        self._materialize(view, _ArrayExpr(shape, lambda idx: fill_expr), "")

    @staticmethod
    def _is_float64_dtype(node: pyast.expr) -> bool:
        if (isinstance(node, pyast.Attribute) and isinstance(node.value, pyast.Name)
                and node.value.id in ("np", "numpy") and node.attr == "float64"):
            return True
        return isinstance(node, pyast.Constant) and node.value == "float64"

    def _shape(self, node: pyast.expr) -> Tuple[int, ...]:
        elements = node.elts if isinstance(node, (pyast.Tuple, pyast.List)) else [node]
        shape = []
        for element in elements:
            size = self._const_int(element)
            if size <= 0:
                self._error(f"Array dimensions must be positive, got {size}", element)
            shape.append(size)
        return tuple(shape)

    def _const_int(self, node: pyast.expr) -> int:
        """Resolve a compile-time integer through the symbolic engine.

        Shape and slice expressions may reference size parameters
        (``np.zeros((N + 1, 2 * M))``): the expression is parsed with
        :func:`repro.symbolic.parse_expr` and the program's size bindings
        substituted; whatever does not fold to an integer is an error
        naming the free symbols.
        """
        if isinstance(node, pyast.Constant) and isinstance(node.value, int) \
                and not isinstance(node.value, bool):
            return node.value
        try:
            text = pyast.unparse(node)
        except Exception:  # pragma: no cover - unparse covers all expr nodes
            self._error("Unsupported shape/bound expression", node)
        try:
            expr = parse_expr(text)
        except SymbolicError:
            self._error(
                f"Shape/slice expression {text!r} is not a supported integer "
                "expression", node,
            )
        sizes = {
            name: var.value
            for scope in self.scopes for name, var in scope.items()
            if var.kind == "size"
        }
        folded = expr.subs(sizes)
        if not isinstance(folded, Integer):
            free = sorted(str(s) for s in folded.free_symbols())
            self._error(
                f"Shape/slice expression {text!r} must be a compile-time "
                f"constant; unresolved symbol(s): {', '.join(free)} "
                "(only size parameters may appear here)", node,
            )
        return int(folded.value)

    def _subscript_parts(self, node: pyast.Subscript) -> Tuple[str, List[pyast.expr]]:
        if not isinstance(node.value, pyast.Name):
            self._error(
                "Subscripts must index a named array directly "
                "(use A[i, j] rather than intermediate views)", node,
            )
        index = node.slice
        indices = list(index.elts) if isinstance(index, pyast.Tuple) else [index]
        return node.value.id, indices

    @staticmethod
    def _has_slice(index_nodes: List[pyast.expr]) -> bool:
        return any(isinstance(index, pyast.Slice) for index in index_nodes)

    def _array_var(self, name: str, node) -> _Var:
        var = self._lookup(name)
        if var is None:
            self._hint_undefined(name, node)
        if var.kind != "array":
            self._error(f"{name!r} is not an array (it is a {var.kind})", node)
        return var

    def _element_target(self, name: str, index_nodes: List[pyast.expr], node) -> c_ast.Expression:
        var = self._array_var(name, node)
        if len(index_nodes) != len(var.shape):
            self._error(
                f"{name!r} has {len(var.shape)} dimension(s) but is indexed "
                f"with {len(index_nodes)}", node,
            )
        target: c_ast.Expression = c_ast.Identifier(name)
        for index in index_nodes:
            target = c_ast.Subscript(target, self._index_expr(index))
        return target

    def _index_expr(self, node: pyast.expr) -> c_ast.Expression:
        translated = self._expression(node)
        if isinstance(translated, _ArrayExpr):
            self._error("Array-valued indices are not supported", node)
        if translated.is_float:
            self._error("Array indices must be integers", node)
        return translated.expr

    def _view(self, name: str, index_nodes: List[pyast.expr], node) -> _ArrayExpr:
        """A (possibly sliced) view of a named array as a lazy array value."""
        var = self._array_var(name, node)
        if len(index_nodes) > len(var.shape):
            self._error(
                f"{name!r} has {len(var.shape)} dimension(s) but is indexed "
                f"with {len(index_nodes)}", node,
            )
        # Trailing unindexed dimensions are full slices (NumPy semantics).
        padded = index_nodes + [None] * (len(var.shape) - len(index_nodes))
        dims: List[Tuple[str, object, int]] = []
        extent: List[int] = []
        for index, size in zip(padded, var.shape):
            if index is None or isinstance(index, pyast.Slice):
                start, length = self._slice_range(index, size, node)
                dims.append(("range", start, length))
                extent.append(length)
            else:
                dims.append(("index", self._index_expr(index), 0))

        def element(indices: Sequence[c_ast.Expression]) -> c_ast.Expression:
            it = iter(indices)
            expr: c_ast.Expression = c_ast.Identifier(name)
            for kind, payload, _ in dims:
                if kind == "index":
                    expr = c_ast.Subscript(expr, payload)
                else:
                    loop_var = next(it)
                    offset = (loop_var if payload == 0 else
                              c_ast.BinaryOp("+", c_ast.IntLiteral(payload), loop_var))
                    expr = c_ast.Subscript(expr, offset)
            return expr

        return _ArrayExpr(tuple(extent), element)

    def _slice_range(self, node: Optional[pyast.Slice], size: int, owner) -> Tuple[int, int]:
        if node is None:
            return 0, size
        if node.step is not None and self._const_int(node.step) != 1:
            self._error("Only unit-step slices are supported", node)
        start = 0 if node.lower is None else self._const_int(node.lower)
        stop = size if node.upper is None else self._const_int(node.upper)
        if start < 0:
            start += size
        if stop < 0:
            stop += size
        start = max(0, min(start, size))
        stop = max(0, min(stop, size))
        if stop <= start:
            self._error(
                f"Slice selects no elements (start {start}, stop {stop} on a "
                f"dimension of size {size})", node,
            )
        return start, stop - start

    def _whole_view(self, name: str, shape: Tuple[int, ...]) -> _ArrayExpr:
        def element(indices: Sequence[c_ast.Expression]) -> c_ast.Expression:
            expr: c_ast.Expression = c_ast.Identifier(name)
            for index in indices:
                expr = c_ast.Subscript(expr, index)
            return expr

        return _ArrayExpr(shape, element)

    def _dealias(self, name: str, value_node: pyast.expr, value: _Value) -> _Value:
        """Restore NumPy's evaluate-RHS-first semantics for aliased stores.

        ``A[1:-1] = 0.5 * (A[:-2] + A[2:])`` must read the *old* A
        everywhere — NumPy materializes the RHS before storing, while our
        loop nest would read elements the same nest already overwrote.
        When the RHS mentions the target array, stage it through a
        temporary first (a later copy-elimination pass may fuse it back
        when the accesses do not actually overlap).
        """
        if not isinstance(value, _ArrayExpr):
            return value
        if not any(isinstance(n, pyast.Name) and n.id == name
                   for n in pyast.walk(value_node)):
            return value
        temp = self._fresh("tmp")
        self.block.append(c_ast.VarDecl(
            temp, _DOUBLE, array_dims=[c_ast.IntLiteral(d) for d in value.extent]
        ))
        self._materialize(self._whole_view(temp, value.extent), value, "")
        return self._whole_view(temp, value.extent)

    def _materialize(self, target: _ArrayExpr, value: _Value, op: str,
                     node=None) -> None:
        """Emit the loop nest storing an array value into a view."""
        if isinstance(value, _Scalar):
            scalar_expr = value.expr
            value = _ArrayExpr(target.extent, lambda idx: scalar_expr)
        if value.extent != target.extent:
            self._error(
                f"Shape mismatch: target has shape {target.extent}, value has "
                f"shape {value.extent}", node,
            )

        def body(indices: Sequence[c_ast.Expression]) -> List[c_ast.Statement]:
            return [c_ast.ExpressionStatement(
                c_ast.Assignment(op, target.element(indices), value.element(indices))
            )]

        self._emit_loops(target.extent, body)

    def _emit_loops(self, extent: Tuple[int, ...],
                    build_body: Callable[[Sequence[c_ast.Expression]], List[c_ast.Statement]]
                    ) -> None:
        names = [self._fresh("i") for _ in extent]
        indices = [c_ast.Identifier(n) for n in names]
        statement: c_ast.Statement = c_ast.Compound(build_body(indices))
        for name, size in reversed(list(zip(names, extent))):
            statement = c_ast.For(
                init=c_ast.VarDecl(name, _INT, init=c_ast.IntLiteral(0)),
                condition=c_ast.BinaryOp("<", c_ast.Identifier(name),
                                         c_ast.IntLiteral(size)),
                post=c_ast.IncDec("++", c_ast.Identifier(name)),
                body=c_ast.Compound([statement]),
            )
        self.block.append(statement)

    # -- control flow -----------------------------------------------------------------------
    def _stmt_for(self, node: pyast.For) -> None:
        if node.orelse:
            self._error("'for ... else' is not supported", node)
        if not isinstance(node.target, pyast.Name):
            self._error("Loop targets must be plain names", node)
        name = node.target.id
        if self._lookup(name) is not None:
            self._error(
                f"Loop variable {name!r} shadows an existing name; pick a "
                "fresh name per loop", node,
            )
        call = node.iter
        if not (isinstance(call, pyast.Call) and isinstance(call.func, pyast.Name)
                and call.func.id == "range"):
            self._error(
                "Only 'for <name> in range(...)' loops are supported "
                "(iterating arrays directly is not)", node,
            )
        if call.keywords or not 1 <= len(call.args) <= 3:
            self._error("range() takes 1 to 3 positional arguments", node)

        step = 1
        if len(call.args) == 3:
            step = self._const_int(call.args[2])
            if step == 0:
                self._error("range() step must not be zero", call.args[2])
        if len(call.args) == 1:
            start_expr: c_ast.Expression = c_ast.IntLiteral(0)
            stop_node = call.args[0]
        else:
            start_expr = self._index_expr(call.args[0])
            stop_node = call.args[1]
        stop_expr = self._index_expr(stop_node)

        comparison = "<" if step > 0 else ">"
        post_op, amount = ("+", step) if step > 0 else ("-", -step)
        self._push()
        self._declare(name, _Var("index", line=node.lineno))
        body = self._compound(node.body)
        self._pop()
        self.block.append(c_ast.For(
            init=c_ast.VarDecl(name, _INT, init=start_expr),
            condition=c_ast.BinaryOp(comparison, c_ast.Identifier(name), stop_expr),
            post=c_ast.Assignment(post_op, c_ast.Identifier(name),
                                  c_ast.IntLiteral(amount)),
            body=body,
        ))

    def _stmt_while(self, node: pyast.While) -> None:
        if node.orelse:
            self._error("'while ... else' is not supported", node)
        condition = self._condition(node.test)
        self._push()
        body = self._compound(node.body)
        self._pop()
        self.block.append(c_ast.While(condition, body))

    def _stmt_if(self, node: pyast.If) -> None:
        condition = self._condition(node.test)
        self._push()
        then_body = self._compound(node.body)
        self._pop()
        else_body: Optional[c_ast.Statement] = None
        if node.orelse:
            self._push()
            else_body = self._compound(node.orelse)
            self._pop()
        self.block.append(c_ast.If(condition, then_body, else_body))

    def _condition(self, node: pyast.expr) -> c_ast.Expression:
        translated = self._expression(node)
        if isinstance(translated, _ArrayExpr):
            self._error(
                "Conditions must be scalar (reduce the array first, e.g. "
                "with np.sum)", node,
            )
        return translated.expr

    def _stmt_return(self, node: pyast.Return) -> None:
        if node.value is None:
            self._error(
                "The program must return a scalar checksum "
                "(bare 'return' returns nothing)", node,
            )
        translated = self._expression(node.value)
        if isinstance(translated, _ArrayExpr):
            self._error(
                "Programs return a scalar checksum; reduce the array first "
                "(e.g. return float(np.sum(out)))", node,
            )
        self.return_type = _DOUBLE if translated.is_float else _INT
        self.block.append(c_ast.Return(translated.expr))

    # -- expressions -----------------------------------------------------------------------
    def _expression(self, node: pyast.expr) -> _Value:
        if isinstance(node, pyast.Constant):
            return self._constant(node)
        if isinstance(node, pyast.Name):
            return self._name(node)
        if isinstance(node, pyast.BinOp):
            return self._binop(node)
        if isinstance(node, pyast.UnaryOp):
            return self._unary(node)
        if isinstance(node, pyast.Compare):
            return self._compare(node)
        if isinstance(node, pyast.BoolOp):
            return self._boolop(node)
        if isinstance(node, pyast.Call):
            return self._call(node)
        if isinstance(node, pyast.Subscript):
            return self._subscript(node)
        if isinstance(node, pyast.IfExp):
            return self._ifexp(node)
        self._error(
            f"Unsupported expression {type(node).__name__!r}", node
        )

    def _constant(self, node: pyast.Constant) -> _Scalar:
        value = node.value
        if isinstance(value, bool):
            return _Scalar(c_ast.IntLiteral(int(value)), False)
        if isinstance(value, int):
            return _Scalar(c_ast.IntLiteral(value), False)
        if isinstance(value, float):
            return _Scalar(c_ast.FloatLiteral(value), True)
        self._error(f"Unsupported constant {value!r}", node)

    def _hint_undefined(self, name: str, node) -> NoReturn:
        if name in self.retired:
            self._error(
                f"{name!r} is not in scope here: it was first assigned inside "
                f"a conditional or loop (line {self.retired[name]}); assign "
                "it before entering that block", node,
            )
        self._error(f"Undefined name {name!r}", node)

    def _name(self, node: pyast.Name) -> _Value:
        var = self._lookup(node.id)
        if var is None:
            self._hint_undefined(node.id, node)
        if var.kind == "size":
            return _Scalar(c_ast.IntLiteral(var.value), False)
        if var.kind == "index":
            return _Scalar(c_ast.Identifier(node.id), False)
        if var.kind == "scalar":
            return _Scalar(c_ast.Identifier(node.id), var.is_float)
        return self._whole_view(node.id, var.shape)

    _BIN_OPS = {pyast.Add: "+", pyast.Sub: "-", pyast.Mult: "*", pyast.Div: "/",
                pyast.FloorDiv: "//", pyast.Mod: "%", pyast.Pow: "**"}

    def _binop(self, node: pyast.BinOp) -> _Value:
        op = self._BIN_OPS.get(type(node.op))
        if op is None:
            self._error(
                f"Unsupported binary operator {type(node.op).__name__!r}", node
            )
        lhs = self._expression(node.left)
        rhs = self._expression(node.right)
        if isinstance(lhs, _ArrayExpr) or isinstance(rhs, _ArrayExpr):
            return self._elementwise_binop(op, lhs, rhs, node)
        return self._scalar_binop(op, lhs, rhs, node)

    def _scalar_binop(self, op: str, lhs: _Scalar, rhs: _Scalar, node) -> _Scalar:
        if op == "/":
            # Python 3 semantics: '/' is true division even on integers.
            left = lhs.expr if lhs.is_float else c_ast.Cast(_DOUBLE, lhs.expr)
            return _Scalar(c_ast.BinaryOp("/", left, rhs.expr), True)
        if op == "//":
            if lhs.is_float or rhs.is_float:
                left = lhs.expr if lhs.is_float else c_ast.Cast(_DOUBLE, lhs.expr)
                return _Scalar(
                    c_ast.Call("floor", [c_ast.BinaryOp("/", left, rhs.expr)]), True
                )
            return _Scalar(c_ast.BinaryOp("/", lhs.expr, rhs.expr), False)
        if op == "%":
            if lhs.is_float or rhs.is_float:
                self._error("Float modulo is not supported", node)
            return _Scalar(c_ast.BinaryOp("%", lhs.expr, rhs.expr), False)
        if op == "**":
            exponent = self._small_int_literal(node.right)
            if exponent is not None and 2 <= exponent <= 4:
                expr = lhs.expr
                for _ in range(exponent - 1):
                    expr = c_ast.BinaryOp("*", expr, lhs.expr)
                return _Scalar(expr, lhs.is_float)
            return _Scalar(c_ast.Call("pow", [lhs.expr, rhs.expr]), True)
        is_float = lhs.is_float or rhs.is_float
        return _Scalar(c_ast.BinaryOp(op, lhs.expr, rhs.expr), is_float)

    @staticmethod
    def _small_int_literal(node: pyast.expr) -> Optional[int]:
        if isinstance(node, pyast.Constant) and isinstance(node.value, int) \
                and not isinstance(node.value, bool):
            return node.value
        return None

    def _elementwise_binop(self, op: str, lhs: _Value, rhs: _Value, node) -> _ArrayExpr:
        if op not in ("+", "-", "*", "/", "**"):
            self._error(
                f"Operator {op!r} is not supported elementwise on arrays", node
            )
        operands = []
        extent: Optional[Tuple[int, ...]] = None
        for value in (lhs, rhs):
            if isinstance(value, _ArrayExpr):
                if extent is not None and value.extent != extent:
                    self._error(
                        f"Shape mismatch in elementwise {op!r}: {extent} vs "
                        f"{value.extent}", node,
                    )
                extent = value.extent
                operands.append(value)
            else:
                operands.append(value)
        assert extent is not None

        def element(indices: Sequence[c_ast.Expression]) -> c_ast.Expression:
            sides = [
                _Scalar(v.element(indices), True) if isinstance(v, _ArrayExpr) else v
                for v in operands
            ]
            return self._scalar_binop(op, sides[0], sides[1], node).expr

        return _ArrayExpr(extent, element)

    def _unary(self, node: pyast.UnaryOp) -> _Value:
        operand = self._expression(node.operand)
        if isinstance(node.op, pyast.USub):
            if isinstance(operand, _ArrayExpr):
                return _ArrayExpr(
                    operand.extent,
                    lambda idx: c_ast.UnaryOp("-", operand.element(idx)),
                )
            return _Scalar(c_ast.UnaryOp("-", operand.expr), operand.is_float)
        if isinstance(node.op, pyast.UAdd):
            return operand
        if isinstance(node.op, pyast.Not):
            if isinstance(operand, _ArrayExpr):
                self._error("'not' is not supported on arrays", node)
            return _Scalar(c_ast.UnaryOp("!", operand.expr), False)
        self._error(
            f"Unsupported unary operator {type(node.op).__name__!r}", node
        )

    _CMP_OPS = {pyast.Lt: "<", pyast.LtE: "<=", pyast.Gt: ">", pyast.GtE: ">=",
                pyast.Eq: "==", pyast.NotEq: "!="}

    def _compare(self, node: pyast.Compare) -> _Scalar:
        if len(node.ops) != 1:
            self._error("Chained comparisons (a < b < c) are not supported", node)
        op = self._CMP_OPS.get(type(node.ops[0]))
        if op is None:
            self._error(
                f"Unsupported comparison {type(node.ops[0]).__name__!r}", node
            )
        lhs = self._expression(node.left)
        rhs = self._expression(node.comparators[0])
        if isinstance(lhs, _ArrayExpr) or isinstance(rhs, _ArrayExpr):
            self._error("Comparisons on whole arrays are not supported", node)
        return _Scalar(c_ast.BinaryOp(op, lhs.expr, rhs.expr), False)

    def _boolop(self, node: pyast.BoolOp) -> _Scalar:
        op = "&&" if isinstance(node.op, pyast.And) else "||"
        values = []
        for value_node in node.values:
            value = self._expression(value_node)
            if isinstance(value, _ArrayExpr):
                self._error("Boolean operators are not supported on arrays", node)
            values.append(value.expr)
        expr = values[0]
        for value in values[1:]:
            expr = c_ast.BinaryOp(op, expr, value)
        return _Scalar(expr, False)

    def _ifexp(self, node: pyast.IfExp) -> _Scalar:
        condition = self._condition(node.test)
        then_value = self._expression(node.body)
        else_value = self._expression(node.orelse)
        if isinstance(then_value, _ArrayExpr) or isinstance(else_value, _ArrayExpr):
            self._error("Conditional expressions must be scalar", node)
        return _Scalar(
            c_ast.Ternary(condition, then_value.expr, else_value.expr),
            then_value.is_float or else_value.is_float,
        )

    # -- subscript reads ---------------------------------------------------------------------
    def _subscript(self, node: pyast.Subscript) -> _Value:
        name, index_nodes = self._subscript_parts(node)
        if self._has_slice(index_nodes):
            return self._view(name, index_nodes, node)
        var = self._array_var(name, node)
        if len(index_nodes) < len(var.shape):
            return self._view(name, index_nodes, node)
        return _Scalar(self._element_target(name, index_nodes, node), True)

    # -- calls -------------------------------------------------------------------------------
    def _callee(self, node: pyast.expr) -> Tuple[Optional[str], str]:
        if isinstance(node, pyast.Name):
            return None, node.id
        if isinstance(node, pyast.Attribute) and isinstance(node.value, pyast.Name):
            owner = node.value.id
            if owner in ("np", "numpy"):
                return "np", node.attr
            if owner == "math":
                return "math", node.attr
            var = self._lookup(owner)
            if var is not None and var.kind == "array":
                return f"array:{owner}", node.attr
            self._error(
                f"Unsupported call target {owner!r}.{node.attr} (only np.*, "
                "math.*, array.sum/max/min and builtins are callable)", node,
            )
        self._error("Unsupported call form", node)

    def _call(self, node: pyast.Call) -> _Value:
        module, fname = self._callee(node.func)
        if node.keywords:
            self._error(
                f"Keyword arguments are not supported in calls to {fname!r}", node
            )
        if module is not None and module.startswith("array:"):
            array_name = module.split(":", 1)[1]
            if fname not in _REDUCTIONS:
                self._error(
                    f"Unsupported array method {fname!r} (supported: "
                    f"{', '.join(sorted(set(_REDUCTIONS)))} )", node,
                )
            if node.args:
                self._error(f"{array_name}.{fname}() takes no arguments", node)
            var = self._array_var(array_name, node)
            return self._reduction(_REDUCTIONS[fname],
                                   self._whole_view(array_name, var.shape), node)

        if module == "np":
            return self._np_call(fname, node)
        if module == "math":
            return self._math_call(fname, node)
        return self._builtin_call(fname, node)

    def _np_call(self, fname: str, node: pyast.Call) -> _Value:
        if fname in _ALLOCATORS:
            self._error(
                f"np.{fname} is only supported as a direct assignment "
                f"(name = np.{fname}(...)); arrays must be named", node,
            )
        if fname in _REDUCTIONS:
            value = self._one_arg(node, f"np.{fname}")
            if isinstance(value, _Scalar):
                self._error(f"np.{fname} expects an array argument", node)
            return self._reduction(_REDUCTIONS[fname], value, node)
        if fname in _UNARY_MATH:
            value = self._one_arg(node, f"np.{fname}")
            return self._unary_math(_UNARY_MATH[fname], value)
        if fname in ("maximum", "minimum"):
            if len(node.args) != 2:
                self._error(f"np.{fname} takes exactly two arguments", node)
            lhs = self._expression(node.args[0])
            rhs = self._expression(node.args[1])
            return self._extremum(fname == "maximum", lhs, rhs, node)
        if fname == "power":
            if len(node.args) != 2:
                self._error("np.power takes exactly two arguments", node)
            lhs = self._expression(node.args[0])
            rhs = self._expression(node.args[1])
            if isinstance(lhs, _ArrayExpr) or isinstance(rhs, _ArrayExpr):
                return self._elementwise_binop("**", lhs, rhs, node)
            return self._scalar_binop("**", lhs, rhs, node)
        self._error(
            f"Unsupported NumPy function np.{fname} (supported: allocation "
            f"{sorted(_ALLOCATORS)}, elementwise {sorted(_UNARY_MATH)}, "
            f"maximum/minimum/power, reductions {sorted(set(_REDUCTIONS))})",
            node,
        )

    def _math_call(self, fname: str, node: pyast.Call) -> _Scalar:
        table = dict(_UNARY_MATH, pow=None)
        if fname == "pow":
            if len(node.args) != 2:
                self._error("math.pow takes exactly two arguments", node)
            lhs = self._expression(node.args[0])
            rhs = self._expression(node.args[1])
            if isinstance(lhs, _ArrayExpr) or isinstance(rhs, _ArrayExpr):
                self._error("math.pow operates on scalars (use np.power)", node)
            return _Scalar(c_ast.Call("pow", [lhs.expr, rhs.expr]), True)
        if fname not in table or table[fname] is None:
            self._error(f"Unsupported math function math.{fname}", node)
        value = self._one_arg(node, f"math.{fname}")
        if isinstance(value, _ArrayExpr):
            self._error(
                f"math.{fname} operates on scalars (use np.{fname} for arrays)",
                node,
            )
        return _Scalar(c_ast.Call(table[fname], [value.expr]), True)

    def _builtin_call(self, fname: str, node: pyast.Call) -> _Value:
        if fname == "range":
            self._error("range() is only supported as a for-loop iterator", node)
        if fname in ("float", "int"):
            value = self._one_arg(node, fname)
            if isinstance(value, _ArrayExpr):
                self._error(f"{fname}() expects a scalar", node)
            target = _DOUBLE if fname == "float" else _INT
            return _Scalar(c_ast.Cast(target, value.expr), fname == "float")
        if fname == "abs":
            value = self._one_arg(node, "abs")
            return self._unary_math("fabs", value)
        if fname == "len":
            value = self._one_arg(node, "len")
            if isinstance(value, _Scalar):
                self._error("len() expects an array", node)
            return _Scalar(c_ast.IntLiteral(value.extent[0]), False)
        if fname in ("min", "max"):
            if len(node.args) != 2:
                self._error(
                    f"builtin {fname}() supports exactly two scalar arguments "
                    f"(use np.{fname} for array reductions)", node,
                )
            lhs = self._expression(node.args[0])
            rhs = self._expression(node.args[1])
            if isinstance(lhs, _ArrayExpr) or isinstance(rhs, _ArrayExpr):
                self._error(
                    f"builtin {fname}() operates on scalars (use np.maximum/"
                    "np.minimum elementwise or np.max/np.min to reduce)", node,
                )
            return self._extremum(fname == "max", lhs, rhs, node)
        self._error(f"Unsupported function {fname!r}", node)

    def _one_arg(self, node: pyast.Call, label: str) -> _Value:
        if len(node.args) != 1:
            self._error(f"{label} takes exactly one argument", node)
        return self._expression(node.args[0])

    def _unary_math(self, cname: str, value: _Value) -> _Value:
        if isinstance(value, _ArrayExpr):
            return _ArrayExpr(
                value.extent,
                lambda idx: c_ast.Call(cname, [value.element(idx)]),
            )
        return _Scalar(c_ast.Call(cname, [value.expr]), True)

    def _extremum(self, is_max: bool, lhs: _Value, rhs: _Value, node) -> _Value:
        comparison = ">" if is_max else "<"

        def pick(left: c_ast.Expression, right: c_ast.Expression) -> c_ast.Expression:
            return c_ast.Ternary(c_ast.BinaryOp(comparison, left, right), left, right)

        if isinstance(lhs, _ArrayExpr) or isinstance(rhs, _ArrayExpr):
            extent = lhs.extent if isinstance(lhs, _ArrayExpr) else rhs.extent
            for value in (lhs, rhs):
                if isinstance(value, _ArrayExpr) and value.extent != extent:
                    self._error(
                        f"Shape mismatch: {lhs.extent if isinstance(lhs, _ArrayExpr) else 'scalar'}"
                        f" vs {rhs.extent if isinstance(rhs, _ArrayExpr) else 'scalar'}",
                        node,
                    )

            def element(indices: Sequence[c_ast.Expression]) -> c_ast.Expression:
                left = lhs.element(indices) if isinstance(lhs, _ArrayExpr) else lhs.expr
                right = rhs.element(indices) if isinstance(rhs, _ArrayExpr) else rhs.expr
                return pick(left, right)

            return _ArrayExpr(extent, element)
        return _Scalar(pick(lhs.expr, rhs.expr), lhs.is_float or rhs.is_float)

    def _reduction(self, kind: str, value: _ArrayExpr, node) -> _Scalar:
        """Emit accumulator + loop nest for a full reduction; value is the scalar."""
        accumulator = self._fresh("acc")
        total = 1
        for size in value.extent:
            total *= size
        if kind in ("sum", "mean"):
            self.block.append(c_ast.VarDecl(accumulator, _DOUBLE,
                                            init=c_ast.FloatLiteral(0.0)))

            def body(indices: Sequence[c_ast.Expression]) -> List[c_ast.Statement]:
                return [c_ast.ExpressionStatement(c_ast.Assignment(
                    "+", c_ast.Identifier(accumulator), value.element(indices)
                ))]

            self._emit_loops(value.extent, body)
            result: c_ast.Expression = c_ast.Identifier(accumulator)
            if kind == "mean":
                result = c_ast.BinaryOp("/", result, c_ast.FloatLiteral(float(total)))
            return _Scalar(result, True)

        # max / min: seed with the first element, then fold.
        comparison = ">" if kind == "max" else "<"
        first = value.element([c_ast.IntLiteral(0)] * len(value.extent))
        self.block.append(c_ast.VarDecl(accumulator, _DOUBLE, init=first))

        def body(indices: Sequence[c_ast.Expression]) -> List[c_ast.Statement]:
            element = value.element(indices)
            return [c_ast.ExpressionStatement(c_ast.Assignment(
                "", c_ast.Identifier(accumulator),
                c_ast.Ternary(
                    c_ast.BinaryOp(comparison, element,
                                   c_ast.Identifier(accumulator)),
                    element, c_ast.Identifier(accumulator),
                ),
            ))]

        self._emit_loops(value.extent, body)
        return _Scalar(c_ast.Identifier(accumulator), True)


def python_to_c_ast(program: PythonProgram) -> c_ast.TranslationUnit:
    """Translate a bound Python program into the shared frontend C AST."""
    return Translator(program).translate()
