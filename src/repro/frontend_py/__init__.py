"""Python/NumPy frontend: trace NumPy-style functions into the control-centric IR.

This is the second frontend of the reproduction (the JaCe-style entry
point the paper's frontend-agnosticism claim calls for).  It accepts a
restricted NumPy-ish Python subset — ``for i in range(...)`` loops,
``if``/``while``, scalar arithmetic with Python semantics, array
indexing/slicing, ``np.zeros``-style allocation, elementwise NumPy ops
and ``+=`` reductions — and produces the *same* IR the C frontend emits,
by translating the Python AST into the C frontend's own AST and reusing
its lowering stage wholesale.

The IR contract every frontend must satisfy (see also
:mod:`repro.frontend`):

1. **One module, func.func ops.** Each kernel becomes a ``func.func``
   whose body uses only the scf/arith/math/memref dialects; the verifier
   (:func:`repro.ir.verifier.verify`) must pass on the result.
2. **Memref-shaped state.** Arrays are ``memref.alloca`` values with
   constant dimensions (symbolic shapes are resolved to integers before
   lowering); mutable scalars are spilled to 1-element memrefs
   (Polygeist-style) so passes see loads/stores, not SSA mutation.
3. **Canonical structured loops.** Counted loops become ``scf.for`` with
   positive step (downward loops are inverted); data-dependent loops
   become ``scf.while``; conditionals become ``scf.if``.  No
   unstructured branches.
4. **math-dialect calls.** Math functions lower to ``math.*`` ops via the
   shared ``C_MATH_FUNCTIONS`` table — never opaque calls.
5. **Scalar checksum return.** Kernels return one ``f64``/``i32`` value
   so every backend's result is comparable against the reference.

Anything outside the supported subset raises
:class:`repro.errors.FrontendError` naming the offending source line.
"""

from .driver import compile_python_to_mlir, lower_python
from .program import ProgramLike, PythonProgram, as_program, program
from .translate import python_to_c_ast

__all__ = [
    "ProgramLike",
    "PythonProgram",
    "as_program",
    "compile_python_to_mlir",
    "lower_python",
    "program",
    "python_to_c_ast",
]
