"""Light-weight symbolic solving utilities.

The DCIR symbol-propagation pass (§6.1 of the paper) needs two services:

* detect whether an expression is *linear* in a given symbol and solve the
  equation ``expr == value`` for that symbol, and
* solve small systems of linear equations arising at call sites where
  caller shapes must equal callee shapes (e.g. ``2*N == 200`` → ``N = 100``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from .expr import Add, Div, Expr, Integer, Mul, Symbol, SymbolicError, sympify


def linear_coefficients(expr: Expr, symbol: Symbol) -> Optional[Tuple[Expr, Expr]]:
    """Return ``(a, b)`` such that ``expr == a*symbol + b``, or ``None``.

    ``None`` means the expression is not (recognizably) linear in ``symbol``.
    Both returned expressions are free of ``symbol``.
    """
    expr = sympify(expr)
    name = symbol.name

    def split(term: Expr) -> Optional[Tuple[Expr, Expr]]:
        if name not in {s.name for s in term.free_symbols()}:
            return Integer(0), term
        if isinstance(term, Symbol):
            return Integer(1), Integer(0)
        if isinstance(term, Add):
            a_total: Expr = Integer(0)
            b_total: Expr = Integer(0)
            for arg in term.args:
                parts = split(arg)
                if parts is None:
                    return None
                a_total = a_total + parts[0]
                b_total = b_total + parts[1]
            return a_total, b_total
        if isinstance(term, Mul):
            # Exactly one factor may contain the symbol, and linearly so.
            symbolic_factor = None
            other: Expr = Integer(1)
            for arg in term.args:
                if name in {s.name for s in arg.free_symbols()}:
                    if symbolic_factor is not None:
                        return None
                    symbolic_factor = arg
                else:
                    other = other * arg
            assert symbolic_factor is not None
            inner = split(symbolic_factor)
            if inner is None:
                return None
            a_inner, b_inner = inner
            return other * a_inner, other * b_inner
        if isinstance(term, Div):
            if name in {s.name for s in term.den.free_symbols()}:
                return None
            inner = split(term.num)
            if inner is None:
                return None
            a_inner, b_inner = inner
            return Div.make(a_inner, term.den), Div.make(b_inner, term.den)
        return None

    return split(expr)


def solve_linear(expr: Expr, symbol: Symbol, value: Expr) -> Optional[Expr]:
    """Solve ``expr == value`` for ``symbol`` when ``expr`` is linear in it."""
    expr = sympify(expr)
    value = sympify(value)
    coefficients = linear_coefficients(expr, symbol)
    if coefficients is None:
        return None
    a, b = coefficients
    if a == Integer(0):
        return None
    try:
        return Div.make(value - b, a)
    except SymbolicError:
        return None


def solve_equations(
    equations: Sequence[Tuple[Expr, Expr]], unknowns: Iterable[Symbol]
) -> Dict[str, Expr]:
    """Solve a small system ``lhs_i == rhs_i`` for the given unknowns.

    Uses repeated substitution: each round, find an equation linear in a
    single remaining unknown, solve it and substitute everywhere.  Returns a
    mapping of the unknowns that could be determined (possibly partial).
    This mirrors the paper's "on every function call, an attempt is made to
    reduce symbols by solving a system of equations" (§6.1).
    """
    remaining = {sym.name: sym for sym in unknowns}
    pending = [(sympify(lhs), sympify(rhs)) for lhs, rhs in equations]
    solution: Dict[str, Expr] = {}

    progress = True
    while progress and remaining:
        progress = False
        for index, (lhs, rhs) in enumerate(pending):
            lhs_sub = lhs.subs(solution)
            rhs_sub = rhs.subs(solution)
            difference_syms = {
                s.name for s in (lhs_sub.free_symbols() | rhs_sub.free_symbols())
            } & set(remaining)
            if len(difference_syms) != 1:
                continue
            name = next(iter(difference_syms))
            symbol = remaining[name]
            solved = solve_linear(lhs_sub - rhs_sub, symbol, Integer(0))
            if solved is None:
                continue
            solution[name] = solved
            del remaining[name]
            pending.pop(index)
            progress = True
            break
    return solution


def sign_assuming_positive(expr: Expr) -> Optional[int]:
    """Best-effort sign of ``expr`` assuming every free symbol is positive.

    Array dimensions and loop trip counts are positive quantities, which is
    the assumption DaCe's size verification makes (Fig. 3 of the paper:
    ``2*N`` vs ``N`` is flagged as a mismatch because their difference is
    positive for any positive ``N``).  Returns ``1``, ``-1``, ``0`` or
    ``None`` when the sign cannot be determined.
    """
    expr = sympify(expr)
    if expr.is_constant():
        value = expr.evaluate({})
        if value > 0:
            return 1
        if value < 0:
            return -1
        return 0
    terms = expr.args if isinstance(expr, Add) else (expr,)
    signs = set()
    for term in terms:
        coefficient, base = _term_coefficient(term)
        if coefficient is None:
            return None
        if coefficient > 0:
            signs.add(1)
        elif coefficient < 0:
            signs.add(-1)
    if signs == {1}:
        return 1
    if signs == {-1}:
        return -1
    return None


def definitely_nonzero(expr: Expr) -> bool:
    """Whether ``expr`` is provably nonzero assuming positive symbols."""
    sign = sign_assuming_positive(expr)
    return sign is not None and sign != 0


def _term_coefficient(term: Expr) -> Tuple[Optional[float], Expr]:
    """Numeric coefficient of a product term, or (None, term) if non-linear."""
    if isinstance(term, Integer):
        return term.value, Integer(1)
    if term.is_constant():
        return term.evaluate({}), Integer(1)
    if isinstance(term, Symbol):
        return 1, term
    if isinstance(term, Mul):
        coefficient = 1.0
        for factor in term.args:
            if factor.is_constant():
                coefficient *= factor.evaluate({})
            elif not isinstance(factor, Symbol):
                return None, term
        return coefficient, term
    return None, term


def substitute_all(expr: Expr, mapping: Mapping[str, Expr]) -> Expr:
    """Repeatedly substitute until a fixed point (bounded to avoid cycles)."""
    expr = sympify(expr)
    for _ in range(16):
        new_expr = expr.subs(mapping)
        if new_expr == expr:
            return new_expr
        expr = new_expr
    return expr
