"""Symbolic math engine used by both the MLIR-like IR and the SDFG IR.

Public entry points:

* :func:`sympify` / :func:`parse_expr` — build expressions from Python
  values or strings,
* :class:`Symbol`, :class:`Integer`, :class:`Float` and the operator nodes,
* :class:`Range` / :class:`Subset` — the memlet subset algebra,
* :func:`solve_linear` / :func:`solve_equations` — symbol inference.
"""

from .expr import (
    Add,
    And,
    BoolConst,
    BoolExpr,
    Compare,
    Div,
    Expr,
    FALSE,
    Float,
    FloorDiv,
    Integer,
    Max,
    Min,
    Mod,
    Mul,
    Not,
    Or,
    Pow,
    Symbol,
    SymbolicError,
    TRUE,
    symbols,
    sympify,
)
from .parser import parse_expr
from .ranges import Range, Subset
from .solve import (
    definitely_nonzero,
    linear_coefficients,
    sign_assuming_positive,
    solve_equations,
    solve_linear,
    substitute_all,
)

__all__ = [
    "Add",
    "And",
    "BoolConst",
    "BoolExpr",
    "Compare",
    "Div",
    "Expr",
    "FALSE",
    "Float",
    "FloorDiv",
    "Integer",
    "Max",
    "Min",
    "Mod",
    "Mul",
    "Not",
    "Or",
    "Pow",
    "Range",
    "Subset",
    "Symbol",
    "SymbolicError",
    "TRUE",
    "definitely_nonzero",
    "linear_coefficients",
    "sign_assuming_positive",
    "parse_expr",
    "solve_equations",
    "solve_linear",
    "substitute_all",
    "symbols",
    "sympify",
]
