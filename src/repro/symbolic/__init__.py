"""Symbolic math engine used by both the MLIR-like IR and the SDFG IR.

Public entry points:

* :func:`sympify` / :func:`parse_expr` — build expressions from Python
  values or strings,
* :class:`Symbol`, :class:`Integer`, :class:`Float` and the operator nodes,
* :class:`Range` / :class:`Subset` — the memlet subset algebra,
* :func:`solve_linear` / :func:`solve_equations` — symbol inference.

Interning and immutability guarantees
-------------------------------------

The engine is the compiler's hottest data structure, and its speed rests
on two guarantees every consumer may rely on — and must uphold:

1. **Leaf nodes are hash-consed.**  Constructing an equal
   :class:`Integer`, :class:`Symbol` or :class:`BoolConst` twice returns
   the *same object* (``Integer(2) is Integer(2)``,
   ``Symbol("N") is Symbol("N")``, ``BoolConst(True) is TRUE``), so the
   dominant equality checks are pointer comparisons.  Interning tables
   are bounded; beyond the bound construction falls back to fresh
   objects with unchanged semantics.

2. **All nodes are immutable.**  Never mutate an expression, range or
   subset after construction (``__slots__`` prevents adding attributes;
   rebinding existing fields is undefined behavior).  Every node caches
   its structural key, hash and free-symbol set on first use, repeated
   string parses return the shared parse-cache entry, and
   ``Add.make``/``Mul.make`` memoize on operand tuples — mutation would
   silently corrupt all of these.  Build modified expressions through
   the constructors or :meth:`~repro.symbolic.expr.Expr.subs` (which
   returns ``self`` when no free symbol is touched).

``copy.copy``/``copy.deepcopy`` of any expression return the expression
itself, and interned leaves survive pickling as their interned
representatives.
"""

from .expr import (
    Add,
    And,
    BoolConst,
    BoolExpr,
    Compare,
    Div,
    Expr,
    FALSE,
    Float,
    FloorDiv,
    Integer,
    Max,
    Min,
    Mod,
    Mul,
    Not,
    Or,
    Pow,
    Symbol,
    SymbolicError,
    TRUE,
    symbols,
    sympify,
)
from .parser import parse_expr
from .ranges import Range, Subset
from .solve import (
    definitely_nonzero,
    linear_coefficients,
    sign_assuming_positive,
    solve_equations,
    solve_linear,
    substitute_all,
)

__all__ = [
    "Add",
    "And",
    "BoolConst",
    "BoolExpr",
    "Compare",
    "Div",
    "Expr",
    "FALSE",
    "Float",
    "FloorDiv",
    "Integer",
    "Max",
    "Min",
    "Mod",
    "Mul",
    "Not",
    "Or",
    "Pow",
    "Range",
    "Subset",
    "Symbol",
    "SymbolicError",
    "TRUE",
    "definitely_nonzero",
    "linear_coefficients",
    "sign_assuming_positive",
    "parse_expr",
    "solve_equations",
    "solve_linear",
    "substitute_all",
    "symbols",
    "sympify",
]
