"""Parser turning strings like ``"2*N + 1"`` into symbolic expressions.

The ``sdfg`` dialect stores symbolic sizes as strings (``sym("2*N")``,
see §3.1 of the paper), so the bridge needs a small, robust expression
parser.  The grammar covers the arithmetic and boolean operators used in
memlet subsets, interstate edge conditions and symbolic shapes:

    expr     := ternary
    ternary  := or_expr ('?' expr ':' expr)?
    or_expr  := and_expr ('or' and_expr)*
    and_expr := not_expr ('and' not_expr)*
    not_expr := 'not' not_expr | comparison
    comparison := arith (('=='|'!='|'<'|'<='|'>'|'>=') arith)?
    arith    := term (('+'|'-') term)*
    term     := unary (('*'|'/'|'//'|'%') unary)*
    unary    := ('-'|'+') unary | power
    power    := atom ('**' unary)?
    atom     := NUMBER | NAME | NAME '(' args ')' | '(' expr ')'

``Min``/``Max`` (any capitalization) and ``min``/``max`` parse to the
corresponding n-ary nodes.
"""

from __future__ import annotations

import re
from typing import List, Optional

from ..perf import PERF
from .expr import (
    Add,
    And,
    BoolConst,
    Compare,
    Div,
    Expr,
    Float,
    FloorDiv,
    Integer,
    Max,
    Min,
    Mod,
    Mul,
    Not,
    Or,
    Pow,
    Symbol,
    SymbolicError,
)

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<float>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)"
    r"|(?P<int>\d+)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op>\*\*|//|==|!=|<=|>=|&&|\|\||[-+*/%()<>,?:])"
    r")"
)


class _Token:
    __slots__ = ("kind", "text")

    def __init__(self, kind: str, text: str):
        self.kind = kind
        self.text = text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r})"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match or match.end() == pos:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise SymbolicError(f"Cannot tokenize expression at: {remainder!r}")
        pos = match.end()
        for kind in ("float", "int", "name", "op"):
            value = match.group(kind)
            if value is not None:
                tokens.append(_Token(kind, value))
                break
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Optional[_Token]:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise SymbolicError("Unexpected end of expression")
        self.pos += 1
        return token

    def expect(self, text: str) -> None:
        token = self.next()
        if token.text != text:
            raise SymbolicError(f"Expected {text!r}, found {token.text!r}")

    def accept(self, text: str) -> bool:
        token = self.peek()
        if token is not None and token.text == text:
            self.pos += 1
            return True
        return False

    # Grammar ----------------------------------------------------------------
    def parse(self) -> Expr:
        expr = self.ternary()
        if self.peek() is not None:
            raise SymbolicError(f"Trailing tokens starting at {self.peek().text!r}")
        return expr

    def ternary(self) -> Expr:
        condition = self.or_expr()
        if self.accept("?"):
            then_value = self.ternary()
            self.expect(":")
            else_value = self.ternary()
            # Symbolic if-then-else: represent via min/max when possible is
            # fragile, so fold constants and otherwise keep a Max/Min free
            # encoding using arithmetic with the 0/1-valued condition.
            if isinstance(condition, BoolConst):
                return then_value if condition.value else else_value
            return Add.make(
                Mul.make(condition, then_value),
                Mul.make(Add.make(Integer(1), Mul.make(Integer(-1), condition)), else_value),
            )
        return condition

    def or_expr(self) -> Expr:
        expr = self.and_expr()
        while True:
            token = self.peek()
            if token is not None and token.text in ("or", "||"):
                self.next()
                expr = Or.make(expr, self.and_expr())
            else:
                return expr

    def and_expr(self) -> Expr:
        expr = self.not_expr()
        while True:
            token = self.peek()
            if token is not None and token.text in ("and", "&&"):
                self.next()
                expr = And.make(expr, self.not_expr())
            else:
                return expr

    def not_expr(self) -> Expr:
        token = self.peek()
        if token is not None and token.text in ("not", "!"):
            self.next()
            return Not.make(self.not_expr())
        return self.comparison()

    def comparison(self) -> Expr:
        lhs = self.arith()
        token = self.peek()
        if token is not None and token.text in ("==", "!=", "<", "<=", ">", ">="):
            op = self.next().text
            rhs = self.arith()
            return Compare.make(op, lhs, rhs)
        return lhs

    def arith(self) -> Expr:
        expr = self.term()
        while True:
            token = self.peek()
            if token is None or token.text not in ("+", "-"):
                return expr
            op = self.next().text
            rhs = self.term()
            if op == "+":
                expr = Add.make(expr, rhs)
            else:
                expr = Add.make(expr, Mul.make(Integer(-1), rhs))

    def term(self) -> Expr:
        expr = self.unary()
        while True:
            token = self.peek()
            if token is None or token.text not in ("*", "/", "//", "%"):
                return expr
            op = self.next().text
            rhs = self.unary()
            if op == "*":
                expr = Mul.make(expr, rhs)
            elif op == "/":
                expr = Div.make(expr, rhs)
            elif op == "//":
                expr = FloorDiv.make(expr, rhs)
            else:
                expr = Mod.make(expr, rhs)

    def unary(self) -> Expr:
        token = self.peek()
        if token is not None and token.text in ("-", "+"):
            op = self.next().text
            operand = self.unary()
            if op == "-":
                return Mul.make(Integer(-1), operand)
            return operand
        return self.power()

    def power(self) -> Expr:
        base = self.atom()
        if self.accept("**"):
            exponent = self.unary()
            return Pow.make(base, exponent)
        return base

    def atom(self) -> Expr:
        token = self.next()
        if token.kind == "int":
            return Integer(int(token.text))
        if token.kind == "float":
            return Float(float(token.text))
        if token.text == "(":
            expr = self.ternary()
            self.expect(")")
            return expr
        if token.kind == "name":
            name = token.text
            if self.accept("("):
                args = [self.ternary()]
                while self.accept(","):
                    args.append(self.ternary())
                self.expect(")")
                return _make_call(name, args)
            lowered = name.lower()
            if lowered == "true":
                return BoolConst(True)
            if lowered == "false":
                return BoolConst(False)
            return Symbol(name)
        raise SymbolicError(f"Unexpected token {token.text!r}")


def _make_call(name: str, args: List[Expr]) -> Expr:
    lowered = name.lower()
    if lowered == "min":
        return Min.make(*args)
    if lowered == "max":
        return Max.make(*args)
    if lowered == "abs" and len(args) == 1:
        return Max.make(args[0], Mul.make(Integer(-1), args[0]))
    raise SymbolicError(f"Unknown symbolic function {name!r}")


#: Bounded parse cache.  The ``sdfg`` dialect stores symbolic sizes as
#: strings, so the same handful of expression strings is re-parsed
#: constantly; expressions are immutable, making the memo safe to share.
_PARSE_CACHE: dict = {}
_PARSE_CACHE_LIMIT = 8192


def parse_expr(text: str) -> Expr:
    """Parse ``text`` into a symbolic expression (memoized on the string)."""
    if not isinstance(text, str):
        raise SymbolicError(f"parse_expr expects a string, got {type(text).__name__}")
    cached = _PARSE_CACHE.get(text)
    if cached is not None:
        PERF.increment("symbolic.parse.hits")
        return cached
    PERF.increment("symbolic.parse.misses")
    tokens = _tokenize(text)
    if not tokens:
        raise SymbolicError("Empty expression string")
    expr = _Parser(tokens).parse()
    if len(_PARSE_CACHE) >= _PARSE_CACHE_LIMIT:
        _PARSE_CACHE.clear()
    _PARSE_CACHE[text] = expr
    return expr
