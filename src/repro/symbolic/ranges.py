"""Integer ranges and rectangular subsets for memlet analysis.

SDFG memlets (§2.2 of the paper) describe the *subset* of a data container
that moves along a dataflow edge, e.g. ``A[0:N, i]``.  The data-centric
passes rely on a small algebra over these subsets: number of elements,
coverage, intersection tests, bounding-box unions and offsetting.

Ranges are half-open (``start`` inclusive, ``end`` exclusive) with a
positive step; bounds may be symbolic expressions.  Queries that cannot be
decided symbolically return ``None`` ("unknown") rather than guessing.

Like expressions, ranges and subsets are immutable after construction;
they cache their structural key, hash, free-symbol set and element count
in slots, and ``subs`` returns ``self`` when the mapping touches none of
their free symbols.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Union

from .expr import Expr, Integer, Max, Min, Symbol, SymbolicError, sympify

RangeLike = Union["Range", tuple, int, Expr, str]

_ONE = Integer(1)


def _mapping_names(mapping: Mapping) -> set:
    """Substituted symbol names; keys may be strings or Symbol objects
    (the same forms :meth:`Expr.subs` accepts)."""
    return {key.name if isinstance(key, Symbol) else str(key) for key in mapping}


class Range:
    """A one-dimensional strided index range ``[start, end) : step``."""

    __slots__ = ("start", "end", "step", "_key", "_hash", "_free", "_num")

    def __init__(self, start, end, step=1):
        self.start = sympify(start)
        self.end = sympify(end)
        self.step = sympify(step)
        if isinstance(self.step, Integer) and self.step.value <= 0:
            raise SymbolicError(f"Range step must be positive, got {self.step}")

    # -- construction ---------------------------------------------------------
    @staticmethod
    def from_index(index) -> "Range":
        """Single-element range for a point access ``A[i]``."""
        index = sympify(index)
        return Range(index, index + 1, 1)

    @staticmethod
    def make(value: RangeLike) -> "Range":
        if isinstance(value, Range):
            return value
        if isinstance(value, tuple):
            if len(value) == 2:
                return Range(value[0], value[1])
            if len(value) == 3:
                return Range(value[0], value[1], value[2])
            raise SymbolicError(f"Cannot build a Range from tuple of length {len(value)}")
        return Range.from_index(value)

    # -- queries --------------------------------------------------------------
    def num_elements(self) -> Expr:
        """Number of iterations/elements covered (symbolic, computed once)."""
        try:
            return self._num
        except AttributeError:
            pass
        span = self.end - self.start
        if self.step == _ONE:
            result = span
        else:
            result = (span + self.step - _ONE) // self.step
        self._num = result
        return result

    def is_point(self) -> bool:
        return self.num_elements() == _ONE

    def is_empty(self) -> Optional[bool]:
        diff = self.end - self.start
        if diff.is_constant():
            return diff.as_int() <= 0
        return None

    def covers(self, other: "Range") -> Optional[bool]:
        """Whether this range covers ``other`` entirely (None if unknown)."""
        lower = self.start - other.start
        upper = other.end - self.end
        if lower.is_constant() and upper.is_constant():
            return lower.as_int() <= 0 and upper.as_int() <= 0
        # Structural: identical bounds always cover.
        if self.start == other.start and self.end == other.end:
            return True
        return None

    def intersects(self, other: "Range") -> Optional[bool]:
        """Whether the two ranges overlap (None if unknown)."""
        left = other.end - self.start
        right = self.end - other.start
        if left.is_constant() and right.is_constant():
            return left.as_int() > 0 and right.as_int() > 0
        if self.start == other.start and self.end == other.end:
            empty = self.is_empty()
            if empty is None:
                return True
            return not empty
        return None

    def union(self, other: "Range") -> "Range":
        """Bounding-box union (may over-approximate; step normalizes to 1)."""
        if (self is other or self == other) and self.step == _ONE:
            return self
        return Range(Min.make(self.start, other.start), Max.make(self.end, other.end), 1)

    def offset(self, amount, negative: bool = False) -> "Range":
        amount = sympify(amount)
        if negative:
            amount = -amount
        return Range(self.start + amount, self.end + amount, self.step)

    def subs(self, mapping: Mapping[str, Expr]) -> "Range":
        if not mapping:
            return self
        names = _mapping_names(mapping)
        if not any(sym.name in names for sym in self.free_symbols()):
            return self
        return Range(self.start.subs(mapping), self.end.subs(mapping), self.step.subs(mapping))

    def free_symbols(self) -> frozenset:
        try:
            return self._free
        except AttributeError:
            free = self._free = (
                self.start.free_symbols() | self.end.free_symbols() | self.step.free_symbols()
            )
            return free

    def evaluate(self, env: Mapping[str, int] | None = None) -> range:
        """Concrete Python range (requires all symbols bound)."""
        return range(
            int(self.start.evaluate(env)),
            int(self.end.evaluate(env)),
            int(self.step.evaluate(env)),
        )

    # -- comparison / printing -------------------------------------------------
    def key(self) -> tuple:
        """Structural key used for equality and hashing (computed once)."""
        try:
            return self._key
        except AttributeError:
            key = self._key = (self.start.key(), self.end.key(), self.step.key())
            return key

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Range):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            result = self._hash = hash(self.key())
            return result

    def __str__(self) -> str:
        if self.is_point():
            return str(self.start)
        if self.step == _ONE:
            return f"{self.start}:{self.end}"
        return f"{self.start}:{self.end}:{self.step}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Range({self.start}, {self.end}, {self.step})"


class Subset:
    """A rectangular, multi-dimensional subset: one :class:`Range` per dimension."""

    __slots__ = ("ranges", "_key", "_hash", "_free", "_num")

    def __init__(self, ranges: Iterable[RangeLike]):
        self.ranges: List[Range] = [Range.make(r) for r in ranges]

    # -- construction ---------------------------------------------------------
    @staticmethod
    def from_indices(indices: Sequence) -> "Subset":
        """Point subset ``A[i, j, ...]``."""
        return Subset([Range.from_index(index) for index in indices])

    @staticmethod
    def full(shape: Sequence) -> "Subset":
        """The whole container ``A[0:d0, 0:d1, ...]``."""
        return Subset([Range(0, dim) for dim in shape])

    @staticmethod
    def parse(text: str) -> "Subset":
        """Parse a textual subset like ``"0:N, i, 2*j+1"``."""
        ranges: List[Range] = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            pieces = part.split(":")
            if len(pieces) == 1:
                ranges.append(Range.from_index(pieces[0]))
            elif len(pieces) == 2:
                ranges.append(Range(pieces[0], pieces[1]))
            elif len(pieces) == 3:
                ranges.append(Range(pieces[0], pieces[1], pieces[2]))
            else:
                raise SymbolicError(f"Malformed range {part!r}")
        if not ranges:
            raise SymbolicError(f"Empty subset string {text!r}")
        return Subset(ranges)

    # -- queries --------------------------------------------------------------
    @property
    def dims(self) -> int:
        return len(self.ranges)

    def num_elements(self) -> Expr:
        try:
            return self._num
        except AttributeError:
            pass
        total: Expr = _ONE
        for rng in self.ranges:
            total = total * rng.num_elements()
        self._num = total
        return total

    def is_point(self) -> bool:
        return all(rng.is_point() for rng in self.ranges)

    def indices(self) -> List[Expr]:
        """Point indices (only valid when :meth:`is_point` is true)."""
        if not self.is_point():
            raise SymbolicError(f"Subset {self} is not a single point")
        return [rng.start for rng in self.ranges]

    def covers(self, other: "Subset") -> Optional[bool]:
        if self.dims != other.dims:
            return None
        result: Optional[bool] = True
        for mine, theirs in zip(self.ranges, other.ranges):
            covered = mine.covers(theirs)
            if covered is False:
                return False
            if covered is None:
                result = None
        return result

    def intersects(self, other: "Subset") -> Optional[bool]:
        if self.dims != other.dims:
            return None
        result: Optional[bool] = True
        for mine, theirs in zip(self.ranges, other.ranges):
            overlap = mine.intersects(theirs)
            if overlap is False:
                return False
            if overlap is None:
                result = None
        return result

    def union(self, other: "Subset") -> "Subset":
        if self.dims != other.dims:
            raise SymbolicError(
                f"Cannot union subsets of different dimensionality ({self.dims} vs {other.dims})"
            )
        if (self is other or self == other) and all(rng.step == _ONE for rng in self.ranges):
            return self
        return Subset([mine.union(theirs) for mine, theirs in zip(self.ranges, other.ranges)])

    def offset(self, amounts: Sequence, negative: bool = False) -> "Subset":
        if len(amounts) != self.dims:
            raise SymbolicError("Offset vector length must match subset dimensionality")
        return Subset(
            [rng.offset(amount, negative) for rng, amount in zip(self.ranges, amounts)]
        )

    def subs(self, mapping: Mapping[str, Expr]) -> "Subset":
        if not mapping:
            return self
        names = _mapping_names(mapping)
        if not any(sym.name in names for sym in self.free_symbols()):
            return self
        return Subset([rng.subs(mapping) for rng in self.ranges])

    def free_symbols(self) -> frozenset:
        try:
            return self._free
        except AttributeError:
            pass
        result: frozenset = frozenset()
        for rng in self.ranges:
            result |= rng.free_symbols()
        self._free = result
        return result

    def bounding_box_over(self, param: str, param_range: Range) -> "Subset":
        """Union of this subset over all values of ``param`` in ``param_range``.

        This is the core of memlet propagation through map scopes: the
        per-iteration subset (a function of the map parameter) becomes a
        parametric bounding box over the whole iteration range.
        """
        last = param_range.end - _ONE
        at_first = self.subs({param: param_range.start})
        at_last = self.subs({param: last})
        return at_first.union(at_last)

    def evaluate(self, env: Mapping[str, int] | None = None) -> tuple:
        """Concrete tuple of Python ranges."""
        return tuple(rng.evaluate(env) for rng in self.ranges)

    # -- comparison / printing -------------------------------------------------
    def key(self) -> tuple:
        """Structural key used for equality and hashing (computed once)."""
        try:
            return self._key
        except AttributeError:
            key = self._key = tuple(rng.key() for rng in self.ranges)
            return key

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Subset):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            result = self._hash = hash(self.key())
            return result

    def __str__(self) -> str:
        return ", ".join(str(rng) for rng in self.ranges)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Subset([{self}])"
