"""Symbolic expression trees.

This module is the reproduction's stand-in for the symbolic math engine
DaCe borrows from sympy.  It implements just enough symbolic algebra for
parametric dataflow analysis: integer/float constants, named symbols,
arithmetic (+, -, *, /, floor-division, modulo, power, min, max), and
boolean expressions (comparisons, and/or/not).

Expressions are immutable.  Construction performs light canonicalization
(constant folding, flattening of nested sums/products, dropping neutral
elements) so that structurally equal expressions compare equal in the
common cases data-centric passes rely on (e.g. ``N + 0`` equals ``N``).

Performance model (the compiler's hot core):

* **Hash consing** — :class:`Integer`, :class:`Symbol` and
  :class:`BoolConst` are interned: constructing the same leaf twice
  returns the same object (``Integer(2) is Integer(2)``), so the most
  common equality checks are pointer comparisons.
* **Per-node caches** — every node caches its structural :meth:`key`,
  its hash and its :meth:`free_symbols` set in slots the first time they
  are computed.  Equality collapses onto the cached-key comparison in
  this base class; there is no per-class ``__eq__``/``__ne__``.
* **Memoized canonicalizers** — :meth:`Add.make` / :meth:`Mul.make`
  results are memoized on their operand tuples (bounded tables).
* **Substitution fast paths** — ``subs`` returns ``self`` (no fresh
  allocation) whenever the mapping touches none of the node's free
  symbols.

All caches rely on the immutability contract: never mutate a node after
construction (all node classes use ``__slots__`` to enforce this).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, Iterable, Mapping, Sequence, Union

from ..perf import PERF

Number = Union[int, float, Fraction]
ExprLike = Union["Expr", int, float, str]

#: Bound on the interning tables (leaf nodes) and canonicalizer memo
#: tables.  Beyond the bound new entries are simply not recorded (leaves)
#: or the table is cleared (memos) — correctness never depends on a cache.
_INTERN_LIMIT = 65536
_MEMO_LIMIT = 16384

_EMPTY_FROZENSET: frozenset = frozenset()


class SymbolicError(Exception):
    """Raised for malformed symbolic expressions or impossible operations."""


def sympify(value: ExprLike) -> "Expr":
    """Coerce a Python value into an :class:`Expr`.

    Strings are parsed with :mod:`repro.symbolic.parser`, numbers become
    constants, and expressions pass through unchanged.  Exact non-integer
    rationals (:class:`fractions.Fraction`) are preserved exactly as a
    :class:`Div` of two integers rather than degraded to a float.
    """
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return BoolConst(value)
    if isinstance(value, int):
        return Integer(value)
    if isinstance(value, float):
        if value.is_integer():
            return Integer(int(value))
        return Float(value)
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return Integer(value.numerator)
        # Construct the Div node directly: Div.make would fold two integer
        # constants into an (inexact) float.
        return Div(Integer(value.numerator), Integer(value.denominator))
    if isinstance(value, str):
        from .parser import parse_expr

        return parse_expr(value)
    raise SymbolicError(f"Cannot convert {value!r} to a symbolic expression")


class Expr:
    """Base class of all symbolic expressions.

    Nodes are immutable; the three slots below lazily cache the
    structural key, its hash, and the free-symbol set.
    """

    __slots__ = ("_key", "_hash", "_free")

    # -- construction helpers ------------------------------------------------
    def __add__(self, other: ExprLike) -> "Expr":
        return Add.make(self, sympify(other))

    def __radd__(self, other: ExprLike) -> "Expr":
        return Add.make(sympify(other), self)

    def __sub__(self, other: ExprLike) -> "Expr":
        return Add.make(self, Mul.make(_NEG_ONE, sympify(other)))

    def __rsub__(self, other: ExprLike) -> "Expr":
        return Add.make(sympify(other), Mul.make(_NEG_ONE, self))

    def __mul__(self, other: ExprLike) -> "Expr":
        return Mul.make(self, sympify(other))

    def __rmul__(self, other: ExprLike) -> "Expr":
        return Mul.make(sympify(other), self)

    def __neg__(self) -> "Expr":
        return Mul.make(_NEG_ONE, self)

    def __truediv__(self, other: ExprLike) -> "Expr":
        return Div.make(self, sympify(other))

    def __rtruediv__(self, other: ExprLike) -> "Expr":
        return Div.make(sympify(other), self)

    def __floordiv__(self, other: ExprLike) -> "Expr":
        return FloorDiv.make(self, sympify(other))

    def __rfloordiv__(self, other: ExprLike) -> "Expr":
        return FloorDiv.make(sympify(other), self)

    def __mod__(self, other: ExprLike) -> "Expr":
        return Mod.make(self, sympify(other))

    def __rmod__(self, other: ExprLike) -> "Expr":
        return Mod.make(sympify(other), self)

    def __pow__(self, other: ExprLike) -> "Expr":
        return Pow.make(self, sympify(other))

    # -- comparisons produce boolean expressions -----------------------------
    def eq(self, other: ExprLike) -> "BoolExpr":
        return Compare.make("==", self, sympify(other))

    def ne(self, other: ExprLike) -> "BoolExpr":
        return Compare.make("!=", self, sympify(other))

    def lt(self, other: ExprLike) -> "BoolExpr":
        return Compare.make("<", self, sympify(other))

    def le(self, other: ExprLike) -> "BoolExpr":
        return Compare.make("<=", self, sympify(other))

    def gt(self, other: ExprLike) -> "BoolExpr":
        return Compare.make(">", self, sympify(other))

    def ge(self, other: ExprLike) -> "BoolExpr":
        return Compare.make(">=", self, sympify(other))

    # -- structural equality / hashing ---------------------------------------
    def key(self) -> tuple:
        """Structural key used for equality and hashing (computed once)."""
        try:
            return self._key
        except AttributeError:
            key = self._key = self._compute_key()
            return key

    def _compute_key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, (int, float)):
            other = sympify(other)
        if not isinstance(other, Expr):
            return NotImplemented
        return self.key() == other.key()

    # __ne__ intentionally not defined: Python derives it from __eq__.

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            result = self._hash = hash(self.key())
            return result

    # Immutable trees: copies are the object itself.  This also keeps
    # structures embedding expressions (interstate edges, memlets) cheap
    # to deep-copy.
    def __copy__(self) -> "Expr":
        return self

    def __deepcopy__(self, memo) -> "Expr":
        return self

    # -- analysis -------------------------------------------------------------
    def free_symbols(self) -> frozenset:
        """Set of :class:`Symbol` objects appearing in the expression.

        The returned frozenset is cached on the node and shared between
        callers; do not attempt to mutate it.
        """
        try:
            return self._free
        except AttributeError:
            free = self._free = self._compute_free()
            return free

    def _compute_free(self) -> frozenset:
        result: set = set()
        for child in self.children():
            result |= child.free_symbols()
        return frozenset(result)

    def children(self) -> Sequence["Expr"]:
        return ()

    def subs(self, mapping: Mapping[Union[str, "Symbol"], ExprLike]) -> "Expr":
        """Substitute symbols (by name or object) and re-simplify."""
        normalized: Dict[str, Expr] = {}
        for key, value in mapping.items():
            name = key.name if isinstance(key, Symbol) else str(key)
            normalized[name] = sympify(value)
        if not normalized:
            return self
        return self._subs(normalized)

    def _subs(self, mapping: Dict[str, "Expr"]) -> "Expr":
        # Fast path: nothing to substitute in this subtree.
        for symbol in self.free_symbols():
            if symbol.name in mapping:
                return self._subs_impl(mapping)
        return self

    def _subs_impl(self, mapping: Dict[str, "Expr"]) -> "Expr":
        raise NotImplementedError

    def evaluate(self, env: Mapping[str, Number] | None = None) -> Number:
        """Evaluate the expression numerically.

        Raises :class:`SymbolicError` if a free symbol is missing from
        ``env``.
        """
        raise NotImplementedError

    def is_constant(self) -> bool:
        return not self.free_symbols()

    def as_int(self) -> int:
        """Return the expression as a Python int if it is an integer constant."""
        if isinstance(self, Integer):
            return self.value
        if self.is_constant():
            value = self.evaluate({})
            if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
                return int(value)
        raise SymbolicError(f"{self} is not an integer constant")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self})"

    def __str__(self) -> str:
        raise NotImplementedError

    def __bool__(self) -> bool:
        # Guard against `if expr:` silently misbehaving for symbolic values.
        if isinstance(self, Integer):
            return self.value != 0
        if isinstance(self, BoolConst):
            return self.value
        raise SymbolicError(
            f"Truth value of symbolic expression {self} is ambiguous; "
            "use .evaluate() or comparison helpers"
        )


class Integer(Expr):
    """Integer constant (hash-consed: equal values share one object)."""

    __slots__ = ("value",)

    _interned: Dict[int, "Integer"] = {}

    def __new__(cls, value: int):
        if not isinstance(value, int):
            raise SymbolicError(f"Integer requires an int, got {value!r}")
        value = int(value)  # normalize bool -> int
        if cls is Integer:  # subclasses get (and intern) their own instances
            self = Integer._interned.get(value)
            if self is not None:
                PERF.increment("symbolic.intern.hits")
                return self
        PERF.increment("symbolic.intern.misses")
        self = object.__new__(cls)
        self.value = value
        if cls is Integer and len(Integer._interned) < _INTERN_LIMIT:
            Integer._interned[value] = self
        return self

    def __reduce__(self):
        return (Integer, (self.value,))

    def _compute_key(self) -> tuple:
        return ("int", self.value)

    def _subs_impl(self, mapping: Dict[str, Expr]) -> Expr:
        return self

    def evaluate(self, env: Mapping[str, Number] | None = None) -> Number:
        return self.value

    def _compute_free(self) -> frozenset:
        return _EMPTY_FROZENSET

    def __str__(self) -> str:
        return str(self.value)


class Float(Expr):
    """Floating-point constant."""

    __slots__ = ("value",)

    def __init__(self, value: float):
        self.value = float(value)

    def _compute_key(self) -> tuple:
        return ("float", self.value)

    def _subs_impl(self, mapping: Dict[str, Expr]) -> Expr:
        return self

    def evaluate(self, env: Mapping[str, Number] | None = None) -> Number:
        return self.value

    def _compute_free(self) -> frozenset:
        return _EMPTY_FROZENSET

    def __str__(self) -> str:
        return repr(self.value)


class Symbol(Expr):
    """A named symbolic value (e.g. an array dimension ``N``), hash-consed."""

    __slots__ = ("name",)

    _interned: Dict[str, "Symbol"] = {}

    def __new__(cls, name: str):
        if not name or not isinstance(name, str):
            raise SymbolicError(f"Symbol requires a non-empty name, got {name!r}")
        if cls is Symbol:  # subclasses get (and intern) their own instances
            self = Symbol._interned.get(name)
            if self is not None:
                PERF.increment("symbolic.intern.hits")
                return self
        PERF.increment("symbolic.intern.misses")
        self = object.__new__(cls)
        self.name = name
        if cls is Symbol and len(Symbol._interned) < _INTERN_LIMIT:
            Symbol._interned[name] = self
        return self

    def __reduce__(self):
        return (Symbol, (self.name,))

    def _compute_key(self) -> tuple:
        return ("sym", self.name)

    def _compute_free(self) -> frozenset:
        return frozenset((self,))

    def _subs_impl(self, mapping: Dict[str, Expr]) -> Expr:
        return mapping.get(self.name, self)

    def evaluate(self, env: Mapping[str, Number] | None = None) -> Number:
        env = env or {}
        if self.name not in env:
            raise SymbolicError(f"Symbol {self.name!r} has no value in environment")
        return env[self.name]

    def __str__(self) -> str:
        return self.name


def symbols(names: str) -> tuple:
    """Create multiple symbols from a whitespace/comma separated string."""
    parts = [part for part in names.replace(",", " ").split() if part]
    return tuple(Symbol(part) for part in parts)


def _const_value(expr: Expr):
    if isinstance(expr, Integer):
        return expr.value
    if isinstance(expr, Float):
        return expr.value
    return None


#: Memo tables of the n-ary canonicalizers, keyed by operand tuple.  Safe
#: because expressions are immutable and the builders are pure functions
#: of their operands' structure.
_ADD_MEMO: Dict[tuple, "Expr"] = {}
_MUL_MEMO: Dict[tuple, "Expr"] = {}


def _memoized_make(memo: Dict[tuple, "Expr"], builder, operands: tuple) -> "Expr":
    """Memoize a pure n-ary canonicalizer on its (Expr-only) operand tuple."""
    cached = memo.get(operands)
    if cached is not None:
        PERF.increment("symbolic.make.hits")
        return cached
    PERF.increment("symbolic.make.misses")
    result = builder(operands)
    if len(memo) >= _MEMO_LIMIT:
        memo.clear()
    memo[operands] = result
    return result


class Add(Expr):
    """Sum of terms (n-ary, flattened, constants folded)."""

    __slots__ = ("args",)

    def __init__(self, args: Sequence[Expr]):
        self.args = tuple(args)

    @staticmethod
    def make(*operands: Expr) -> Expr:
        return _memoized_make(_ADD_MEMO, Add._make, operands)

    @staticmethod
    def _make(operands: Sequence[Expr]) -> Expr:
        terms: list[Expr] = []
        constant: Number = 0
        is_float = False

        def push(term: Expr) -> None:
            nonlocal constant, is_float
            if isinstance(term, Add):
                for sub in term.args:
                    push(sub)
                return
            value = _const_value(term)
            if value is not None:
                constant = constant + value
                is_float = is_float or isinstance(term, Float)
                return
            terms.append(term)

        for operand in operands:
            push(sympify(operand))

        # Collect like terms: coefficient * base
        collected: Dict[tuple, list] = {}
        order: list[tuple] = []
        for term in terms:
            coeff, base = _split_coefficient(term)
            key = base.key()
            if key not in collected:
                collected[key] = [0, base]
                order.append(key)
            collected[key][0] += coeff
        new_terms = []
        for key in order:
            coeff, base = collected[key]
            if coeff == 0:
                continue
            if coeff == 1:
                new_terms.append(base)
            else:
                new_terms.append(Mul.make(_number_to_expr(coeff), base))

        if constant != 0 or not new_terms:
            const_expr = _number_to_expr(constant, prefer_float=is_float)
            if constant != 0 or not new_terms:
                new_terms = new_terms + [const_expr] if new_terms else [const_expr]
        if len(new_terms) == 1:
            return new_terms[0]
        return Add(new_terms)

    def children(self) -> Sequence[Expr]:
        return self.args

    def _compute_key(self) -> tuple:
        return ("add", tuple(sorted(arg.key() for arg in self.args)))

    def _subs_impl(self, mapping: Dict[str, Expr]) -> Expr:
        return Add.make(*[arg._subs(mapping) for arg in self.args])

    def evaluate(self, env: Mapping[str, Number] | None = None) -> Number:
        return sum(arg.evaluate(env) for arg in self.args)

    def __str__(self) -> str:
        parts = []
        for index, arg in enumerate(self.args):
            text = _maybe_paren(arg, Add)
            if index == 0:
                parts.append(text)
            elif text.startswith("-"):
                parts.append(f"- {text[1:]}")
            else:
                parts.append(f"+ {text}")
        return " ".join(parts)


class Mul(Expr):
    """Product of factors (n-ary, flattened, constants folded)."""

    __slots__ = ("args",)

    def __init__(self, args: Sequence[Expr]):
        self.args = tuple(args)

    @staticmethod
    def make(*operands: Expr) -> Expr:
        return _memoized_make(_MUL_MEMO, Mul._make, operands)

    @staticmethod
    def _make(operands: Sequence[Expr]) -> Expr:
        factors: list[Expr] = []
        constant: Number = 1
        is_float = False

        def push(factor: Expr) -> None:
            nonlocal constant, is_float
            if isinstance(factor, Mul):
                for sub in factor.args:
                    push(sub)
                return
            value = _const_value(factor)
            if value is not None:
                constant = constant * value
                is_float = is_float or isinstance(factor, Float)
                return
            factors.append(factor)

        for operand in operands:
            push(sympify(operand))

        if constant == 0:
            return _number_to_expr(0, prefer_float=is_float)
        # Distribute a constant coefficient over a sum so that differences of
        # affine index expressions cancel (e.g. i - (i - 1) simplifies to 1).
        if len(factors) == 1 and isinstance(factors[0], Add) and constant != 1:
            coefficient = _number_to_expr(constant, prefer_float=is_float)
            return Add.make(*[Mul.make(coefficient, term) for term in factors[0].args])
        result_factors: list[Expr] = []
        if constant != 1 or not factors:
            result_factors.append(_number_to_expr(constant, prefer_float=is_float))
        result_factors.extend(factors)
        if len(result_factors) == 1:
            return result_factors[0]
        return Mul(result_factors)

    def children(self) -> Sequence[Expr]:
        return self.args

    def _compute_key(self) -> tuple:
        return ("mul", tuple(sorted(arg.key() for arg in self.args)))

    def _subs_impl(self, mapping: Dict[str, Expr]) -> Expr:
        return Mul.make(*[arg._subs(mapping) for arg in self.args])

    def evaluate(self, env: Mapping[str, Number] | None = None) -> Number:
        result: Number = 1
        for arg in self.args:
            result = result * arg.evaluate(env)
        return result

    def __str__(self) -> str:
        return " * ".join(_maybe_paren(arg, Mul) for arg in self.args)


class Div(Expr):
    """True division (kept exact when both sides are integer constants that divide)."""

    __slots__ = ("num", "den")

    def __init__(self, num: Expr, den: Expr):
        self.num = num
        self.den = den

    @staticmethod
    def make(num: Expr, den: Expr) -> Expr:
        num = sympify(num)
        den = sympify(den)
        dval = _const_value(den)
        if dval == 0:
            raise SymbolicError("Division by zero in symbolic expression")
        nval = _const_value(num)
        if nval is not None and dval is not None:
            if isinstance(nval, int) and isinstance(dval, int) and nval % dval == 0:
                return Integer(nval // dval)
            return Float(nval / dval)
        if dval == 1:
            return num
        return Div(num, den)

    def children(self) -> Sequence[Expr]:
        return (self.num, self.den)

    def _compute_key(self) -> tuple:
        return ("div", self.num.key(), self.den.key())

    def _subs_impl(self, mapping: Dict[str, Expr]) -> Expr:
        return Div.make(self.num._subs(mapping), self.den._subs(mapping))

    def evaluate(self, env: Mapping[str, Number] | None = None) -> Number:
        return self.num.evaluate(env) / self.den.evaluate(env)

    def __str__(self) -> str:
        return f"{_maybe_paren(self.num, Div)} / {_maybe_paren(self.den, Div)}"


class FloorDiv(Expr):
    """Floor division, used for tiling and strided subsets."""

    __slots__ = ("num", "den")

    def __init__(self, num: Expr, den: Expr):
        self.num = num
        self.den = den

    @staticmethod
    def make(num: Expr, den: Expr) -> Expr:
        num = sympify(num)
        den = sympify(den)
        dval = _const_value(den)
        if dval == 0:
            raise SymbolicError("Floor division by zero in symbolic expression")
        nval = _const_value(num)
        if nval is not None and dval is not None:
            return Integer(int(math.floor(nval / dval)))
        if dval == 1:
            return num
        return FloorDiv(num, den)

    def children(self) -> Sequence[Expr]:
        return (self.num, self.den)

    def _compute_key(self) -> tuple:
        return ("floordiv", self.num.key(), self.den.key())

    def _subs_impl(self, mapping: Dict[str, Expr]) -> Expr:
        return FloorDiv.make(self.num._subs(mapping), self.den._subs(mapping))

    def evaluate(self, env: Mapping[str, Number] | None = None) -> Number:
        return int(math.floor(self.num.evaluate(env) / self.den.evaluate(env)))

    def __str__(self) -> str:
        return f"{_maybe_paren(self.num, FloorDiv)} // {_maybe_paren(self.den, FloorDiv)}"


class Mod(Expr):
    """Modulo operation."""

    __slots__ = ("num", "den")

    def __init__(self, num: Expr, den: Expr):
        self.num = num
        self.den = den

    @staticmethod
    def make(num: Expr, den: Expr) -> Expr:
        num = sympify(num)
        den = sympify(den)
        dval = _const_value(den)
        if dval == 0:
            raise SymbolicError("Modulo by zero in symbolic expression")
        nval = _const_value(num)
        if nval is not None and dval is not None:
            return _number_to_expr(nval % dval)
        if dval == 1:
            return Integer(0)
        return Mod(num, den)

    def children(self) -> Sequence[Expr]:
        return (self.num, self.den)

    def _compute_key(self) -> tuple:
        return ("mod", self.num.key(), self.den.key())

    def _subs_impl(self, mapping: Dict[str, Expr]) -> Expr:
        return Mod.make(self.num._subs(mapping), self.den._subs(mapping))

    def evaluate(self, env: Mapping[str, Number] | None = None) -> Number:
        return self.num.evaluate(env) % self.den.evaluate(env)

    def __str__(self) -> str:
        return f"{_maybe_paren(self.num, Mod)} % {_maybe_paren(self.den, Mod)}"


class Pow(Expr):
    """Power operation (rarely needed; kept for math-dialect lowering)."""

    __slots__ = ("base", "exp")

    def __init__(self, base: Expr, exp: Expr):
        self.base = base
        self.exp = exp

    @staticmethod
    def make(base: Expr, exp: Expr) -> Expr:
        base = sympify(base)
        exp = sympify(exp)
        bval = _const_value(base)
        eval_ = _const_value(exp)
        if bval is not None and eval_ is not None:
            return _number_to_expr(bval**eval_)
        if eval_ == 1:
            return base
        if eval_ == 0:
            return Integer(1)
        return Pow(base, exp)

    def children(self) -> Sequence[Expr]:
        return (self.base, self.exp)

    def _compute_key(self) -> tuple:
        return ("pow", self.base.key(), self.exp.key())

    def _subs_impl(self, mapping: Dict[str, Expr]) -> Expr:
        return Pow.make(self.base._subs(mapping), self.exp._subs(mapping))

    def evaluate(self, env: Mapping[str, Number] | None = None) -> Number:
        return self.base.evaluate(env) ** self.exp.evaluate(env)

    def __str__(self) -> str:
        return f"{_maybe_paren(self.base, Pow)} ** {_maybe_paren(self.exp, Pow)}"


class Min(Expr):
    """n-ary minimum."""

    __slots__ = ("args",)

    def __init__(self, args: Sequence[Expr]):
        self.args = tuple(args)

    @staticmethod
    def make(*operands: ExprLike) -> Expr:
        return _make_minmax(Min, min, operands)

    def children(self) -> Sequence[Expr]:
        return self.args

    def _compute_key(self) -> tuple:
        return ("min", tuple(sorted(arg.key() for arg in self.args)))

    def _subs_impl(self, mapping: Dict[str, Expr]) -> Expr:
        return Min.make(*[arg._subs(mapping) for arg in self.args])

    def evaluate(self, env: Mapping[str, Number] | None = None) -> Number:
        return min(arg.evaluate(env) for arg in self.args)

    def __str__(self) -> str:
        return "Min(" + ", ".join(str(arg) for arg in self.args) + ")"


class Max(Expr):
    """n-ary maximum."""

    __slots__ = ("args",)

    def __init__(self, args: Sequence[Expr]):
        self.args = tuple(args)

    @staticmethod
    def make(*operands: ExprLike) -> Expr:
        return _make_minmax(Max, max, operands)

    def children(self) -> Sequence[Expr]:
        return self.args

    def _compute_key(self) -> tuple:
        return ("max", tuple(sorted(arg.key() for arg in self.args)))

    def _subs_impl(self, mapping: Dict[str, Expr]) -> Expr:
        return Max.make(*[arg._subs(mapping) for arg in self.args])

    def evaluate(self, env: Mapping[str, Number] | None = None) -> Number:
        return max(arg.evaluate(env) for arg in self.args)

    def __str__(self) -> str:
        return "Max(" + ", ".join(str(arg) for arg in self.args) + ")"


def _linear_bounds_assuming_positive(expr: Expr):
    """(lower, upper) bounds of ``expr`` assuming every symbol is an integer >= 1.

    Returns ``None`` for a bound that cannot be established.  Only linear
    combinations of symbols are analyzed.
    """
    terms = expr.args if isinstance(expr, Add) else (expr,)
    lower: Number | None = 0
    upper: Number | None = 0
    for term in terms:
        value = _const_value(term)
        if value is not None:
            lower = None if lower is None else lower + value
            upper = None if upper is None else upper + value
            continue
        coefficient, base = _split_coefficient(term)
        if not isinstance(base, Symbol):
            return None, None
        if coefficient > 0:
            lower = None if lower is None else lower + coefficient  # symbol >= 1
            upper = None  # unbounded above
        elif coefficient < 0:
            lower = None  # unbounded below
            upper = None if upper is None else upper + coefficient
    return lower, upper


def _provably_ge(a: Expr, b: Expr) -> bool:
    """Whether ``a >= b`` holds for all positive integer symbol values."""
    lower, _ = _linear_bounds_assuming_positive(Add.make(a, Mul.make(_NEG_ONE, b)))
    return lower is not None and lower >= 0


def _make_minmax(cls, fold, operands: Iterable[ExprLike]) -> Expr:
    flat: list[Expr] = []
    constants: list[Number] = []
    for operand in operands:
        expr = sympify(operand)
        if isinstance(expr, cls):
            flat.extend(expr.args)
        else:
            flat.append(expr)
    unique: Dict[tuple, Expr] = {}
    symbolic: list[Expr] = []
    for expr in flat:
        value = _const_value(expr)
        if value is not None:
            constants.append(value)
            continue
        if expr.key() not in unique:
            unique[expr.key()] = expr
            symbolic.append(expr)
    args: list[Expr] = list(symbolic)
    if constants:
        args.append(_number_to_expr(fold(constants)))
    if not args:
        raise SymbolicError("Min/Max requires at least one operand")
    # Prune arguments dominated under the positive-symbol assumption
    # (array sizes / trip counts are >= 1), e.g. Min(N - 1, 0) -> 0.
    if len(args) > 1:
        kept: list[Expr] = []
        for candidate in args:
            dominated = False
            for other in args:
                if other is candidate:
                    continue
                if cls is Min and _provably_ge(candidate, other):
                    dominated = True
                    break
                if cls is Max and _provably_ge(other, candidate):
                    dominated = True
                    break
            if not dominated:
                kept.append(candidate)
        if kept:
            args = kept
    if len(args) == 1:
        return args[0]
    return cls(args)


# ---------------------------------------------------------------------------
# Boolean expressions
# ---------------------------------------------------------------------------


class BoolExpr(Expr):
    """Base class for boolean-valued symbolic expressions."""

    __slots__ = ()

    def logical_and(self, other: "BoolExpr") -> "BoolExpr":
        return And.make(self, other)

    def logical_or(self, other: "BoolExpr") -> "BoolExpr":
        return Or.make(self, other)

    def logical_not(self) -> "BoolExpr":
        return Not.make(self)


class BoolConst(BoolExpr):
    """Boolean constant ``true`` / ``false`` (two interned instances)."""

    __slots__ = ("value",)

    _interned: Dict[bool, "BoolConst"] = {}

    def __new__(cls, value: bool):
        value = bool(value)
        if cls is BoolConst:
            self = BoolConst._interned.get(value)
            if self is not None:
                PERF.increment("symbolic.intern.hits")
                return self
        PERF.increment("symbolic.intern.misses")
        self = object.__new__(cls)
        self.value = value
        if cls is BoolConst:
            BoolConst._interned[value] = self
        return self

    def __reduce__(self):
        return (BoolConst, (self.value,))

    def _compute_key(self) -> tuple:
        return ("bool", self.value)

    def _compute_free(self) -> frozenset:
        return _EMPTY_FROZENSET

    def _subs_impl(self, mapping: Dict[str, Expr]) -> Expr:
        return self

    def evaluate(self, env: Mapping[str, Number] | None = None) -> Number:
        return self.value

    def __str__(self) -> str:
        return "true" if self.value else "false"


TRUE = BoolConst(True)
FALSE = BoolConst(False)

_COMPARE_FOLD = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Compare(BoolExpr):
    """Binary comparison between two arithmetic expressions."""

    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Expr, rhs: Expr):
        if op not in _COMPARE_FOLD:
            raise SymbolicError(f"Unknown comparison operator {op!r}")
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    @staticmethod
    def make(op: str, lhs: ExprLike, rhs: ExprLike) -> BoolExpr:
        lhs = sympify(lhs)
        rhs = sympify(rhs)
        lval = _const_value(lhs)
        rval = _const_value(rhs)
        if lval is not None and rval is not None:
            return BoolConst(_COMPARE_FOLD[op](lval, rval))
        # Structural: x == x, x <= x, x >= x are trivially true; x < x false.
        if lhs.key() == rhs.key():
            if op in ("==", "<=", ">="):
                return TRUE
            if op in ("!=", "<", ">"):
                return FALSE
        # Normalize to a comparison against zero difference where possible.
        diff = Add.make(lhs, Mul.make(_NEG_ONE, rhs))
        dval = _const_value(diff)
        if dval is not None:
            return BoolConst(_COMPARE_FOLD[op](dval, 0))
        return Compare(op, lhs, rhs)

    def children(self) -> Sequence[Expr]:
        return (self.lhs, self.rhs)

    def _compute_key(self) -> tuple:
        return ("cmp", self.op, self.lhs.key(), self.rhs.key())

    def _subs_impl(self, mapping: Dict[str, Expr]) -> Expr:
        return Compare.make(self.op, self.lhs._subs(mapping), self.rhs._subs(mapping))

    def evaluate(self, env: Mapping[str, Number] | None = None) -> Number:
        return _COMPARE_FOLD[self.op](self.lhs.evaluate(env), self.rhs.evaluate(env))

    def __str__(self) -> str:
        return f"{self.lhs} {self.op} {self.rhs}"


class And(BoolExpr):
    """Logical conjunction."""

    __slots__ = ("args",)

    def __init__(self, args: Sequence[BoolExpr]):
        self.args = tuple(args)

    @staticmethod
    def make(*operands: ExprLike) -> BoolExpr:
        flat: list[BoolExpr] = []
        for operand in operands:
            expr = sympify(operand)
            if isinstance(expr, And):
                flat.extend(expr.args)
            elif isinstance(expr, BoolConst):
                if not expr.value:
                    return FALSE
            else:
                flat.append(expr)
        if not flat:
            return TRUE
        if len(flat) == 1:
            return flat[0]
        return And(flat)

    def children(self) -> Sequence[Expr]:
        return self.args

    def _compute_key(self) -> tuple:
        return ("and", tuple(sorted(arg.key() for arg in self.args)))

    def _subs_impl(self, mapping: Dict[str, Expr]) -> Expr:
        return And.make(*[arg._subs(mapping) for arg in self.args])

    def evaluate(self, env: Mapping[str, Number] | None = None) -> Number:
        return all(arg.evaluate(env) for arg in self.args)

    def __str__(self) -> str:
        return " and ".join(f"({arg})" for arg in self.args)


class Or(BoolExpr):
    """Logical disjunction."""

    __slots__ = ("args",)

    def __init__(self, args: Sequence[BoolExpr]):
        self.args = tuple(args)

    @staticmethod
    def make(*operands: ExprLike) -> BoolExpr:
        flat: list[BoolExpr] = []
        for operand in operands:
            expr = sympify(operand)
            if isinstance(expr, Or):
                flat.extend(expr.args)
            elif isinstance(expr, BoolConst):
                if expr.value:
                    return TRUE
            else:
                flat.append(expr)
        if not flat:
            return FALSE
        if len(flat) == 1:
            return flat[0]
        return Or(flat)

    def children(self) -> Sequence[Expr]:
        return self.args

    def _compute_key(self) -> tuple:
        return ("or", tuple(sorted(arg.key() for arg in self.args)))

    def _subs_impl(self, mapping: Dict[str, Expr]) -> Expr:
        return Or.make(*[arg._subs(mapping) for arg in self.args])

    def evaluate(self, env: Mapping[str, Number] | None = None) -> Number:
        return any(arg.evaluate(env) for arg in self.args)

    def __str__(self) -> str:
        return " or ".join(f"({arg})" for arg in self.args)


class Not(BoolExpr):
    """Logical negation."""

    __slots__ = ("arg",)

    def __init__(self, arg: BoolExpr):
        self.arg = arg

    @staticmethod
    def make(operand: ExprLike) -> BoolExpr:
        expr = sympify(operand)
        if isinstance(expr, BoolConst):
            return BoolConst(not expr.value)
        if isinstance(expr, Not):
            return expr.arg
        if isinstance(expr, Compare):
            negated = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
            return Compare.make(negated[expr.op], expr.lhs, expr.rhs)
        return Not(expr)

    def children(self) -> Sequence[Expr]:
        return (self.arg,)

    def _compute_key(self) -> tuple:
        return ("not", self.arg.key())

    def _subs_impl(self, mapping: Dict[str, Expr]) -> Expr:
        return Not.make(self.arg._subs(mapping))

    def evaluate(self, env: Mapping[str, Number] | None = None) -> Number:
        return not self.arg.evaluate(env)

    def __str__(self) -> str:
        return f"not ({self.arg})"


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _number_to_expr(value: Number, prefer_float: bool = False) -> Expr:
    if isinstance(value, bool):
        return BoolConst(value)
    if isinstance(value, int) and not prefer_float:
        return Integer(value)
    if isinstance(value, float) and value.is_integer() and not prefer_float:
        return Integer(int(value))
    return Float(float(value))


def _split_coefficient(term: Expr) -> tuple:
    """Split ``term`` into (numeric coefficient, symbolic remainder)."""
    if isinstance(term, Mul):
        coeff: Number = 1
        rest: list[Expr] = []
        for factor in term.args:
            value = _const_value(factor)
            if value is not None:
                coeff *= value
            else:
                rest.append(factor)
        if not rest:
            return coeff, Integer(1)
        if len(rest) == 1:
            return coeff, rest[0]
        return coeff, Mul(rest)
    return 1, term


_PRECEDENCE = {Add: 1, Compare: 0, Or: 0, And: 0, Mul: 2, Div: 2, FloorDiv: 2, Mod: 2, Pow: 3}

#: Shared -1 constant used by negation/subtraction (hot construction path).
_NEG_ONE = Integer(-1)


def _maybe_paren(expr: Expr, parent_cls: type) -> str:
    text = str(expr)
    child_prec = _PRECEDENCE.get(type(expr))
    parent_prec = _PRECEDENCE.get(parent_cls)
    if child_prec is not None and parent_prec is not None and child_prec < parent_prec:
        return f"({text})"
    return text
