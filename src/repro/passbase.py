"""Unified pass, pass-registry and report infrastructure.

Both IR layers — the MLIR-like control-centric IR (:mod:`repro.passes`) and
the SDFG data-centric IR (:mod:`repro.transforms`) — run ordered lists of
passes to a fixed point and record per-pass statistics.  Historically each
layer carried its own copy of that machinery (``Pass``/``PassManager``/
``PassPipelineReport`` vs. ``DataCentricPass``/``DataCentricPipeline``/
``PipelineReport``); this module is the single shared implementation,
mirroring MLIR's homogenized pass infrastructure:

* :class:`PassBase` — a named pass with a ``run(target) -> bool`` hook;
* :class:`PassRunner` — runs an ordered pass list, optionally repeating
  until a fixed point, producing a :class:`StageReport`;
* :class:`PassRegistry` — a name → pass-class registry so declarative
  pipeline specs (:mod:`repro.pipeline.spec`) can reference passes by name;
* :class:`StageReport` / :class:`PassRecord` — per-stage pass statistics
  (the former ``PassPipelineReport`` and ``PipelineReport``, unified);
* :class:`CompilationReport` — per-stage timings of one whole compilation
  (frontend / control / bridge / data / codegen), surfaced on
  :class:`~repro.pipeline.GeneratedProgram`.

The layer-specific base classes remain as thin aliases so existing passes
and callers keep working unchanged.
"""

from __future__ import annotations

import difflib
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Type

from .errors import PipelineError
from .perf import PERF


class PassBase:
    """Base class for passes of either IR layer."""

    #: Human-readable pass name (defaults to the class name).
    NAME: Optional[str] = None

    @property
    def name(self) -> str:
        return self.NAME or type(self).__name__

    def run(self, target) -> bool:
        """Transform ``target`` in place; return True if anything changed."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


@dataclass
class PassRecord:
    """Execution record of a single pass invocation.

    ``matches``/``applied`` carry the pattern-engine accounting of
    :class:`repro.transforms.Transformation` passes — how many sites the
    pass's pattern matched and how many it rewrote during this invocation.
    They stay ``None`` for passes without the match/apply contract
    (control-centric passes, plain whole-graph passes).
    """

    name: str
    changed: bool
    seconds: float
    matches: Optional[int] = None
    applied: Optional[int] = None


#: Backwards-compatible alias (the control-centric layer's historical name).
PassStatistics = PassRecord


@dataclass
class StageReport:
    """Per-pass statistics of one pipeline stage (control or data)."""

    stage: str = ""
    records: List[PassRecord] = field(default_factory=list)
    #: Wall time of the whole stage including runner overhead; falls back
    #: to the per-pass sum when the stage was not run through a runner.
    wall_seconds: Optional[float] = None

    @property
    def statistics(self) -> List[PassRecord]:
        """Alias of :attr:`records` (the control-centric layer's name)."""
        return self.records

    @property
    def total_seconds(self) -> float:
        return sum(record.seconds for record in self.records)

    @property
    def seconds(self) -> float:
        """Stage wall time (:attr:`wall_seconds` when known)."""
        return self.wall_seconds if self.wall_seconds is not None else self.total_seconds

    @property
    def changed(self) -> bool:
        return any(record.changed for record in self.records)

    def applied_passes(self) -> List[str]:
        return [record.name for record in self.records if record.changed]

    def by_pass(self) -> Dict[str, float]:
        """Total seconds spent per pass name."""
        totals: Dict[str, float] = {}
        for record in self.records:
            totals[record.name] = totals.get(record.name, 0.0) + record.seconds
        return totals

    def match_totals(self) -> Dict[str, Dict[str, int]]:
        """Aggregated pattern accounting per pass name.

        ``{name: {"matches": total, "applied": total}}`` over every
        invocation that reported match counts (pattern-based passes run
        once per fixpoint iteration; the totals sum across iterations).
        """
        totals: Dict[str, Dict[str, int]] = {}
        for record in self.records:
            if record.matches is None and record.applied is None:
                continue
            entry = totals.setdefault(record.name, {"matches": 0, "applied": 0})
            entry["matches"] += record.matches or 0
            entry["applied"] += record.applied or 0
        return totals

    def summary(self) -> str:
        lines = [
            f"{record.name:<34} changed={record.changed} {record.seconds * 1e3:8.2f} ms"
            + _match_suffix(record)
            for record in self.records
        ]
        lines.append(f"{'total':<34} {'':13} {self.total_seconds * 1e3:8.2f} ms")
        return "\n".join(lines)


@dataclass
class CompilationReport:
    """Per-stage timings of one whole compilation.

    Stages appear in execution order; a pipeline without a bridge has no
    ``bridge``/``data`` stages, one without control-centric passes no
    ``control`` stage.  The ``control`` and ``data`` stages carry the
    per-pass :class:`PassRecord` statistics.
    """

    pipeline: str = ""
    stages: List[StageReport] = field(default_factory=list)
    #: Profiler counter/timer increments attributed to this compilation
    #: (a delta of :data:`repro.perf.PERF` around the compile).  Includes
    #: symbolic-engine cache statistics, frontend/pass work counts, etc.
    #: Exact for non-overlapping compiles; compiles running concurrently
    #: on threads of one process fold each other's work into their deltas
    #: (worker *processes* keep independent counters).
    counters: Dict[str, float] = field(default_factory=dict)

    def add_stage(
        self, name: str, seconds: float, records: Sequence[PassRecord] = ()
    ) -> StageReport:
        report = StageReport(stage=name, records=list(records), wall_seconds=seconds)
        self.stages.append(report)
        return report

    def stage(self, name: str) -> Optional[StageReport]:
        for report in self.stages:
            if report.stage == name:
                return report
        return None

    @property
    def stage_seconds(self) -> Dict[str, float]:
        return {report.stage: report.seconds for report in self.stages}

    @property
    def total_seconds(self) -> float:
        return sum(report.seconds for report in self.stages)

    def summary(self) -> str:
        lines = [f"pipeline {self.pipeline or '<anonymous>'}"]
        for report in self.stages:
            lines.append(f"  {report.stage:<10} {report.seconds * 1e3:8.2f} ms")
            for record in report.records:
                lines.append(
                    f"    {record.name:<32} changed={record.changed} "
                    f"{record.seconds * 1e3:8.2f} ms" + _match_suffix(record)
                )
        lines.append(f"  {'total':<10} {self.total_seconds * 1e3:8.2f} ms")
        for name in sorted(self.counters):
            lines.append(f"  {name:<40} {self.counters[name]:12g}")
        return "\n".join(lines)


def match_suffix(record: PassRecord) -> str:
    """Render a record's pattern accounting (empty for plain passes).

    The single renderer of the ``matches=… applied=…`` tail, shared by the
    report summaries here and the CLI's ``compile --verbose`` output.
    """
    if record.matches is None and record.applied is None:
        return ""
    return f"  matches={record.matches or 0} applied={record.applied or 0}"


#: Backwards-compatible private alias.
_match_suffix = match_suffix


class PassRunner:
    """Runs an ordered sequence of passes, optionally to a fixed point.

    ``validate`` is an optional callable invoked on the target after every
    pass (IR verification / SDFG validation).  The runner is IR-agnostic:
    it only requires each pass to implement ``run(target) -> bool``.
    """

    def __init__(
        self,
        passes: Sequence[PassBase],
        max_iterations: int = 1,
        validate: Optional[Callable] = None,
        stage: str = "passes",
    ):
        self.passes = list(passes)
        self.max_iterations = max(1, max_iterations)
        self.validate = validate
        self.stage = stage

    def add(self, pass_obj: PassBase) -> "PassRunner":
        self.passes.append(pass_obj)
        return self

    def run(self, target) -> StageReport:
        report = StageReport(stage=self.stage)
        wall_start = time.perf_counter()
        for _ in range(self.max_iterations):
            iteration_changed = False
            for pass_obj in self.passes:
                start = time.perf_counter()
                changed = bool(pass_obj.run(target))
                elapsed = time.perf_counter() - start
                report.records.append(PassRecord(
                    pass_obj.name, changed, elapsed,
                    # Pattern-based passes report per-invocation site counts.
                    matches=getattr(pass_obj, "last_matches", None),
                    applied=getattr(pass_obj, "last_applied", None),
                ))
                PERF.increment("passes.runs")
                if changed:
                    PERF.increment("passes.applied")
                iteration_changed = iteration_changed or changed
                if self.validate is not None:
                    # Run even after a reportedly-unchanged pass: validation
                    # is an opt-in safety net, and a buggy pass may mutate
                    # the IR while reporting changed=False.
                    self.validate(target)
            if not iteration_changed:
                break
        report.wall_seconds = time.perf_counter() - wall_start
        PERF.add_seconds(f"passes.{self.stage}", report.wall_seconds)
        return report


class PassRegistry:
    """Name-keyed registry of pass classes for one IR layer.

    Declarative pipeline specs reference passes by registered name; the
    registry instantiates them (with per-pass options as constructor
    keyword arguments) and produces helpful errors — including
    closest-match suggestions — for unknown names.
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._classes: "OrderedDict[str, Type[PassBase]]" = OrderedDict()

    def register(
        self,
        cls: Optional[Type[PassBase]] = None,
        *,
        name: Optional[str] = None,
        overwrite: bool = False,
    ):
        """Register a pass class (usable directly or as a decorator).

        Re-registering an existing name raises unless ``overwrite=True``:
        silently redefining a pass would change what every pipeline spec
        referencing it means while its cache keys (which address pass
        *names*) stayed the same — stale cached code would be served as
        valid hits.
        """

        def _register(pass_cls: Type[PassBase]) -> Type[PassBase]:
            key = name or pass_cls.NAME or pass_cls.__name__
            if key in self._classes and not overwrite:
                raise PipelineError(
                    f"{self.kind} pass {key!r} is already registered; "
                    "pass overwrite=True to replace it"
                )
            self._classes[key] = pass_cls
            return pass_cls

        return _register(cls) if cls is not None else _register

    def names(self) -> List[str]:
        return list(self._classes)

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def get(self, name: str) -> Type[PassBase]:
        try:
            return self._classes[name]
        except KeyError:
            raise PipelineError(
                f"Unknown {self.kind} pass {name!r}; "
                + suggest(name, self.names(), "registered passes")
            ) from None

    def build(self, name: str, options: Optional[Mapping[str, object]] = None) -> PassBase:
        cls = self.get(name)
        try:
            return cls(**dict(options or {}))
        except TypeError as exc:
            raise PipelineError(
                f"Bad options {dict(options or {})!r} for {self.kind} pass {name!r}: {exc}"
            ) from exc


def suggest(name: str, known: Sequence[str], what: str = "registered names") -> str:
    """Render the known-name list, with a closest-match hint when one exists."""
    close = difflib.get_close_matches(name, known, n=1)
    hint = f"did you mean {close[0]!r}? " if close else ""
    return f"{hint}{what}: {', '.join(known) or '<none>'}"
