"""Compile-time profiling: process-global counters, timers and cache stats.

The compiler's hot paths (symbolic interning, canonicalizer memo tables,
the expression-parser cache, pass execution, the compile cache) report
into one process-global :class:`PerfCounters` instance, :data:`PERF`.
The service and pipeline layers snapshot it around a compilation and
attach the delta to the
:class:`~repro.passbase.CompilationReport`, so every compile carries an
account of the work it actually performed — and, crucially, of the work
it *skipped* (a compile-cache hit must perform zero frontend/pass work,
a regression-tested invariant of the CI benchmark smoke job).

Counter naming convention (dotted, lowercase):

* ``symbolic.intern.hits`` / ``.misses`` — leaf-node hash-consing;
* ``symbolic.make.hits`` / ``.misses`` — Add/Mul canonicalizer memo;
* ``symbolic.parse.hits`` / ``.misses`` — string-expression parse cache;
* ``frontend.runs`` — C frontend invocations;
* ``passes.runs`` / ``passes.applied`` — pass executions / passes that
  changed their IR;
* ``compile_cache.hits`` / ``.misses`` — content-addressed compile cache.

This module is dependency-free (it must be importable from the symbolic
core without cycles).  Counters are plain dict increments — cheap enough
for hot paths — and are process-local: parallel compilation *worker
processes* accumulate their own counters.  Within one process the
profiler is global, so snapshot/delta attribution (e.g. a
``CompilationReport``'s counters) is only exact for compiles that do not
overlap in time; compiles run concurrently on *threads* in the same
process see each other's increments folded into their deltas.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping, Optional


class PerfCounters:
    """Named monotonic counters plus named accumulated timers.

    Increment operations are unsynchronized dict updates: under the GIL
    they are safe, merely approximate if multiple threads race — fine for
    profiling.  Use :meth:`snapshot` + :meth:`delta_since` to attribute
    work to a region of execution.
    """

    __slots__ = ("_counts", "_seconds")

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}
        self._seconds: Dict[str, float] = {}

    # -- counters -------------------------------------------------------------
    def increment(self, name: str, amount: int = 1) -> None:
        counts = self._counts
        counts[name] = counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    # -- timers ---------------------------------------------------------------
    def add_seconds(self, name: str, seconds: float) -> None:
        table = self._seconds
        table[name] = table.get(name, 0.0) + seconds

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_seconds(name, time.perf_counter() - start)

    def seconds(self, name: str) -> float:
        return self._seconds.get(name, 0.0)

    # -- snapshots -------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """A point-in-time copy of all counters and timers.

        Timer entries are suffixed with ``.seconds`` so one flat mapping
        carries both kinds.
        """
        combined: Dict[str, float] = dict(self._counts)
        for name, seconds in self._seconds.items():
            combined[f"{name}.seconds"] = seconds
        return combined

    def delta_since(self, snapshot: Mapping[str, float]) -> Dict[str, float]:
        """Counter/timer increments since ``snapshot`` (zero deltas omitted)."""
        current = self.snapshot()
        delta: Dict[str, float] = {}
        for name, value in current.items():
            change = value - snapshot.get(name, 0)
            if change:
                delta[name] = change
        return delta

    def reset(self) -> None:
        self._counts.clear()
        self._seconds.clear()

    # -- reporting --------------------------------------------------------------
    def hit_rate(self, prefix: str) -> Optional[float]:
        """Hit rate of a ``<prefix>.hits`` / ``<prefix>.misses`` counter pair."""
        hits = self.get(f"{prefix}.hits")
        misses = self.get(f"{prefix}.misses")
        total = hits + misses
        return hits / total if total else None

    def summary(self) -> str:
        lines = []
        for name in sorted(self._counts):
            lines.append(f"{name:<40} {self._counts[name]:>12}")
        for name in sorted(self._seconds):
            lines.append(f"{name + '.seconds':<40} {self._seconds[name]:>12.4f}")
        return "\n".join(lines)


#: The process-global profiler fed by the compiler's hot paths.
PERF = PerfCounters()

__all__ = ["PERF", "PerfCounters"]
