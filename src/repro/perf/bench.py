"""Compile-time benchmark: sweep pipelines over PolyBench, emit JSON.

This is the measured baseline all compile-time optimization work is
judged against: it compiles the PolyBench suite through every registered
pipeline **cold** (no compile cache — every stage runs) and **warm**
(through a fresh in-memory :class:`~repro.service.CompileCache`, where
every compile after priming must be a pure cache hit), and emits one
``BENCH_compile.json`` document with per-(kernel, pipeline) timings,
stage breakdowns, profiler counters and symbolic-engine cache hit rates.

The warm sweep doubles as a regression check of the cached-compile
invariant: a cache hit performs **zero** frontend and pass work.  Any
frontend/pass counter increment observed during the cached phase is
reported under ``warm.violations`` (the CLI's
``--check-cached-counters`` turns that into a failing exit code, which
CI uses as a benchmark smoke gate).

``--compare BASELINE`` turns the run into a regression gate: per-pipeline
cold compile totals (over the kernels both documents share) must stay
within ``--tolerance`` (default 2x) of the committed baseline, or the
exit code is non-zero — CI's guard against compile-time regressions
slipping in silently.  Refresh the baseline by re-running the full sweep
and committing the new ``BENCH_compile.json``.

Entry points: ``python -m repro bench`` and
``benchmarks/bench_compile.py`` (both thin wrappers over
:func:`run_bench` / :func:`render_summary`).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from . import PERF

#: JSON schema tag of the emitted document.
BENCH_SCHEMA = "repro-bench-compile/v1"

#: Kernel subset of ``--quick`` mode (CI smoke): small, medium and
#: loop-carried shapes.
QUICK_KERNELS = ("gemm", "atax", "jacobi-1d")

#: Counters that must stay at zero while serving cache hits.
ZERO_WORK_COUNTERS = ("frontend.runs", "passes.runs", "passes.applied")


def machine_metadata(probe_openmp: bool = False) -> Dict:
    """Provenance of the machine a benchmark document was measured on.

    Stamped into every ``BENCH_*.json`` emitter so committed baselines are
    self-describing: parallel speedup numbers are meaningless without the
    core count they were measured with, and compile timings without the
    compiler that produced them.  ``probe_openmp=True`` additionally
    test-compiles the OpenMP feature probe (one subprocess, memoized) —
    benchmarks that never build parallel code skip it.
    """
    import os

    from ..codegen import compiler_features
    from ..sdfg.parallelism import NUM_THREADS_ENV

    metadata: Dict = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "threads_env": os.environ.get(NUM_THREADS_ENV) or None,
    }
    try:
        metadata["available_cpus"] = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        metadata["available_cpus"] = metadata["cpu_count"]
    features = compiler_features(probe_openmp=probe_openmp)
    metadata["compiler"] = None if features is None else {
        "path": features.path,
        "version": features.version,
        "openmp": features.openmp,
    }
    return metadata


def _resolve_workloads(kernels: Optional[Sequence[str]], quick: bool) -> Dict[str, str]:
    from ..passbase import suggest
    from ..errors import PipelineError
    from ..workloads import polybench_suite

    suite = polybench_suite()
    if kernels is None:
        kernels = list(QUICK_KERNELS) if quick else list(suite)
    if not kernels:
        # An explicitly empty selection (e.g. `--kernels` fed an empty CI
        # variable) must not produce a vacuous sweep that passes the gate.
        raise PipelineError("No kernels selected for the benchmark sweep")
    selected: Dict[str, str] = {}
    for name in kernels:
        if name not in suite:
            raise PipelineError(
                f"Unknown PolyBench kernel {name!r}; "
                + suggest(name, list(suite), "available kernels")
            )
        selected[name] = suite[name]
    return selected


def run_bench(
    kernels: Optional[Sequence[str]] = None,
    pipelines: Optional[Sequence[str]] = None,
    repetitions: int = 1,
    quick: bool = False,
) -> Dict:
    """Run the compile-time sweep and return the benchmark document.

    ``repetitions`` compiles each (kernel, pipeline) pair N times and
    keeps the best time (compilation is deterministic; the minimum is the
    least-noisy estimator).
    """
    from .. import __version__, generate_program, list_pipelines
    from ..service import CompileCache, cache_key

    workloads = _resolve_workloads(kernels, quick)
    pipeline_names = list(pipelines) if pipelines is not None else list_pipelines()
    if not pipeline_names:
        from ..errors import PipelineError

        raise PipelineError("No pipelines selected for the benchmark sweep")
    repetitions = max(1, int(repetitions))
    run_before = PERF.snapshot()

    # -- cold sweep: full pipelines, no cache ---------------------------------
    # The last compile of each pair also primes the warm-sweep cache (by
    # payload, not by recompiling): compilation is deterministic, so the
    # cold sweep's own products are exactly what the cache would hold.
    cache = CompileCache(max_entries=4096, directory=None, use_env_directory=False)
    cold_entries: List[Dict] = []
    cold_before = PERF.snapshot()
    cold_start = time.perf_counter()
    for kernel, source in workloads.items():
        for pipeline in pipeline_names:
            best: Optional[Dict] = None
            program = None
            for _ in range(repetitions):
                start = time.perf_counter()
                program = generate_program(source, pipeline)
                seconds = time.perf_counter() - start
                if best is None or seconds < best["seconds"]:
                    best = {
                        "kernel": kernel,
                        "pipeline": pipeline,
                        # Content address of the spec actually compiled —
                        # makes entries diffable across runs and immune to
                        # registry renames (self-describing CI artifacts).
                        "spec_id": program.spec.content_id() if program.spec else None,
                        "seconds": seconds,
                        "stage_seconds": dict(program.stage_seconds),
                        "code_bytes": len(program.code),
                    }
            cold_entries.append(best)
            cache.store(cache_key(source, pipeline), program.to_payload())
    cold_wall = time.perf_counter() - cold_start
    cold_total = sum(entry["seconds"] for entry in cold_entries)
    cold_counters = PERF.delta_since(cold_before)

    # -- warm sweep: every compile must be a pure cache hit -------------------
    warm_entries: List[Dict] = []
    warm_before = PERF.snapshot()
    warm_start = time.perf_counter()
    for kernel, source in workloads.items():
        for pipeline in pipeline_names:
            best_seconds: Optional[float] = None
            for _ in range(repetitions):
                start = time.perf_counter()
                result = cache.get_or_compile(source, pipeline)
                seconds = time.perf_counter() - start
                if not result.cache_hit:
                    raise RuntimeError(
                        f"warm compile of {kernel}/{pipeline} missed the compile cache"
                    )
                if best_seconds is None or seconds < best_seconds:
                    best_seconds = seconds
            warm_entries.append(
                {"kernel": kernel, "pipeline": pipeline, "seconds": best_seconds}
            )
    warm_wall = time.perf_counter() - warm_start
    warm_total = sum(entry["seconds"] for entry in warm_entries)
    warm_counters = PERF.delta_since(warm_before)
    violations = {
        name: warm_counters[name]
        for name in ZERO_WORK_COUNTERS
        if warm_counters.get(name)
    }

    # Hit rates over this run only (a warm process must not skew the
    # committed baseline with pre-existing counter history).
    run_delta = PERF.delta_since(run_before)
    hit_rates: Dict[str, float] = {}
    for prefix in ("symbolic.intern", "symbolic.make", "symbolic.parse", "compile_cache"):
        hits = run_delta.get(f"{prefix}.hits", 0)
        misses = run_delta.get(f"{prefix}.misses", 0)
        if hits + misses:
            hit_rates[prefix] = hits / (hits + misses)

    return {
        "schema": BENCH_SCHEMA,
        "version": __version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": machine_metadata(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "quick": bool(quick),
        "repetitions": repetitions,
        "kernels": list(workloads),
        "pipelines": pipeline_names,
        "cold": {
            # Sum of best-of-N per (kernel, pipeline) — the headline number.
            "total_seconds": cold_total,
            # Wall time of the whole sweep including all repetitions.
            "wall_seconds": cold_wall,
            "entries": cold_entries,
            "counters": cold_counters,
        },
        "warm": {
            "total_seconds": warm_total,
            "wall_seconds": warm_wall,
            "entries": warm_entries,
            "counters": warm_counters,
            "violations": violations,
        },
        "speedup_warm_over_cold": (cold_total / warm_total) if warm_total > 0 else None,
        "cache_hit_rates": hit_rates,
    }


#: Default regression tolerance of :func:`compare_bench`: a pipeline's
#: cold compile may be up to this factor slower than the committed
#: baseline before the CI gate fails.  Generous by design — the baseline
#: and the CI runner are different machines — but well inside the ~11x
#: regression the hash-consing work guards against.
DEFAULT_TOLERANCE = 2.0


def compare_bench(
    baseline: Dict, fresh: Dict, tolerance: float = DEFAULT_TOLERANCE
) -> List[str]:
    """Compare two benchmark documents; returns regression messages.

    Per-pipeline cold compile totals are compared over the (kernel,
    pipeline) pairs present in *both* documents — a ``--quick`` run gates
    against a full-suite baseline by comparing only the kernels it
    compiled.  A pipeline regresses when its fresh total exceeds
    ``tolerance`` × its baseline total; pipelines or kernels absent from
    either side are skipped (they have no baseline to regress against).
    An empty list means the gate passes.
    """
    if tolerance <= 0:
        raise ValueError(f"Tolerance must be positive, got {tolerance}")

    def per_pair(document: Dict) -> Dict:
        return {
            (entry["kernel"], entry["pipeline"]): entry["seconds"]
            for entry in document.get("cold", {}).get("entries", [])
        }

    base_pairs, fresh_pairs = per_pair(baseline), per_pair(fresh)
    shared = sorted(set(base_pairs) & set(fresh_pairs))
    base_totals: Dict[str, float] = {}
    fresh_totals: Dict[str, float] = {}
    for kernel, pipeline in shared:
        base_totals[pipeline] = base_totals.get(pipeline, 0.0) + base_pairs[(kernel, pipeline)]
        fresh_totals[pipeline] = fresh_totals.get(pipeline, 0.0) + fresh_pairs[(kernel, pipeline)]

    regressions: List[str] = []
    for pipeline in sorted(base_totals):
        base_seconds = base_totals[pipeline]
        fresh_seconds = fresh_totals[pipeline]
        if base_seconds > 0 and fresh_seconds > tolerance * base_seconds:
            regressions.append(
                f"{pipeline}: cold compile {fresh_seconds * 1e3:.1f}ms vs baseline "
                f"{base_seconds * 1e3:.1f}ms ({fresh_seconds / base_seconds:.2f}x > "
                f"{tolerance:g}x tolerance)"
            )
    return regressions


def write_bench(document: Dict, path) -> Path:
    """Write the benchmark document as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def render_summary(document: Dict) -> str:
    """Aligned text summary of a benchmark document (per-pipeline totals)."""
    per_pipeline: Dict[str, float] = {}
    for entry in document["cold"]["entries"]:
        per_pipeline[entry["pipeline"]] = (
            per_pipeline.get(entry["pipeline"], 0.0) + entry["seconds"]
        )
    lines = [
        f"compile-time benchmark ({len(document['kernels'])} kernels x "
        f"{len(document['pipelines'])} pipelines, best of {document['repetitions']})",
        f"{'pipeline':<12} {'cold total':>12}",
    ]
    for pipeline in document["pipelines"]:
        lines.append(f"{pipeline:<12} {per_pipeline.get(pipeline, 0.0) * 1e3:>10.1f}ms")
    lines.append(f"{'all':<12} {document['cold']['total_seconds'] * 1e3:>10.1f}ms")
    warm = document["warm"]
    speedup = document.get("speedup_warm_over_cold")
    lines.append(
        f"warm (cached) total: {warm['total_seconds'] * 1e3:.1f}ms"
        + (f" — {speedup:.0f}x over cold" if speedup else "")
    )
    for prefix, rate in sorted(document.get("cache_hit_rates", {}).items()):
        lines.append(f"hit rate {prefix:<18} {rate * 100:5.1f}%")
    if warm["violations"]:
        lines.append(f"CACHED-COMPILE VIOLATIONS: {warm['violations']}")
    else:
        lines.append("cached compiles performed zero frontend/pass work")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Stand-alone entry point (used by ``benchmarks/bench_compile.py``)."""
    import argparse

    parser = argparse.ArgumentParser(description="Compile-time benchmark sweep")
    add_bench_arguments(parser)
    args = parser.parse_args(argv)
    from ..errors import PipelineError

    try:
        return run_bench_cli(args)
    except PipelineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def add_bench_arguments(parser) -> None:
    """Register the shared bench CLI options on an argparse parser."""
    parser.add_argument(
        "--quick", action="store_true",
        help=f"sweep only {', '.join(QUICK_KERNELS)} (CI smoke mode)",
    )
    parser.add_argument("--kernels", nargs="*", help="PolyBench kernels to compile")
    parser.add_argument("--pipelines", nargs="*", help="registered pipelines to sweep")
    parser.add_argument(
        "--repetitions", type=int, default=1, help="best-of-N compile timing (default 1)"
    )
    parser.add_argument(
        "-o", "--output", default="BENCH_compile.json",
        help="output JSON path (default BENCH_compile.json)",
    )
    parser.add_argument(
        "--check-cached-counters", action="store_true",
        help="exit non-zero if cached compiles performed any frontend/pass work",
    )
    parser.add_argument(
        "--compare", metavar="BASELINE",
        help="compare against a committed BENCH_compile.json; exit non-zero when "
        "any pipeline's cold compile regresses beyond the tolerance",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help=f"regression factor allowed by --compare (default {DEFAULT_TOLERANCE}x)",
    )


def run_bench_cli(args) -> int:
    """Execute a parsed bench invocation; shared by CLI and script."""
    baseline = None
    if args.compare is not None:
        # Refuse the self-comparison footgun up front: with --output left
        # at its default, writing the fresh document first would both
        # clobber the committed baseline and compare the run to itself
        # (every ratio 1.0 — a gate that can never fail).
        if Path(args.compare).resolve() == Path(args.output).resolve():
            print(
                f"error: --compare baseline {args.compare!r} is the same file as "
                "--output; pass a different -o (e.g. -o BENCH_compile.fresh.json)",
                file=sys.stderr,
            )
            return 2
        try:
            baseline = json.loads(Path(args.compare).read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            print(f"error: cannot read baseline {args.compare!r}: {exc}", file=sys.stderr)
            return 1
    document = run_bench(
        kernels=args.kernels,
        pipelines=args.pipelines,
        repetitions=args.repetitions,
        quick=args.quick,
    )
    path = write_bench(document, args.output)
    print(render_summary(document))
    print(f"wrote {path}")
    if args.check_cached_counters and document["warm"]["violations"]:
        print(
            "error: cached compiles performed frontend/pass work: "
            f"{document['warm']['violations']}",
            file=sys.stderr,
        )
        return 1
    if baseline is not None:
        regressions = compare_bench(baseline, document, tolerance=args.tolerance)
        if regressions:
            print("error: compile-time regressions against the baseline:", file=sys.stderr)
            for message in regressions:
                print(f"  {message}", file=sys.stderr)
            return 1
        print(
            f"no cold-compile regressions against {args.compare} "
            f"(tolerance {args.tolerance:g}x)"
        )
    return 0
