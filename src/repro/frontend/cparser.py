"""Recursive-descent parser for the C subset.

Produces the AST defined in :mod:`repro.frontend.c_ast`.  The accepted
grammar covers the Polybench/C kernels and the paper's case-study snippets;
constructs outside the subset raise :class:`CParseError` with the offending
line, mirroring how Polygeist rejects programs it cannot translate (the
paper excludes ``nussinov`` for exactly that reason).
"""

from __future__ import annotations

from typing import List, Optional

from .c_ast import (
    Assignment,
    BinaryOp,
    Call,
    Cast,
    Compound,
    CType,
    Expression,
    ExpressionStatement,
    FloatLiteral,
    For,
    FunctionDef,
    Identifier,
    If,
    IncDec,
    IntLiteral,
    ParamDecl,
    Return,
    SizeOf,
    Statement,
    Subscript,
    Ternary,
    TranslationUnit,
    UnaryOp,
    VarDecl,
    While,
)
from .clexer import Token, preprocess, tokenize

_TYPE_KEYWORDS = {"int", "long", "float", "double", "char", "void", "unsigned", "signed"}
_TYPE_QUALIFIERS = {"const", "static", "register", "restrict"}


class CParseError(Exception):
    """Raised when the source uses constructs outside the supported subset."""


class CParser:
    """Parses a token stream into a :class:`TranslationUnit`."""

    def __init__(self, tokens: List[Token], defines: Optional[dict] = None):
        self.tokens = tokens
        self.position = 0
        self.defines = defines or {}

    # -- token helpers ----------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        token = self.peek()
        self.position += 1
        return token

    def accept(self, text: str) -> bool:
        if self.peek().text == text:
            self.position += 1
            return True
        return False

    def expect(self, text: str) -> Token:
        token = self.next()
        if token.text != text:
            raise CParseError(
                f"Line {token.line}: expected {text!r}, found {token.text!r}"
            )
        return token

    def at_type(self, offset: int = 0) -> bool:
        token = self.peek(offset)
        return token.kind == "keyword" and token.text in (_TYPE_KEYWORDS | _TYPE_QUALIFIERS)

    # -- top level ----------------------------------------------------------------
    def parse_translation_unit(self) -> TranslationUnit:
        unit = TranslationUnit(defines=self.defines)
        while self.peek().kind != "eof":
            unit.functions.append(self.parse_function())
        return unit

    def parse_type(self) -> CType:
        while self.peek().text in _TYPE_QUALIFIERS:
            self.next()
        base_parts = []
        while self.peek().kind == "keyword" and self.peek().text in _TYPE_KEYWORDS:
            base_parts.append(self.next().text)
        if not base_parts:
            token = self.peek()
            raise CParseError(f"Line {token.line}: expected a type, found {token.text!r}")
        # Normalize: unsigned/signed/long collapse onto a base type.
        if "double" in base_parts:
            base = "double"
        elif "float" in base_parts:
            base = "float"
        elif "char" in base_parts:
            base = "char"
        elif "void" in base_parts:
            base = "void"
        elif "long" in base_parts:
            base = "long"
        else:
            base = "int"
        depth = 0
        while self.accept("*"):
            while self.peek().text in _TYPE_QUALIFIERS:
                self.next()
            depth += 1
        return CType(base, depth)

    def parse_function(self) -> FunctionDef:
        return_type = self.parse_type()
        name_token = self.next()
        if name_token.kind != "id":
            raise CParseError(f"Line {name_token.line}: expected a function name")
        self.expect("(")
        parameters: List[ParamDecl] = []
        if not self.accept(")"):
            while True:
                if self.peek().text == "void" and self.peek(1).text == ")":
                    self.next()
                    break
                parameters.append(self.parse_parameter())
                if not self.accept(","):
                    break
            self.expect(")")
        body = self.parse_compound()
        return FunctionDef(name_token.text, return_type, parameters, body)

    def parse_parameter(self) -> ParamDecl:
        ctype = self.parse_type()
        name_token = self.next()
        if name_token.kind != "id":
            raise CParseError(f"Line {name_token.line}: expected a parameter name")
        dims: List[Expression] = []
        while self.accept("["):
            if self.peek().text == "]":
                dims.append(IntLiteral(-1))  # unsized leading dimension
            else:
                dims.append(self.parse_expression())
            self.expect("]")
        return ParamDecl(name_token.text, ctype, dims)

    # -- statements ------------------------------------------------------------------
    def parse_compound(self) -> Compound:
        self.expect("{")
        statements: List[Statement] = []
        while not self.accept("}"):
            statements.append(self.parse_statement())
        return Compound(statements)

    def parse_statement(self) -> Statement:
        token = self.peek()
        if token.text == "{":
            return self.parse_compound()
        if token.text == "for":
            return self.parse_for()
        if token.text == "while":
            return self.parse_while()
        if token.text == "if":
            return self.parse_if()
        if token.text == "return":
            self.next()
            if self.accept(";"):
                return Return(None)
            value = self.parse_expression()
            self.expect(";")
            return Return(value)
        if token.text == ";":
            self.next()
            return Compound([])
        if self.at_type():
            return self.parse_declaration()
        expression = self.parse_expression()
        self.expect(";")
        return ExpressionStatement(expression)

    def parse_declaration(self) -> Statement:
        ctype = self.parse_type()
        declarations: List[Statement] = []
        while True:
            name_token = self.next()
            if name_token.kind != "id":
                raise CParseError(f"Line {name_token.line}: expected a variable name")
            dims: List[Expression] = []
            while self.accept("["):
                dims.append(self.parse_expression())
                self.expect("]")
            init: Optional[Expression] = None
            if self.accept("="):
                init = self.parse_assignment_expression()
            declarations.append(VarDecl(name_token.text, ctype, dims, init))
            if not self.accept(","):
                break
        self.expect(";")
        if len(declarations) == 1:
            return declarations[0]
        return Compound(declarations)

    def parse_for(self) -> For:
        self.expect("for")
        self.expect("(")
        init: Optional[Statement] = None
        if not self.accept(";"):
            if self.at_type():
                init = self.parse_declaration()
            else:
                init = ExpressionStatement(self.parse_expression())
                self.expect(";")
        condition: Optional[Expression] = None
        if not self.accept(";"):
            condition = self.parse_expression()
            self.expect(";")
        post: Optional[Expression] = None
        if self.peek().text != ")":
            post = self.parse_expression()
        self.expect(")")
        body = self.parse_statement()
        return For(init, condition, post, body)

    def parse_while(self) -> While:
        self.expect("while")
        self.expect("(")
        condition = self.parse_expression()
        self.expect(")")
        body = self.parse_statement()
        return While(condition, body)

    def parse_if(self) -> If:
        self.expect("if")
        self.expect("(")
        condition = self.parse_expression()
        self.expect(")")
        then_body = self.parse_statement()
        else_body: Optional[Statement] = None
        if self.accept("else"):
            else_body = self.parse_statement()
        return If(condition, then_body, else_body)

    # -- expressions --------------------------------------------------------------------
    def parse_expression(self) -> Expression:
        expression = self.parse_assignment_expression()
        # Comma expressions appear in for-loop posts: "i++, j++".
        while self.peek().text == "," and self._inside_parenthesized_for_post():
            break
        return expression

    def _inside_parenthesized_for_post(self) -> bool:
        return False  # comma expressions are not supported; kept for clarity

    def parse_assignment_expression(self) -> Expression:
        target = self.parse_ternary()
        token = self.peek()
        if token.text in ("=", "+=", "-=", "*=", "/=", "%="):
            self.next()
            value = self.parse_assignment_expression()
            op = "" if token.text == "=" else token.text[0]
            if not isinstance(target, (Identifier, Subscript)):
                raise CParseError(f"Line {token.line}: invalid assignment target")
            return Assignment(op, target, value)
        return target

    def parse_ternary(self) -> Expression:
        condition = self.parse_binary(0)
        if self.accept("?"):
            then_value = self.parse_assignment_expression()
            self.expect(":")
            else_value = self.parse_assignment_expression()
            return Ternary(condition, then_value, else_value)
        return condition

    _PRECEDENCE = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def parse_binary(self, level: int) -> Expression:
        if level >= len(self._PRECEDENCE):
            return self.parse_unary()
        lhs = self.parse_binary(level + 1)
        while self.peek().text in self._PRECEDENCE[level] and self.peek().kind == "op":
            op = self.next().text
            rhs = self.parse_binary(level + 1)
            lhs = BinaryOp(op, lhs, rhs)
        return lhs

    def parse_unary(self) -> Expression:
        token = self.peek()
        if token.text in ("-", "+", "!") and token.kind == "op":
            self.next()
            return UnaryOp(token.text, self.parse_unary())
        if token.text in ("++", "--"):
            self.next()
            target = self.parse_unary()
            return IncDec(token.text, target, prefix=True)
        if token.text == "*" and token.kind == "op":
            # Pointer dereference *p — treated as p[0].
            self.next()
            return Subscript(self.parse_unary(), IntLiteral(0))
        if token.text == "&" and token.kind == "op":
            self.next()
            return self.parse_unary()  # address-of is dropped (arrays decay anyway)
        if token.text == "sizeof":
            self.next()
            self.expect("(")
            ctype = self.parse_type()
            self.expect(")")
            return SizeOf(ctype)
        if token.text == "(" and self.at_type(1):
            # Cast expression: "(double)x" or "(int*) malloc(...)".
            self.next()
            ctype = self.parse_type()
            self.expect(")")
            return Cast(ctype, self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> Expression:
        expression = self.parse_primary()
        while True:
            token = self.peek()
            if token.text == "[":
                self.next()
                index = self.parse_expression()
                self.expect("]")
                expression = Subscript(expression, index)
            elif token.text == "(" and isinstance(expression, Identifier):
                self.next()
                arguments: List[Expression] = []
                if not self.accept(")"):
                    while True:
                        arguments.append(self.parse_assignment_expression())
                        if not self.accept(","):
                            break
                    self.expect(")")
                expression = Call(expression.name, arguments)
            elif token.text in ("++", "--"):
                self.next()
                expression = IncDec(token.text, expression, prefix=False)
            else:
                return expression

    def parse_primary(self) -> Expression:
        token = self.next()
        if token.kind == "int":
            return IntLiteral(int(token.text, 0))
        if token.kind == "float":
            return FloatLiteral(float(token.text))
        if token.kind == "id":
            return Identifier(token.text)
        if token.text == "(":
            expression = self.parse_expression()
            self.expect(")")
            return expression
        raise CParseError(f"Line {token.line}: unexpected token {token.text!r}")


def parse_c(source: str) -> TranslationUnit:
    """Parse C source text into a :class:`TranslationUnit`."""
    cleaned, defines = preprocess(source)
    tokens = tokenize(cleaned)
    parser = CParser(tokens, defines)
    return parser.parse_translation_unit()
