"""Lowering from the C AST to MLIR core dialects (mini-Polygeist).

Reproduces the essential behaviour of Polygeist described in §2.1 of the
paper: C functions become ``func.func`` ops using the ``scf``, ``arith``,
``math`` and ``memref`` dialects.  Two Polygeist artifacts that matter for
the evaluation are modelled faithfully:

* every mutable C scalar becomes a one-element ``memref`` accessed through
  loads and stores ("every SSA value becomes a scalar data container",
  §6.1) — later passes may or may not see through this, which is part of
  what separates the ``mlir`` pipeline from ``gcc``/``clang``;
* ``scf.for`` only supports positive steps (§7.2, footnote 4), so
  downward-counting loops are *inverted*: the loop runs upwards and the
  original index is recomputed, preserving semantics but reversing the
  traversal order (the ``deriche`` cache-behaviour effect).

Type simplifications: ``float`` is widened to ``f64`` and ``char`` to
``i32``; this does not affect any reproduced experiment (Polybench uses
``double`` throughout).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..dialects import arith, math_dialect, memref, scf
from ..dialects.builtin import ModuleOp
from ..dialects.func import CallOp, FuncOp, ReturnOp
from ..ir.core import Block, Builder, Operation, Value
from ..ir.types import (
    DYNAMIC,
    F64,
    FunctionType,
    I1,
    I32,
    I64,
    INDEX,
    IndexType,
    IntegerType,
    FloatType,
    MemRefType,
    Type,
)
from . import c_ast as ast


class LoweringError(Exception):
    """Raised when a construct cannot be lowered to the supported dialects."""


#: Functions whose calls are ignored (I/O in benchmark scaffolding).
_IGNORED_CALLS = {"printf", "fprintf", "polybench_timer_start", "polybench_timer_stop"}


def _scalar_type(ctype: ast.CType) -> Type:
    if ctype.is_pointer:
        raise LoweringError(f"Expected a scalar type, got pointer {ctype}")
    if ctype.base in ("double", "float"):
        return F64
    if ctype.base == "long":
        return I64
    if ctype.base in ("int", "char"):
        return I32
    if ctype.base == "void":
        raise LoweringError("void is not a value type")
    raise LoweringError(f"Unsupported C type {ctype}")


def _element_bytes(ctype: ast.CType) -> int:
    if ctype.base in ("double", "long"):
        return 8
    if ctype.base == "float":
        return 4
    if ctype.base == "char":
        return 1
    return 4


class _Variable:
    """Symbol-table entry: how a C name is represented in the IR."""

    __slots__ = ("kind", "value", "element_type", "ctype")

    def __init__(self, kind: str, value: Value, element_type: Type, ctype: ast.CType):
        self.kind = kind  # 'scalar', 'array', 'induction'
        self.value = value
        self.element_type = element_type
        self.ctype = ctype


class _TypedValue:
    """An SSA value together with its C-level type information."""

    __slots__ = ("value", "is_float")

    def __init__(self, value: Value, is_float: bool):
        self.value = value
        self.is_float = is_float


class FunctionLowering:
    """Lowers a single C function to a ``func.func`` operation."""

    def __init__(self, module: ModuleOp, unit: ast.TranslationUnit, function: ast.FunctionDef):
        self.module = module
        self.unit = unit
        self.function = function
        self.scopes: List[Dict[str, _Variable]] = [{}]
        self.builder: Builder = Builder()
        self.func_op: Optional[FuncOp] = None

    # -- scope handling -----------------------------------------------------------
    def _lookup(self, name: str) -> _Variable:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise LoweringError(f"Use of undeclared identifier {name!r}")

    def _declare(self, name: str, variable: _Variable) -> None:
        self.scopes[-1][name] = variable

    def _push_scope(self) -> None:
        self.scopes.append({})

    def _pop_scope(self) -> None:
        self.scopes.pop()

    # -- entry point ---------------------------------------------------------------
    def lower(self) -> FuncOp:
        param_types: List[Type] = []
        for parameter in self.function.parameters:
            param_types.append(self._parameter_type(parameter))
        if self.function.return_type.base == "void" and not self.function.return_type.is_pointer:
            result_types: List[Type] = []
        else:
            result_types = [_scalar_type(self.function.return_type)]
        function_type = FunctionType(param_types, result_types)
        func_op = FuncOp.build(
            self.function.name,
            function_type,
            [parameter.name for parameter in self.function.parameters],
        )
        self.module.body.append(func_op)
        self.func_op = func_op
        self.builder = Builder.at_end(func_op.body)

        # Bind parameters. Scalars are spilled to one-element memrefs
        # (Polygeist-style) so that assignments to them are expressible.
        for parameter, argument in zip(self.function.parameters, func_op.body.arguments):
            if isinstance(argument.type, MemRefType):
                self._declare(
                    parameter.name,
                    _Variable("array", argument, argument.type.element_type, parameter.ctype),
                )
            else:
                cell = self.builder.create(
                    memref.AllocaOp, MemRefType([1], argument.type)
                ).result
                zero = self._index_constant(0)
                self.builder.create(memref.StoreOp, argument, cell, [zero])
                self._declare(
                    parameter.name,
                    _Variable("scalar", cell, argument.type, parameter.ctype),
                )

        self.lower_statement(self.function.body)

        # Guarantee a terminator.
        body = func_op.body
        if body.terminator is None:
            if function_type.results:
                zero = self._typed_constant(0, function_type.results[0])
                self.builder.create(ReturnOp, [zero])
            else:
                self.builder.create(ReturnOp, [])
        return func_op

    def _parameter_type(self, parameter: ast.ParamDecl) -> Type:
        ctype = parameter.ctype
        if parameter.array_dims:
            shape = []
            for dim in parameter.array_dims:
                constant = _const_eval(dim)
                shape.append(DYNAMIC if constant is None or constant < 0 else constant)
            return MemRefType(shape, _scalar_type(ast.CType(ctype.base)))
        if ctype.is_pointer:
            return MemRefType([DYNAMIC], _scalar_type(ast.CType(ctype.base)))
        return _scalar_type(ctype)

    # -- constants / casts -----------------------------------------------------------
    def _index_constant(self, value: int) -> Value:
        return self.builder.create(arith.ConstantOp, value, INDEX).result

    def _typed_constant(self, value, type: Type) -> Value:
        return self.builder.create(arith.ConstantOp, value, type).result

    def _to_index(self, typed: _TypedValue) -> Value:
        value = typed.value
        if isinstance(value.type, IndexType):
            return value
        if isinstance(value.type, FloatType):
            as_int = self.builder.create(arith.FPToSIOp, value, I64).result
            return self.builder.create(arith.IndexCastOp, as_int, INDEX).result
        return self.builder.create(arith.IndexCastOp, value, INDEX).result

    def _to_float(self, typed: _TypedValue) -> Value:
        value = typed.value
        if isinstance(value.type, FloatType):
            return value
        if isinstance(value.type, IndexType):
            value = self.builder.create(arith.IndexCastOp, value, I64).result
        return self.builder.create(arith.SIToFPOp, value, F64).result

    def _to_int(self, typed: _TypedValue, int_type: Type = I32) -> Value:
        value = typed.value
        if isinstance(value.type, FloatType):
            return self.builder.create(arith.FPToSIOp, value, int_type).result
        if isinstance(value.type, IndexType):
            return self.builder.create(arith.IndexCastOp, value, int_type).result
        if value.type == int_type:
            return value
        if isinstance(value.type, IntegerType) and isinstance(int_type, IntegerType):
            if value.type.width < int_type.width:
                return self.builder.create(arith.ExtSIOp, value, int_type).result
            if value.type.width > int_type.width:
                return self.builder.create(arith.TruncIOp, value, int_type).result
        return value

    def _coerce_to(self, typed: _TypedValue, target: Type) -> Value:
        if isinstance(target, FloatType):
            return self._to_float(typed)
        if isinstance(target, IndexType):
            return self._to_index(typed)
        return self._to_int(typed, target)

    # -- statements -------------------------------------------------------------------
    def lower_statement(self, statement: ast.Statement) -> None:
        if isinstance(statement, ast.Compound):
            self._push_scope()
            for inner in statement.statements:
                self.lower_statement(inner)
            self._pop_scope()
        elif isinstance(statement, ast.VarDecl):
            self._lower_declaration(statement)
        elif isinstance(statement, ast.ExpressionStatement):
            self.lower_expression(statement.expression)
        elif isinstance(statement, ast.Return):
            self._lower_return(statement)
        elif isinstance(statement, ast.For):
            self._lower_for(statement)
        elif isinstance(statement, ast.While):
            self._lower_while(statement)
        elif isinstance(statement, ast.If):
            self._lower_if(statement)
        else:
            raise LoweringError(f"Unsupported statement {type(statement).__name__}")

    def _lower_declaration(self, decl: ast.VarDecl) -> None:
        ctype = decl.ctype
        # Pointer initialized from malloc → heap allocation.
        if ctype.is_pointer:
            element_type = _scalar_type(ast.CType(ctype.base))
            if decl.init is None:
                raise LoweringError(
                    f"Pointer {decl.name!r} must be initialized with malloc in the supported subset"
                )
            alloc_value = self._lower_malloc(decl.init, element_type, ctype)
            self._declare(decl.name, _Variable("array", alloc_value, element_type, ctype))
            return
        if decl.array_dims:
            shape = []
            for dim in decl.array_dims:
                constant = _const_eval(dim)
                if constant is None:
                    raise LoweringError(
                        f"Array {decl.name!r} requires constant dimensions in the supported subset"
                    )
                shape.append(constant)
            element_type = _scalar_type(ast.CType(ctype.base))
            alloca = self.builder.create(memref.AllocaOp, MemRefType(shape, element_type))
            self._declare(decl.name, _Variable("array", alloca.result, element_type, ctype))
            return
        # Scalar declaration → one-element memref.
        element_type = _scalar_type(ctype)
        cell = self.builder.create(memref.AllocaOp, MemRefType([1], element_type)).result
        self._declare(decl.name, _Variable("scalar", cell, element_type, ctype))
        if decl.init is not None:
            value = self.lower_expression(decl.init)
            coerced = self._coerce_to(value, element_type)
            zero = self._index_constant(0)
            self.builder.create(memref.StoreOp, coerced, cell, [zero])

    def _lower_malloc(
        self, init: ast.Expression, element_type: Type, ctype: ast.CType
    ) -> Value:
        expression = init
        if isinstance(expression, ast.Cast):
            expression = expression.operand
        if not (isinstance(expression, ast.Call) and expression.name in ("malloc", "calloc")):
            raise LoweringError("Pointer initializers must be malloc/calloc calls")
        if expression.name == "calloc" and len(expression.arguments) == 2:
            count_expr: ast.Expression = expression.arguments[0]
        else:
            count_expr = _strip_sizeof_factor(expression.arguments[0])
        count = self.lower_expression(count_expr)
        count_index = self._to_index(count)
        alloc = self.builder.create(
            memref.AllocOp, MemRefType([DYNAMIC], element_type), [count_index]
        )
        return alloc.result

    def _lower_return(self, statement: ast.Return) -> None:
        assert self.func_op is not None
        results = self.func_op.function_type.results
        if statement.value is None or not results:
            self.builder.create(ReturnOp, [])
            return
        value = self.lower_expression(statement.value)
        self.builder.create(ReturnOp, [self._coerce_to(value, results[0])])

    # -- control flow --------------------------------------------------------------------
    def _lower_if(self, statement: ast.If) -> None:
        condition = self._lower_condition(statement.condition)
        if_op = self.builder.create(
            scf.IfOp, condition, [], statement.else_body is not None
        )
        outer_builder = self.builder
        self.builder = Builder.at_end(if_op.then_block)
        self._push_scope()
        self.lower_statement(statement.then_body)
        self._pop_scope()
        self.builder.create(scf.YieldOp, [])
        if statement.else_body is not None:
            self.builder = Builder.at_end(if_op.else_block)
            self._push_scope()
            self.lower_statement(statement.else_body)
            self._pop_scope()
            self.builder.create(scf.YieldOp, [])
        elif if_op.else_block is not None:
            else_builder = Builder.at_end(if_op.else_block)
            else_builder.create(scf.YieldOp, [])
        self.builder = outer_builder

    def _lower_condition(self, expression: ast.Expression) -> Value:
        typed = self.lower_expression(expression)
        value = typed.value
        if value.type == I1:
            return value
        if isinstance(value.type, FloatType):
            zero = self._typed_constant(0.0, value.type)
            return self.builder.create(arith.CmpFOp, "une", value, zero).result
        zero = self._typed_constant(0, value.type)
        return self.builder.create(arith.CmpIOp, "ne", value, zero).result

    def _lower_for(self, statement: ast.For) -> None:
        pattern = _match_canonical_for(statement)
        if pattern is None:
            self._lower_for_as_while(statement)
            return
        name, lower_expr, upper_expr, inclusive, step_amount, downward = pattern
        if _assigns_to(statement.body, name):
            self._lower_for_as_while(statement)
            return

        self._push_scope()
        lower = self._to_index(self.lower_expression(lower_expr))
        upper = self._to_index(self.lower_expression(upper_expr))
        if inclusive:
            one = self._index_constant(1)
            upper = self.builder.create(arith.AddIOp, upper, one, INDEX).result
        step = self._index_constant(abs(step_amount))

        for_op = self.builder.create(scf.ForOp, lower, upper, step, [], name)
        outer_builder = self.builder
        self.builder = Builder.at_end(for_op.body)

        induction: Value = for_op.induction_variable
        if downward:
            # Loop-order inversion (Polygeist/scf limitation, §7.2): iterate
            # upwards and recompute the original index i = lo + hi - iv.
            total = self.builder.create(arith.AddIOp, lower, upper, INDEX).result
            one = self._index_constant(1)
            total_minus = self.builder.create(arith.SubIOp, total, one, INDEX).result
            induction = self.builder.create(
                arith.SubIOp, total_minus, for_op.induction_variable, INDEX
            ).result
        int_type = I64 if False else I32
        self._declare(
            name,
            _Variable("induction", induction, INDEX, ast.CType("int")),
        )
        self.lower_statement(statement.body)
        self.builder.create(scf.YieldOp, [])
        self.builder = outer_builder
        self._pop_scope()

    def _lower_for_as_while(self, statement: ast.For) -> None:
        self._push_scope()
        if statement.init is not None:
            self.lower_statement(statement.init)
        condition = statement.condition if statement.condition is not None else ast.IntLiteral(1)
        body_statements: List[ast.Statement] = [statement.body]
        if statement.post is not None:
            body_statements.append(ast.ExpressionStatement(statement.post))
        self._lower_while(ast.While(condition, ast.Compound(body_statements)))
        self._pop_scope()

    def _lower_while(self, statement: ast.While) -> None:
        while_op = self.builder.create(scf.WhileOp, [])
        outer_builder = self.builder
        # Condition ("before") region.
        self.builder = Builder.at_end(while_op.before_block)
        condition = self._lower_condition(statement.condition)
        self.builder.create(scf.ConditionOp, condition, [])
        # Body ("after") region.
        self.builder = Builder.at_end(while_op.after_block)
        self._push_scope()
        self.lower_statement(statement.body)
        self._pop_scope()
        self.builder.create(scf.YieldOp, [])
        self.builder = outer_builder

    # -- expressions ------------------------------------------------------------------------
    def lower_expression(self, expression: ast.Expression) -> _TypedValue:
        if isinstance(expression, ast.IntLiteral):
            return _TypedValue(self._typed_constant(expression.value, I32), False)
        if isinstance(expression, ast.FloatLiteral):
            return _TypedValue(self._typed_constant(expression.value, F64), True)
        if isinstance(expression, ast.Identifier):
            return self._lower_identifier_read(expression.name)
        if isinstance(expression, ast.Subscript):
            return self._lower_subscript_read(expression)
        if isinstance(expression, ast.BinaryOp):
            return self._lower_binary(expression)
        if isinstance(expression, ast.UnaryOp):
            return self._lower_unary(expression)
        if isinstance(expression, ast.Assignment):
            return self._lower_assignment(expression)
        if isinstance(expression, ast.IncDec):
            return self._lower_incdec(expression)
        if isinstance(expression, ast.Call):
            return self._lower_call(expression)
        if isinstance(expression, ast.Cast):
            return self._lower_cast(expression)
        if isinstance(expression, ast.Ternary):
            return self._lower_ternary(expression)
        if isinstance(expression, ast.SizeOf):
            return _TypedValue(
                self._typed_constant(_element_bytes(expression.ctype), I64), False
            )
        raise LoweringError(f"Unsupported expression {type(expression).__name__}")

    def _lower_identifier_read(self, name: str) -> _TypedValue:
        variable = self._lookup(name)
        if variable.kind == "induction":
            return _TypedValue(variable.value, False)
        if variable.kind == "scalar":
            zero = self._index_constant(0)
            load = self.builder.create(memref.LoadOp, variable.value, [zero])
            return _TypedValue(load.result, isinstance(variable.element_type, FloatType))
        # Arrays decay to their memref value (passed to calls / returned).
        return _TypedValue(variable.value, False)

    def _resolve_subscript(self, expression: ast.Subscript) -> Tuple[_Variable, List[Value]]:
        """Return the array variable and the index list (outermost first)."""
        indices_ast: List[ast.Expression] = []
        base: ast.Expression = expression
        while isinstance(base, ast.Subscript):
            indices_ast.append(base.index)
            base = base.base
        indices_ast.reverse()
        if not isinstance(base, ast.Identifier):
            raise LoweringError("Array accesses must use a named array")
        variable = self._lookup(base.name)
        if variable.kind not in ("array", "scalar"):
            raise LoweringError(f"{base.name!r} is not an array")
        indices = [self._to_index(self.lower_expression(index)) for index in indices_ast]
        return variable, indices

    def _lower_subscript_read(self, expression: ast.Subscript) -> _TypedValue:
        variable, indices = self._resolve_subscript(expression)
        load = self.builder.create(memref.LoadOp, variable.value, indices)
        return _TypedValue(load.result, isinstance(variable.element_type, FloatType))

    def _lower_binary(self, expression: ast.BinaryOp) -> _TypedValue:
        op = expression.op
        lhs = self.lower_expression(expression.lhs)
        rhs = self.lower_expression(expression.rhs)
        if op in ("&&", "||"):
            lhs_bool = self._to_bool(lhs)
            rhs_bool = self._to_bool(rhs)
            cls = arith.AndIOp if op == "&&" else arith.OrIOp
            return _TypedValue(self.builder.create(cls, lhs_bool, rhs_bool, I1).result, False)
        if op in ("<", "<=", ">", ">=", "==", "!="):
            return self._lower_comparison(op, lhs, rhs)
        return self._lower_arithmetic(op, lhs, rhs)

    def _to_bool(self, typed: _TypedValue) -> Value:
        if typed.value.type == I1:
            return typed.value
        if isinstance(typed.value.type, FloatType):
            zero = self._typed_constant(0.0, typed.value.type)
            return self.builder.create(arith.CmpFOp, "une", typed.value, zero).result
        zero = self._typed_constant(0, typed.value.type)
        return self.builder.create(arith.CmpIOp, "ne", typed.value, zero).result

    _CMP_PRED_INT = {"<": "slt", "<=": "sle", ">": "sgt", ">=": "sge", "==": "eq", "!=": "ne"}
    _CMP_PRED_FLOAT = {"<": "olt", "<=": "ole", ">": "ogt", ">=": "oge", "==": "oeq", "!=": "one"}

    def _lower_comparison(self, op: str, lhs: _TypedValue, rhs: _TypedValue) -> _TypedValue:
        if lhs.is_float or rhs.is_float:
            lval = self._to_float(lhs)
            rval = self._to_float(rhs)
            result = self.builder.create(arith.CmpFOp, self._CMP_PRED_FLOAT[op], lval, rval)
        else:
            lval, rval = self._unify_ints(lhs, rhs)
            result = self.builder.create(arith.CmpIOp, self._CMP_PRED_INT[op], lval, rval)
        return _TypedValue(result.result, False)

    def _unify_ints(self, lhs: _TypedValue, rhs: _TypedValue) -> Tuple[Value, Value]:
        lval, rval = lhs.value, rhs.value
        # Index values mix freely with integers: cast both to a common type.
        if isinstance(lval.type, IndexType) and isinstance(rval.type, IndexType):
            return lval, rval
        if isinstance(lval.type, IndexType):
            lval = self.builder.create(arith.IndexCastOp, lval, rval.type).result
            return lval, rval
        if isinstance(rval.type, IndexType):
            rval = self.builder.create(arith.IndexCastOp, rval, lval.type).result
            return lval, rval
        lwidth = lval.type.width if isinstance(lval.type, IntegerType) else 32
        rwidth = rval.type.width if isinstance(rval.type, IntegerType) else 32
        if lwidth < rwidth:
            lval = self.builder.create(arith.ExtSIOp, lval, rval.type).result
        elif rwidth < lwidth:
            rval = self.builder.create(arith.ExtSIOp, rval, lval.type).result
        return lval, rval

    _INT_OPS = {"+": arith.AddIOp, "-": arith.SubIOp, "*": arith.MulIOp, "/": arith.DivSIOp,
                "%": arith.RemSIOp, "&": arith.AndIOp, "|": arith.OrIOp, "^": arith.XOrIOp,
                "<<": arith.ShLIOp, ">>": arith.ShRSIOp}
    _FLOAT_OPS = {"+": arith.AddFOp, "-": arith.SubFOp, "*": arith.MulFOp, "/": arith.DivFOp}

    def _lower_arithmetic(self, op: str, lhs: _TypedValue, rhs: _TypedValue) -> _TypedValue:
        if lhs.is_float or rhs.is_float:
            if op not in self._FLOAT_OPS:
                raise LoweringError(f"Operator {op!r} is not supported on floating-point values")
            lval = self._to_float(lhs)
            rval = self._to_float(rhs)
            result = self.builder.create(self._FLOAT_OPS[op], lval, rval, F64)
            return _TypedValue(result.result, True)
        if op not in self._INT_OPS:
            raise LoweringError(f"Unsupported integer operator {op!r}")
        lval, rval = self._unify_ints(lhs, rhs)
        result = self.builder.create(self._INT_OPS[op], lval, rval, lval.type)
        return _TypedValue(result.result, False)

    def _lower_unary(self, expression: ast.UnaryOp) -> _TypedValue:
        operand = self.lower_expression(expression.operand)
        if expression.op == "+":
            return operand
        if expression.op == "-":
            if operand.is_float:
                return _TypedValue(
                    self.builder.create(arith.NegFOp, operand.value).result, True
                )
            zero = self._typed_constant(0, operand.value.type)
            return _TypedValue(
                self.builder.create(arith.SubIOp, zero, operand.value, operand.value.type).result,
                False,
            )
        if expression.op == "!":
            as_bool = self._to_bool(operand)
            one = self._typed_constant(1, I1)
            return _TypedValue(
                self.builder.create(arith.XOrIOp, as_bool, one, I1).result, False
            )
        raise LoweringError(f"Unsupported unary operator {expression.op!r}")

    def _lower_assignment(self, expression: ast.Assignment) -> _TypedValue:
        value = self.lower_expression(expression.value)
        target = expression.target
        if isinstance(target, ast.Identifier):
            variable = self._lookup(target.name)
            if variable.kind == "induction":
                raise LoweringError(f"Cannot assign to loop variable {target.name!r} here")
            if variable.kind == "array":
                raise LoweringError(f"Cannot assign to array {target.name!r}")
            zero = self._index_constant(0)
            if expression.op:
                current = self.builder.create(memref.LoadOp, variable.value, [zero]).result
                current_typed = _TypedValue(current, isinstance(variable.element_type, FloatType))
                value = self._lower_arithmetic(expression.op, current_typed, value)
            stored = self._coerce_to(value, variable.element_type)
            self.builder.create(memref.StoreOp, stored, variable.value, [zero])
            return _TypedValue(stored, isinstance(variable.element_type, FloatType))
        if isinstance(target, ast.Subscript):
            variable, indices = self._resolve_subscript(target)
            if expression.op:
                current = self.builder.create(memref.LoadOp, variable.value, indices).result
                current_typed = _TypedValue(current, isinstance(variable.element_type, FloatType))
                value = self._lower_arithmetic(expression.op, current_typed, value)
            stored = self._coerce_to(value, variable.element_type)
            self.builder.create(memref.StoreOp, stored, variable.value, indices)
            return _TypedValue(stored, isinstance(variable.element_type, FloatType))
        raise LoweringError("Unsupported assignment target")

    def _lower_incdec(self, expression: ast.IncDec) -> _TypedValue:
        delta = 1 if expression.op == "++" else -1
        return self._lower_assignment(
            ast.Assignment("+", expression.target, ast.IntLiteral(delta))
        )

    def _lower_call(self, expression: ast.Call) -> _TypedValue:
        name = expression.name
        if name in _IGNORED_CALLS:
            return _TypedValue(self._typed_constant(0, I32), False)
        if name == "free":
            argument = expression.arguments[0]
            if isinstance(argument, ast.Identifier):
                variable = self._lookup(argument.name)
                self.builder.create(memref.DeallocOp, variable.value)
            return _TypedValue(self._typed_constant(0, I32), False)
        if name in math_dialect.C_MATH_FUNCTIONS:
            op_name = math_dialect.C_MATH_FUNCTIONS[name]
            operands = [self._to_float(self.lower_expression(arg)) for arg in expression.arguments]
            from ..ir.core import OPERATION_REGISTRY

            op_class = OPERATION_REGISTRY[op_name]
            result = self.builder.create(op_class, *operands)
            return _TypedValue(result.result, True)
        # User-defined function in the same translation unit.
        try:
            callee = self.unit.function(name)
        except KeyError:
            raise LoweringError(f"Call to unknown function {name!r}")
        arguments: List[Value] = []
        for argument_ast, parameter in zip(expression.arguments, callee.parameters):
            typed = self.lower_expression(argument_ast)
            if parameter.array_dims or parameter.ctype.is_pointer:
                arguments.append(typed.value)
            else:
                arguments.append(self._coerce_to(typed, _scalar_type(parameter.ctype)))
        if callee.return_type.base == "void":
            self.builder.create(CallOp, name, arguments, [])
            return _TypedValue(self._typed_constant(0, I32), False)
        result_type = _scalar_type(callee.return_type)
        call = self.builder.create(CallOp, name, arguments, [result_type])
        return _TypedValue(call.results[0], isinstance(result_type, FloatType))

    def _lower_cast(self, expression: ast.Cast) -> _TypedValue:
        operand = self.lower_expression(expression.operand)
        if expression.ctype.is_pointer:
            return operand
        target = _scalar_type(expression.ctype)
        return _TypedValue(
            self._coerce_to(operand, target), isinstance(target, FloatType)
        )

    def _lower_ternary(self, expression: ast.Ternary) -> _TypedValue:
        condition = self._lower_condition(expression.condition)
        then_value = self.lower_expression(expression.then_value)
        else_value = self.lower_expression(expression.else_value)
        if then_value.is_float or else_value.is_float:
            tval = self._to_float(then_value)
            fval = self._to_float(else_value)
            is_float = True
        else:
            tval, fval = self._unify_ints(then_value, else_value)
            is_float = False
        select = self.builder.create(arith.SelectOp, condition, tval, fval)
        return _TypedValue(select.result, is_float)


# ---------------------------------------------------------------------------
# Helpers for canonical loop recognition
# ---------------------------------------------------------------------------


def _const_eval(expression: ast.Expression) -> Optional[int]:
    """Evaluate an integer-constant expression (after macro expansion)."""
    if isinstance(expression, ast.IntLiteral):
        return expression.value
    if isinstance(expression, ast.UnaryOp) and expression.op == "-":
        inner = _const_eval(expression.operand)
        return None if inner is None else -inner
    if isinstance(expression, ast.BinaryOp):
        lhs = _const_eval(expression.lhs)
        rhs = _const_eval(expression.rhs)
        if lhs is None or rhs is None:
            return None
        if expression.op == "+":
            return lhs + rhs
        if expression.op == "-":
            return lhs - rhs
        if expression.op == "*":
            return lhs * rhs
        if expression.op == "/" and rhs != 0:
            return lhs // rhs
    return None


def _strip_sizeof_factor(expression: ast.Expression) -> ast.Expression:
    """Turn ``N * sizeof(T)`` / ``sizeof(T) * N`` into ``N``."""
    if isinstance(expression, ast.BinaryOp) and expression.op == "*":
        if isinstance(expression.lhs, ast.SizeOf):
            return expression.rhs
        if isinstance(expression.rhs, ast.SizeOf):
            return expression.lhs
    if isinstance(expression, ast.SizeOf):
        return ast.IntLiteral(1)
    return expression


def _match_canonical_for(statement: ast.For):
    """Match ``for (i = lo; i < hi; i += c)`` (and the downward variant).

    Returns ``(name, lower, upper, inclusive, step, downward)`` or ``None``.
    """
    init = statement.init
    name: Optional[str] = None
    lower: Optional[ast.Expression] = None
    if isinstance(init, ast.VarDecl) and init.init is not None and not init.array_dims:
        name, lower = init.name, init.init
    elif isinstance(init, ast.ExpressionStatement) and isinstance(init.expression, ast.Assignment):
        assignment = init.expression
        if assignment.op == "" and isinstance(assignment.target, ast.Identifier):
            name, lower = assignment.target.name, assignment.value
    if name is None or lower is None:
        return None

    condition = statement.condition
    if not isinstance(condition, ast.BinaryOp):
        return None
    if not (isinstance(condition.lhs, ast.Identifier) and condition.lhs.name == name):
        return None

    post = statement.post
    step = None
    downward = False
    if isinstance(post, ast.IncDec) and isinstance(post.target, ast.Identifier) \
            and post.target.name == name:
        step = 1 if post.op == "++" else -1
        downward = post.op == "--"
    elif isinstance(post, ast.Assignment) and isinstance(post.target, ast.Identifier) \
            and post.target.name == name and post.op in ("+", "-"):
        amount = _const_eval(post.value)
        if amount is None:
            return None
        step = amount if post.op == "+" else -amount
        downward = step < 0
    if step is None or step == 0:
        return None

    op = condition.op
    bound = condition.rhs
    if not downward:
        if op == "<":
            return name, lower, bound, False, step, False
        if op == "<=":
            return name, lower, bound, True, step, False
        return None
    # Downward loop: for (i = hi; i >(=) lo; i--) → iterate [lo(,+1) .. hi].
    if op == ">=":
        return name, bound, lower, True, step, True
    if op == ">":
        # i > lo  ⇒ smallest value is lo + 1
        return name, ast.BinaryOp("+", bound, ast.IntLiteral(1)), lower, True, step, True
    return None


def _assigns_to(statement: ast.Statement, name: str) -> bool:
    """Whether the statement subtree writes to the named variable."""
    found = False

    def visit_expression(expression: ast.Expression) -> None:
        nonlocal found
        if isinstance(expression, ast.Assignment):
            if isinstance(expression.target, ast.Identifier) and expression.target.name == name:
                found = True
            visit_expression(expression.target)
            visit_expression(expression.value)
        elif isinstance(expression, ast.IncDec):
            if isinstance(expression.target, ast.Identifier) and expression.target.name == name:
                found = True
        elif isinstance(expression, ast.BinaryOp):
            visit_expression(expression.lhs)
            visit_expression(expression.rhs)
        elif isinstance(expression, ast.UnaryOp):
            visit_expression(expression.operand)
        elif isinstance(expression, ast.Subscript):
            visit_expression(expression.base)
            visit_expression(expression.index)
        elif isinstance(expression, ast.Call):
            for argument in expression.arguments:
                visit_expression(argument)
        elif isinstance(expression, (ast.Cast,)):
            visit_expression(expression.operand)
        elif isinstance(expression, ast.Ternary):
            visit_expression(expression.condition)
            visit_expression(expression.then_value)
            visit_expression(expression.else_value)

    def visit_statement(node: ast.Statement) -> None:
        if isinstance(node, ast.Compound):
            for inner in node.statements:
                visit_statement(inner)
        elif isinstance(node, ast.ExpressionStatement):
            visit_expression(node.expression)
        elif isinstance(node, ast.VarDecl) and node.init is not None:
            visit_expression(node.init)
        elif isinstance(node, ast.For):
            if node.init is not None:
                visit_statement(node.init)
            if node.condition is not None:
                visit_expression(node.condition)
            if node.post is not None:
                visit_expression(node.post)
            visit_statement(node.body)
        elif isinstance(node, ast.While):
            visit_expression(node.condition)
            visit_statement(node.body)
        elif isinstance(node, ast.If):
            visit_expression(node.condition)
            visit_statement(node.then_body)
            if node.else_body is not None:
                visit_statement(node.else_body)
        elif isinstance(node, ast.Return) and node.value is not None:
            visit_expression(node.value)

    visit_statement(statement)
    return found


def lower_translation_unit(unit: ast.TranslationUnit) -> ModuleOp:
    """Lower a parsed translation unit to an MLIR module."""
    module = ModuleOp.build()
    for function in unit.functions:
        FunctionLowering(module, unit, function).lower()
    return module
