"""Abstract syntax tree for the C subset.

The node set covers the Polybench kernels and the paper's case-study
snippets: functions, scalar and array declarations (including ``malloc``),
``for``/``while``/``if`` statements, assignments (plain and compound),
array subscripts, calls to math functions, and the usual expression forms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CType:
    """A C type: a base type plus pointer depth (``double*`` → depth 1)."""

    base: str  # 'int', 'long', 'float', 'double', 'void', 'char'
    pointer_depth: int = 0

    @property
    def is_pointer(self) -> bool:
        return self.pointer_depth > 0

    @property
    def is_floating(self) -> bool:
        return self.base in ("float", "double")

    @property
    def is_integer(self) -> bool:
        return self.base in ("int", "long", "char")

    def pointee(self) -> "CType":
        if self.pointer_depth == 0:
            raise ValueError(f"{self} is not a pointer type")
        return CType(self.base, self.pointer_depth - 1)

    def __str__(self) -> str:
        return self.base + "*" * self.pointer_depth


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression:
    """Base class for expression nodes."""


@dataclass
class IntLiteral(Expression):
    value: int


@dataclass
class FloatLiteral(Expression):
    value: float


@dataclass
class Identifier(Expression):
    name: str


@dataclass
class BinaryOp(Expression):
    op: str  # '+', '-', '*', '/', '%', '<', '<=', '>', '>=', '==', '!=', '&&', '||'
    lhs: Expression
    rhs: Expression


@dataclass
class UnaryOp(Expression):
    op: str  # '-', '!', '+'
    operand: Expression


@dataclass
class Assignment(Expression):
    """``target op= value`` where op is '' for plain assignment."""

    op: str  # '', '+', '-', '*', '/'
    target: Expression  # Identifier or Subscript
    value: Expression


@dataclass
class IncDec(Expression):
    """``x++`` / ``x--`` / ``++x`` / ``--x`` (used as a statement)."""

    op: str  # '++' or '--'
    target: Expression
    prefix: bool = False


@dataclass
class Subscript(Expression):
    """Array access ``base[index]`` (nested for multi-dimensional access)."""

    base: Expression
    index: Expression


@dataclass
class Call(Expression):
    name: str
    arguments: List[Expression] = field(default_factory=list)


@dataclass
class Cast(Expression):
    ctype: CType
    operand: Expression


@dataclass
class Ternary(Expression):
    condition: Expression
    then_value: Expression
    else_value: Expression


@dataclass
class SizeOf(Expression):
    ctype: CType


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement:
    """Base class for statement nodes."""


@dataclass
class Compound(Statement):
    statements: List[Statement] = field(default_factory=list)


@dataclass
class VarDecl(Statement):
    """``double A[10][20];`` / ``int i = 0;`` / ``int *A = malloc(...);``"""

    name: str
    ctype: CType
    array_dims: List[Expression] = field(default_factory=list)
    init: Optional[Expression] = None


@dataclass
class ExpressionStatement(Statement):
    expression: Expression


@dataclass
class For(Statement):
    init: Optional[Statement]  # VarDecl or ExpressionStatement
    condition: Optional[Expression]
    post: Optional[Expression]
    body: Statement


@dataclass
class While(Statement):
    condition: Expression
    body: Statement


@dataclass
class If(Statement):
    condition: Expression
    then_body: Statement
    else_body: Optional[Statement] = None


@dataclass
class Return(Statement):
    value: Optional[Expression] = None


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class ParamDecl:
    """A function parameter; array parameters carry their dimensions."""

    name: str
    ctype: CType
    array_dims: List[Expression] = field(default_factory=list)


@dataclass
class FunctionDef:
    name: str
    return_type: CType
    parameters: List[ParamDecl]
    body: Compound


@dataclass
class TranslationUnit:
    functions: List[FunctionDef] = field(default_factory=list)
    defines: dict = field(default_factory=dict)

    def function(self, name: str) -> FunctionDef:
        for function in self.functions:
            if function.name == name:
                return function
        raise KeyError(f"No function named {name!r}")
