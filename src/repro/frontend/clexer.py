"""Lexer for the C subset accepted by the mini-Polygeist frontend.

Handles the constructs appearing in Polybench-class numerical C code:
identifiers, integer/floating literals, operators (including compound
assignment and increment/decrement), comments, and a tiny preprocessor that
expands object-like ``#define NAME value`` macros and drops other
directives (``#include`` etc.).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Tuple

KEYWORDS = {
    "int",
    "long",
    "float",
    "double",
    "char",
    "void",
    "unsigned",
    "signed",
    "const",
    "static",
    "struct",
    "for",
    "while",
    "do",
    "if",
    "else",
    "return",
    "break",
    "continue",
    "sizeof",
}

# Longest-match-first operator list.
OPERATORS = [
    "<<=", ">>=",
    "++", "--", "+=", "-=", "*=", "/=", "%=", "==", "!=", "<=", ">=", "&&", "||",
    "<<", ">>", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~", "?", ":",
    "(", ")", "[", "]", "{", "}", ",", ";", ".",
]


@dataclass
class Token:
    """A single lexical token."""

    kind: str  # 'id', 'keyword', 'int', 'float', 'op', 'string', 'eof'
    text: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


class CLexerError(Exception):
    """Raised when the source contains characters the lexer cannot handle."""


_FLOAT_RE = re.compile(r"\d+\.\d*([eE][+-]?\d+)?[fF]?|\.\d+([eE][+-]?\d+)?[fF]?|\d+[eE][+-]?\d+[fF]?")
_INT_RE = re.compile(r"0[xX][0-9a-fA-F]+|\d+[uUlL]*")
_ID_RE = re.compile(r"[A-Za-z_][A-Za-z_0-9]*")
_STRING_RE = re.compile(r'"(\\.|[^"\\])*"')


def preprocess(source: str) -> Tuple[str, Dict[str, str]]:
    """Strip comments, expand ``#define`` macros, drop other directives.

    Returns the cleaned source and the macro table (useful for dataset-size
    introspection in the workload registry).
    """
    # Remove block and line comments (preserve line counts for diagnostics).
    source = re.sub(r"/\*.*?\*/", lambda m: "\n" * m.group(0).count("\n"), source, flags=re.S)
    source = re.sub(r"//[^\n]*", "", source)

    defines: Dict[str, str] = {}
    output_lines: List[str] = []
    for line in source.splitlines():
        stripped = line.strip()
        if stripped.startswith("#"):
            match = re.match(r"#\s*define\s+([A-Za-z_][A-Za-z_0-9]*)\s+(.+)", stripped)
            if match and "(" not in match.group(1):
                defines[match.group(1)] = match.group(2).strip()
            output_lines.append("")  # keep line numbering stable
            continue
        output_lines.append(line)
    text = "\n".join(output_lines)

    # Expand object-like macros repeatedly (macros may reference each other).
    for _ in range(8):
        replaced = text
        for name, value in defines.items():
            replaced = re.sub(rf"\b{re.escape(name)}\b", f"({value})", replaced)
        if replaced == text:
            break
        text = replaced
    return text, defines


def tokenize(source: str) -> List[Token]:
    """Tokenize preprocessed C source."""
    tokens: List[Token] = []
    position = 0
    line = 1
    length = len(source)
    while position < length:
        char = source[position]
        if char == "\n":
            line += 1
            position += 1
            continue
        if char.isspace():
            position += 1
            continue
        match = _FLOAT_RE.match(source, position)
        if match and ("." in match.group(0) or "e" in match.group(0) or "E" in match.group(0)):
            text = match.group(0).rstrip("fF")
            tokens.append(Token("float", text, line))
            position = match.end()
            continue
        match = _INT_RE.match(source, position)
        if match:
            text = match.group(0)
            tokens.append(Token("int", text.rstrip("uUlL"), line))
            position = match.end()
            continue
        match = _ID_RE.match(source, position)
        if match:
            text = match.group(0)
            kind = "keyword" if text in KEYWORDS else "id"
            tokens.append(Token(kind, text, line))
            position = match.end()
            continue
        match = _STRING_RE.match(source, position)
        if match:
            tokens.append(Token("string", match.group(0), line))
            position = match.end()
            continue
        for operator in OPERATORS:
            if source.startswith(operator, position):
                tokens.append(Token("op", operator, line))
                position += len(operator)
                break
        else:
            raise CLexerError(f"Unexpected character {char!r} at line {line}")
    tokens.append(Token("eof", "", line))
    return tokens
