"""Frontend driver: C source → MLIR module (mini-Polygeist entry point)."""

from __future__ import annotations

from typing import Optional

from ..dialects.builtin import ModuleOp
from ..ir.verifier import verify
from .c_ast import TranslationUnit
from .cparser import parse_c
from .lowering import lower_translation_unit


def compile_c_to_ast(source: str) -> TranslationUnit:
    """Parse C source into the frontend AST."""
    return parse_c(source)


def compile_c_to_mlir(source: str, run_verifier: bool = True) -> ModuleOp:
    """Translate C source to an MLIR module in the scf/arith/math/memref dialects.

    This is the reproduction's Polygeist: the entry point of every pipeline
    (§4, Fig. 4 — "Polygeist" box).
    """
    unit = parse_c(source)
    module = lower_translation_unit(unit)
    if run_verifier:
        verify(module)
    return module
