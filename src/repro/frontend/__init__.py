"""C frontend (mini-Polygeist): C subset → MLIR core dialects.

One of two frontends (the other is :mod:`repro.frontend_py`, which
traces NumPy-style Python and reuses this package's lowering stage).
Both produce IR satisfying the same contract, so everything downstream —
bridge, pass suites, pipelines, cache, tuner, backends — is
frontend-agnostic:

1. **One module, func.func ops.** Each kernel becomes a ``func.func``
   whose body uses only the scf/arith/math/memref dialects; the verifier
   (:func:`repro.ir.verifier.verify`) must pass on the result.
2. **Memref-shaped state.** Arrays are ``memref.alloca`` values with
   constant dimensions; mutable scalars are spilled to 1-element memrefs
   (Polygeist-style) so passes see loads/stores, not SSA mutation.
3. **Canonical structured loops.** Counted loops become ``scf.for`` with
   positive step; data-dependent loops become ``scf.while``;
   conditionals become ``scf.if``.  No unstructured branches.
4. **math-dialect calls.** Math functions lower to ``math.*`` ops via
   the ``C_MATH_FUNCTIONS`` table — never opaque calls.
5. **Scalar checksum return.** Kernels return one ``f64``/``i32`` value
   so every backend's result is comparable against the reference.
"""

from .c_ast import TranslationUnit
from .clexer import CLexerError, preprocess, tokenize
from .cparser import CParseError, parse_c
from .driver import compile_c_to_ast, compile_c_to_mlir
from .lowering import LoweringError, lower_translation_unit

__all__ = [
    "CLexerError",
    "CParseError",
    "LoweringError",
    "TranslationUnit",
    "compile_c_to_ast",
    "compile_c_to_mlir",
    "lower_translation_unit",
    "parse_c",
    "preprocess",
    "tokenize",
]
