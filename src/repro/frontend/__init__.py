"""C frontend (mini-Polygeist): C subset → MLIR core dialects."""

from .c_ast import TranslationUnit
from .clexer import CLexerError, preprocess, tokenize
from .cparser import CParseError, parse_c
from .driver import compile_c_to_ast, compile_c_to_mlir
from .lowering import LoweringError, lower_translation_unit

__all__ = [
    "CLexerError",
    "CParseError",
    "LoweringError",
    "TranslationUnit",
    "compile_c_to_ast",
    "compile_c_to_mlir",
    "lower_translation_unit",
    "parse_c",
    "preprocess",
    "tokenize",
]
