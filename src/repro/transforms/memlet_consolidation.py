"""Memlet consolidation (§6.2).

After converting MLIR dialects and propagating data dependencies, a scope
may end up with multiple memlets referring to overlapping regions of the
same container (a stencil reading ``A[i]`` and ``A[i+1]`` generates two
edges).  This pass unions edges between the same pair of nodes that refer
to the same container — a "data movement common denominator" — and merges
duplicate read access nodes of the same container within a state.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..sdfg import SDFG, AccessNode, Memlet
from .pipeline import DataCentricPass


class MemletConsolidation(DataCentricPass):
    """Union overlapping memlets and merge duplicate read nodes."""

    NAME = "memlet-consolidation"

    def apply(self, sdfg: SDFG) -> bool:
        changed = False
        for state in sdfg.states():
            if self._merge_duplicate_reads(state):
                changed = True
            if self._union_parallel_edges(state):
                changed = True
        return changed

    def _merge_duplicate_reads(self, state) -> bool:
        """Merge access nodes of the same container that are pure sources."""
        changed = False
        sources: Dict[str, AccessNode] = {}
        for node in list(state.data_nodes()):
            if node not in state or state.in_degree(node) != 0:
                continue
            existing = sources.get(node.data)
            if existing is None:
                sources[node.data] = node
                continue
            for edge in list(state.out_edges(node)):
                state.add_edge(existing, edge.src_conn, edge.dst, edge.dst_conn, edge.data)
                state.remove_edge(edge)
            state.remove_node(node)
            changed = True
        return changed

    def _union_parallel_edges(self, state) -> bool:
        """Union parallel edges between the same nodes/connectors/container."""
        changed = False
        groups: Dict[Tuple, List] = {}
        for edge in state.edges():
            if edge.data.is_empty or edge.data.wcr is not None:
                continue
            key = (edge.src, edge.src_conn, edge.dst, edge.dst_conn, edge.data.data)
            groups.setdefault(key, []).append(edge)
        for key, edges in groups.items():
            if len(edges) < 2:
                continue
            merged: Memlet = edges[0].data
            for other in edges[1:]:
                merged = merged.union(other.data)
            edges[0].data = merged
            for other in edges[1:]:
                state.remove_edge(other)
            changed = True
        return changed
