"""Memlet consolidation (§6.2).

After converting MLIR dialects and propagating data dependencies, a scope
may end up with multiple memlets referring to overlapping regions of the
same container (a stencil reading ``A[i]`` and ``A[i+1]`` generates two
edges).  This pattern-based pass matches two site kinds per state:

* ``merge-reads`` — several pure-source access nodes of the same container
  in one state; applying merges them into the first one.
* ``consolidate`` — parallel edges between the same (node, connector)
  pair referring to the same container — a "data movement common
  denominator"; applying unions them into one memlet.

Consolidation sites are enumerated on the *post-merge* view of each state
(duplicate sources are resolved to their merge representative), so one
sweep reproduces the merge-then-union behaviour of the historical
whole-graph pass.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..sdfg import SDFG, AccessNode, Memlet
from .rewrite import Match, Transformation


class MemletConsolidation(Transformation):
    """Union overlapping memlets and merge duplicate read nodes."""

    NAME = "memlet-consolidation"
    DRAIN = "sweep"

    def match(self, sdfg: SDFG) -> List[Match]:
        matches: List[Match] = []
        for state in sdfg.states():
            canonical = self._canonical_sources(state)
            duplicates: Dict[str, int] = {}
            for node in state.data_nodes():
                representative = canonical.get(node)
                if representative is not None and representative is not node:
                    duplicates[node.data] = duplicates.get(node.data, 1) + 1
            for container, count in duplicates.items():
                matches.append(Match(
                    transformation=self.name,
                    kind="merge-reads",
                    where=state.label,
                    subject=f"{container} ({count} source nodes)",
                    payload={"state": state, "container": container},
                ))
            # Parallel-edge groups, keyed on the post-merge source nodes.
            groups = self._edge_groups(state, canonical)
            for key, edges in groups.items():
                if len(edges) < 2:
                    continue
                src, src_conn, dst, dst_conn, data = key
                matches.append(Match(
                    transformation=self.name,
                    kind="consolidate",
                    where=state.label,
                    subject=f"{data}: {len(edges)} parallel edges",
                    payload={"state": state, "key": key},
                ))
        return matches

    def apply_match(self, sdfg: SDFG, match: Match) -> bool:
        state = match.payload["state"]
        if match.kind == "merge-reads":
            return self._merge_reads(state, match.payload["container"])
        return self._consolidate(state, match.payload["key"])

    # -- analysis -----------------------------------------------------------------
    @staticmethod
    def _canonical_sources(state) -> Dict[AccessNode, AccessNode]:
        """Map each pure-source access node to its merge representative."""
        canonical: Dict[AccessNode, AccessNode] = {}
        first: Dict[str, AccessNode] = {}
        for node in state.data_nodes():
            if state.in_degree(node) != 0:
                continue
            representative = first.setdefault(node.data, node)
            canonical[node] = representative
        return canonical

    @staticmethod
    def _edge_groups(state, canonical: Dict[AccessNode, AccessNode]) -> Dict[Tuple, List]:
        """Parallel-edge groups as they will exist after duplicate merging."""
        groups: Dict[Tuple, List] = {}
        for edge in state.edges():
            if edge.data.is_empty or edge.data.wcr is not None:
                continue
            src = canonical.get(edge.src, edge.src)
            key = (src, edge.src_conn, edge.dst, edge.dst_conn, edge.data.data)
            groups.setdefault(key, []).append(edge)
        return groups

    # -- rewrites -----------------------------------------------------------------
    def _merge_reads(self, state, container: str) -> bool:
        """Merge all pure-source access nodes of ``container`` into the first."""
        changed = False
        existing = None
        for node in list(state.data_nodes()):
            if node not in state or node.data != container or state.in_degree(node) != 0:
                continue
            if existing is None:
                existing = node
                continue
            for edge in list(state.out_edges(node)):
                state.add_edge(existing, edge.src_conn, edge.dst, edge.dst_conn, edge.data)
                state.remove_edge(edge)
            state.remove_node(node)
            changed = True
        return changed

    def _consolidate(self, state, key: Tuple) -> bool:
        """Union the parallel edges between the key's endpoints (live lookup)."""
        src, src_conn, dst, dst_conn, data = key
        if src not in state or dst not in state:
            return False
        edges = [
            edge for edge in state.edges_between(src, dst)
            if edge.src_conn == src_conn and edge.dst_conn == dst_conn
            and not edge.data.is_empty and edge.data.wcr is None
            and edge.data.data == data
        ]
        if len(edges) < 2:
            return False
        merged: Memlet = edges[0].data
        for other in edges[1:]:
            merged = merged.union(other.data)
        edges[0].data = merged
        for other in edges[1:]:
            state.remove_edge(other)
        return True
