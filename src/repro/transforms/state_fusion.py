"""State fusion: enlarging pure dataflow regions (§6.1, "SDFG Simplification").

Fuses a state into its unique predecessor when the connecting transition is
unconditional and carries no symbol assignments.  Data dependencies between
the two states are preserved by merging access nodes (read-after-write) and
adding explicit ordering edges (write-after-read / write-after-write), so
the fused state remains a correct acyclic dataflow graph without
introducing data races.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sdfg import SDFG, AccessNode, Memlet, SDFGState
from .pipeline import DataCentricPass


class StateFusion(DataCentricPass):
    """Repeatedly fuse linear, unconditional state pairs."""

    NAME = "state-fusion"

    def apply(self, sdfg: SDFG) -> bool:
        changed = False
        while self._fuse_once(sdfg):
            changed = True
        return changed

    def _fuse_once(self, sdfg: SDFG) -> bool:
        for first in sdfg.states():
            out_edges = sdfg.out_edges(first)
            if len(out_edges) != 1:
                continue
            edge = out_edges[0]
            second = edge.dst
            if second is first:
                continue
            if len(sdfg.in_edges(second)) != 1:
                continue
            if not edge.data.is_unconditional or edge.data.assignments:
                continue
            if second is sdfg.start_state:
                continue
            self._fuse(sdfg, first, second, edge)
            return True
        return False

    def _fuse(self, sdfg: SDFG, first: SDFGState, second: SDFGState, edge) -> None:
        # Last access node per container in the first state (for merging).
        last_in_first: Dict[str, AccessNode] = {}
        first_nodes_of = {}
        for node in first.topological_nodes():
            if isinstance(node, AccessNode):
                last_in_first[node.data] = node

        # Move nodes of the second state into the first.
        node_order = second.topological_nodes()
        first_read_node_in_second: Dict[str, AccessNode] = {}
        for node in node_order:
            if isinstance(node, AccessNode) and node.data not in first_read_node_in_second:
                first_read_node_in_second[node.data] = node

        for node in node_order:
            first.add_node(node)
        for dataflow_edge in second.edges():
            first.add_edge(
                dataflow_edge.src,
                dataflow_edge.src_conn,
                dataflow_edge.dst,
                dataflow_edge.dst_conn,
                dataflow_edge.data,
            )

        # Merge: the *first* access node of container X in the second state
        # becomes the last node of X in the first state (RAW dependency),
        # provided it only reads (no incoming writes) — otherwise keep it
        # separate but add an ordering edge (WAR/WAW).
        for data, second_node in first_read_node_in_second.items():
            if data not in last_in_first:
                continue
            first_node = last_in_first[data]
            if first_node is second_node or first_node not in first:
                continue
            incoming = first.in_edges(second_node)
            if not incoming:
                # Pure read in the second state: redirect its outgoing edges
                # to the first state's node and drop the duplicate.
                for out_edge in list(first.out_edges(second_node)):
                    first.add_edge(
                        first_node, out_edge.src_conn, out_edge.dst, out_edge.dst_conn,
                        out_edge.data,
                    )
                    first.remove_edge(out_edge)
                first.remove_node(second_node)
            else:
                # The second state writes the container: order it after the
                # first state's accesses with an explicit dependency edge.
                if not first.edges_between(first_node, second_node):
                    first.add_nedge(first_node, second_node, Memlet.empty())

        # Rewire the state machine.
        sdfg.remove_edge(edge)
        for out_edge in list(sdfg.out_edges(second)):
            sdfg.remove_edge(out_edge)
            sdfg.add_edge(first, out_edge.dst, out_edge.data)
        sdfg.remove_state(second)
