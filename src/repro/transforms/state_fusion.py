"""State fusion: enlarging pure dataflow regions (§6.1, "SDFG Simplification").

Fuses a state into its unique predecessor when the connecting transition is
unconditional and carries no symbol assignments.  Data dependencies between
the two states are preserved by merging access nodes (read-after-write) and
adding explicit ordering edges (write-after-read / write-after-write), so
the fused state remains a correct acyclic dataflow graph without
introducing data races.

Pattern-based: a match is one fusable ``(first, second)`` state pair; each
application creates new fusion opportunities (the fused state may now have
a unique unconditional successor), so the driver re-enumerates after every
application (``DRAIN = "restart"``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sdfg import SDFG, AccessNode, Memlet, SDFGState
from .rewrite import Match, Transformation


class StateFusion(Transformation):
    """Repeatedly fuse linear, unconditional state pairs."""

    NAME = "state-fusion"
    DRAIN = "restart"

    def match(self, sdfg: SDFG) -> List[Match]:
        matches: List[Match] = []
        for first in sdfg.states():
            edge = self._fusable_edge(sdfg, first)
            if edge is None:
                continue
            matches.append(Match(
                transformation=self.name,
                kind="state-pair",
                where=first.label,
                subject=f"{first.label} <- {edge.dst.label}",
                payload={"first": first, "second": edge.dst, "edge": edge},
            ))
        return matches

    def apply_match(self, sdfg: SDFG, match: Match) -> bool:
        first: SDFGState = match.payload["first"]
        second: SDFGState = match.payload["second"]
        # Revalidate against the current graph: an earlier fusion may have
        # consumed either state or rewired the transition.
        if first not in sdfg.states() or second not in sdfg.states():
            return False
        edge = self._fusable_edge(sdfg, first)
        if edge is None or edge.dst is not second:
            return False
        self._fuse(sdfg, first, second, edge)
        return True

    @staticmethod
    def _fusable_edge(sdfg: SDFG, first: SDFGState):
        """The single fusable out-transition of ``first`` (or None)."""
        out_edges = sdfg.out_edges(first)
        if len(out_edges) != 1:
            return None
        edge = out_edges[0]
        second = edge.dst
        if second is first:
            return None
        if len(sdfg.in_edges(second)) != 1:
            return None
        if not edge.data.is_unconditional or edge.data.assignments:
            return None
        if second is sdfg.start_state:
            return None
        return edge

    def _fuse(self, sdfg: SDFG, first: SDFGState, second: SDFGState, edge) -> None:
        # Last access node per container in the first state (for merging).
        last_in_first: Dict[str, AccessNode] = {}
        for node in first.topological_nodes():
            if isinstance(node, AccessNode):
                last_in_first[node.data] = node

        # Move nodes of the second state into the first.
        node_order = second.topological_nodes()
        first_read_node_in_second: Dict[str, AccessNode] = {}
        for node in node_order:
            if isinstance(node, AccessNode) and node.data not in first_read_node_in_second:
                first_read_node_in_second[node.data] = node

        for node in node_order:
            first.add_node(node)
        for dataflow_edge in second.edges():
            first.add_edge(
                dataflow_edge.src,
                dataflow_edge.src_conn,
                dataflow_edge.dst,
                dataflow_edge.dst_conn,
                dataflow_edge.data,
            )

        # Merge: the *first* access node of container X in the second state
        # becomes the last node of X in the first state (RAW dependency),
        # provided it only reads (no incoming writes) — otherwise keep it
        # separate but add an ordering edge (WAR/WAW).
        for data, second_node in first_read_node_in_second.items():
            if data not in last_in_first:
                continue
            first_node = last_in_first[data]
            if first_node is second_node or first_node not in first:
                continue
            incoming = first.in_edges(second_node)
            if not incoming:
                # Pure read in the second state: redirect its outgoing edges
                # to the first state's node and drop the duplicate.
                for out_edge in list(first.out_edges(second_node)):
                    first.add_edge(
                        first_node, out_edge.src_conn, out_edge.dst, out_edge.dst_conn,
                        out_edge.data,
                    )
                    first.remove_edge(out_edge)
                first.remove_node(second_node)
            else:
                # The second state writes the container: order it after the
                # first state's accesses with an explicit dependency edge.
                if not first.edges_between(first_node, second_node):
                    first.add_nedge(first_node, second_node, Memlet.empty())

        # Rewire the state machine.
        sdfg.remove_edge(edge)
        for out_edge in list(sdfg.out_edges(second)):
            sdfg.remove_edge(out_edge)
            sdfg.add_edge(first, out_edge.dst, out_edge.data)
        sdfg.remove_state(second)
