"""Data-centric pass infrastructure and the standard DCIR pipelines.

Mirrors DaCe's pass pipeline: each pass transforms an SDFG in place and
reports whether it changed anything; pipelines run passes in order and
optionally repeat until a fixed point.  Three standard pipelines are
provided, matching the paper:

* :func:`simplification_pipeline` — the idempotent ``-O1``-equivalent
  simplification (§6.1/§6.2): inference, state fusion, dead state / dead
  dataflow elimination, array elimination, memlet consolidation.
* :func:`memory_scheduling_pipeline` — the ``-O2``-equivalent memory
  scheduling optimizations (§6.3): memory (pre-)allocation and
  memory-reducing loop fusion.
* :func:`data_centric_pipeline` — both, in order (what DCIR runs after
  translation).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..sdfg import SDFG


class DataCentricPass:
    """Base class for SDFG-level passes."""

    NAME: Optional[str] = None

    @property
    def name(self) -> str:
        return self.NAME or type(self).__name__

    def apply(self, sdfg: SDFG) -> bool:
        """Transform ``sdfg`` in place; return True if anything changed."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DataCentricPass {self.name}>"


@dataclass
class PassRecord:
    name: str
    changed: bool
    seconds: float


@dataclass
class PipelineReport:
    records: List[PassRecord] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(record.seconds for record in self.records)

    @property
    def changed(self) -> bool:
        return any(record.changed for record in self.records)

    def applied_passes(self) -> List[str]:
        return [record.name for record in self.records if record.changed]

    def summary(self) -> str:
        lines = [
            f"{record.name:<34} changed={record.changed} {record.seconds * 1e3:8.2f} ms"
            for record in self.records
        ]
        lines.append(f"{'total':<34} {'':13} {self.total_seconds * 1e3:8.2f} ms")
        return "\n".join(lines)


class DataCentricPipeline:
    """Runs a sequence of data-centric passes, optionally to a fixed point."""

    def __init__(self, passes: Sequence[DataCentricPass], max_iterations: int = 4,
                 validate: bool = False):
        self.passes = list(passes)
        self.max_iterations = max(1, max_iterations)
        self.validate = validate

    def apply(self, sdfg: SDFG) -> PipelineReport:
        report = PipelineReport()
        for _ in range(self.max_iterations):
            iteration_changed = False
            for pass_obj in self.passes:
                start = time.perf_counter()
                changed = bool(pass_obj.apply(sdfg))
                elapsed = time.perf_counter() - start
                report.records.append(PassRecord(pass_obj.name, changed, elapsed))
                iteration_changed = iteration_changed or changed
                if self.validate:
                    sdfg.validate()
            if not iteration_changed:
                break
        return report


def simplification_pipeline(max_iterations: int = 4) -> DataCentricPipeline:
    """Inference + data-movement reduction (§6.1 and §6.2, the -O1 set)."""
    from .array_elimination import ArrayElimination
    from .dead_code import (
        DeadDataflowElimination,
        DeadStateElimination,
        RedundantIterationElimination,
    )
    from .memlet_consolidation import MemletConsolidation
    from .state_fusion import StateFusion
    from .symbol_passes import ScalarToSymbolPromotion, SymbolPropagation
    from .wcr_detection import AugAssignToWCR

    return DataCentricPipeline(
        [
            ScalarToSymbolPromotion(),
            SymbolPropagation(),
            StateFusion(),
            AugAssignToWCR(),
            DeadStateElimination(),
            DeadDataflowElimination(),
            RedundantIterationElimination(),
            ArrayElimination(),
            MemletConsolidation(),
        ],
        max_iterations=max_iterations,
    )


def memory_scheduling_pipeline() -> DataCentricPipeline:
    """Memory scheduling optimizations (§6.3, the -O2 set)."""
    from .map_transforms import LoopToMap, MapFusion
    from .memory_allocation import MemoryPreAllocation, StackPromotion

    return DataCentricPipeline(
        [
            StackPromotion(),
            MemoryPreAllocation(),
            LoopToMap(),
            MapFusion(),
        ],
        max_iterations=2,
    )


def data_centric_pipeline() -> DataCentricPipeline:
    """The full data-centric half of DCIR: simplify (-O1) then schedule (-O2)."""
    simplify = simplification_pipeline()
    schedule = memory_scheduling_pipeline()
    return DataCentricPipeline(simplify.passes + schedule.passes, max_iterations=3)
