"""Data-centric pass infrastructure and the standard DCIR pipelines.

A thin layer over the unified infrastructure in :mod:`repro.passbase`:
:class:`DataCentricPass` keeps the DaCe-flavoured ``apply`` hook name and
:class:`DataCentricPipeline` the ``validate`` convenience, while the report
types are the shared ones (``PipelineReport``/``PassRecord`` are aliases of
:class:`~repro.passbase.StageReport`/:class:`~repro.passbase.PassRecord`).

``DataCentricPass`` is the *whole-graph* contract: ``apply(sdfg) -> bool``
transforms in place and reports whether anything changed.  Almost every
shipped pass is now the richer pattern-based
:class:`~repro.transforms.rewrite.Transformation` subclass of it, which
splits that into ``match(sdfg) -> list[Match]`` (deterministic site
enumeration) and ``apply_match(sdfg, match)`` (one-site rewrite with
revalidation), with ``apply`` as the match-draining driver; write a plain
``DataCentricPass`` only when a rewrite genuinely has no site structure.
The :class:`~repro.passbase.PassRunner` treats both identically, but
pattern-based passes additionally report per-run match/application counts
on their :class:`~repro.passbase.PassRecord`.

Three standard pipelines are provided, matching the paper:

* :func:`simplification_pipeline` — the idempotent ``-O1``-equivalent
  simplification (§6.1/§6.2): inference, state fusion, dead state / dead
  dataflow elimination, array elimination, memlet consolidation.
* :func:`memory_scheduling_pipeline` — the ``-O2``-equivalent memory
  scheduling optimizations (§6.3): memory (pre-)allocation and
  memory-reducing loop fusion.
* :func:`data_centric_pipeline` — both, in order (what DCIR runs after
  translation).
"""

from __future__ import annotations

from typing import Sequence

from ..passbase import PassBase, PassRecord, PassRunner, StageReport
from ..sdfg import SDFG

#: Backwards-compatible alias for the historical data-centric report name.
PipelineReport = StageReport


class DataCentricPass(PassBase):
    """Base class for SDFG-level passes."""

    def run(self, target: SDFG) -> bool:
        return self.apply(target)

    def apply(self, sdfg: SDFG) -> bool:
        """Transform ``sdfg`` in place; return True if anything changed."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DataCentricPass {self.name}>"


class DataCentricPipeline(PassRunner):
    """Runs a sequence of data-centric passes, optionally to a fixed point."""

    def __init__(self, passes: Sequence[DataCentricPass], max_iterations: int = 4,
                 validate: bool = False):
        super().__init__(
            passes,
            max_iterations=max_iterations,
            validate=(lambda sdfg: sdfg.validate()) if validate else None,
            stage="data",
        )

    def apply(self, sdfg: SDFG) -> StageReport:
        return self.run(sdfg)


def simplification_pipeline(max_iterations: int = 4) -> DataCentricPipeline:
    """Inference + data-movement reduction (§6.1 and §6.2, the -O1 set)."""
    from .array_elimination import ArrayElimination
    from .dead_code import (
        DeadDataflowElimination,
        DeadStateElimination,
        RedundantIterationElimination,
    )
    from .memlet_consolidation import MemletConsolidation
    from .state_fusion import StateFusion
    from .symbol_passes import ScalarToSymbolPromotion, SymbolPropagation
    from .wcr_detection import AugAssignToWCR

    return DataCentricPipeline(
        [
            ScalarToSymbolPromotion(),
            SymbolPropagation(),
            StateFusion(),
            AugAssignToWCR(),
            DeadStateElimination(),
            DeadDataflowElimination(),
            RedundantIterationElimination(),
            ArrayElimination(),
            MemletConsolidation(),
        ],
        max_iterations=max_iterations,
    )


def memory_scheduling_pipeline() -> DataCentricPipeline:
    """Memory scheduling optimizations (§6.3, the -O2 set)."""
    from .map_transforms import LoopToMap, MapFusion
    from .memory_allocation import MemoryPreAllocation, StackPromotion

    return DataCentricPipeline(
        [
            StackPromotion(),
            MemoryPreAllocation(),
            LoopToMap(),
            MapFusion(),
        ],
        max_iterations=2,
    )


def data_centric_pipeline() -> DataCentricPipeline:
    """The full data-centric half of DCIR: simplify (-O1) then schedule (-O2)."""
    simplify = simplification_pipeline()
    schedule = memory_scheduling_pipeline()
    return DataCentricPipeline(simplify.passes + schedule.passes, max_iterations=3)
