"""Detection of structured loops in the SDFG state machine.

The converter lowers ``scf.for`` to a guard state with a conditional body
edge, a conditional exit edge, and a latch edge carrying the increment
assignment.  Several consumers need to re-discover that structure: the
structured code generator (raising control flow back from the state
machine, as §5.1 notes is possible via dominator analysis), the
redundant-iteration and loop-to-map transformations, and the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from ..symbolic import Compare, Expr, Integer, Not, Symbol
from ..sdfg import SDFG, SDFGState, StateEdge


@dataclass
class LoopInfo:
    """A natural loop in the state machine with a recognized guard."""

    guard: SDFGState
    body_states: Set[SDFGState]
    entry_edges: List[StateEdge]
    body_edge: StateEdge
    exit_edge: StateEdge
    latch_edges: List[StateEdge]
    induction_symbol: Optional[str] = None
    init_expr: Optional[Expr] = None
    step_expr: Optional[Expr] = None
    bound_expr: Optional[Expr] = None  # loop runs while  induction < bound

    @property
    def condition(self) -> Expr:
        return self.body_edge.data.condition

    def trip_count(self) -> Optional[Expr]:
        if self.init_expr is None or self.bound_expr is None or self.step_expr is None:
            return None
        if self.step_expr != Integer(1):
            return (self.bound_expr - self.init_expr + self.step_expr - 1) // self.step_expr
        return self.bound_expr - self.init_expr


def _back_edges(sdfg: SDFG) -> List[StateEdge]:
    """Edges whose destination dominates their source (loop latches)."""
    if sdfg.start_state is None:
        return []
    graph = sdfg._graph
    dominators = nx.immediate_dominators(graph, sdfg.start_state)

    def dominates(a: SDFGState, b: SDFGState) -> bool:
        current = b
        while True:
            if current is a:
                return True
            parent = dominators.get(current)
            if parent is None or parent is current:
                return False
            current = parent

    result = []
    for edge in sdfg.edges():
        if edge.dst in dominators and dominates(edge.dst, edge.src):
            result.append(edge)
    return result


def _natural_loop(sdfg: SDFG, back_edge: StateEdge) -> Set[SDFGState]:
    """States of the natural loop defined by a back edge (including guard)."""
    guard = back_edge.dst
    body: Set[SDFGState] = {guard, back_edge.src}
    stack = [back_edge.src]
    while stack:
        state = stack.pop()
        if state is guard:
            continue
        for edge in sdfg.in_edges(state):
            if edge.src not in body:
                body.add(edge.src)
                stack.append(edge.src)
    return body


def find_loops(sdfg: SDFG) -> List[LoopInfo]:
    """Find structured loops: guards with one body edge and one exit edge."""
    loops: Dict[SDFGState, LoopInfo] = {}
    for back_edge in _back_edges(sdfg):
        guard = back_edge.dst
        body = _natural_loop(sdfg, back_edge)
        out_edges = sdfg.out_edges(guard)
        if len(out_edges) != 2:
            continue
        inside = [edge for edge in out_edges if edge.dst in body]
        outside = [edge for edge in out_edges if edge.dst not in body]
        if len(inside) != 1 or len(outside) != 1:
            continue
        entry_edges = [
            edge for edge in sdfg.in_edges(guard) if edge.src not in body or edge.src is guard
        ]
        entry_edges = [edge for edge in entry_edges if edge is not back_edge]
        if guard in loops:
            # Merge latches of nested back edges onto the same guard.
            loops[guard].latch_edges.append(back_edge)
            loops[guard].body_states |= body
            continue
        info = LoopInfo(
            guard=guard,
            body_states=body - {guard},
            entry_edges=entry_edges,
            body_edge=inside[0],
            exit_edge=outside[0],
            latch_edges=[back_edge],
        )
        _recognize_counted_loop(info)
        loops[guard] = info
    return list(loops.values())


def _recognize_counted_loop(info: LoopInfo) -> None:
    """Fill induction symbol / bounds when the loop is a counted loop."""
    condition = info.body_edge.data.condition
    if not isinstance(condition, Compare) or condition.op not in ("<", "<="):
        return
    if not isinstance(condition.lhs, Symbol):
        return
    induction = condition.lhs.name
    bound = condition.rhs if condition.op == "<" else condition.rhs + Integer(1)

    init_expr: Optional[Expr] = None
    for edge in info.entry_edges:
        if induction in edge.data.assignments:
            init_expr = edge.data.assignments[induction]
    step_expr: Optional[Expr] = None
    for edge in info.latch_edges:
        if induction in edge.data.assignments:
            increment = edge.data.assignments[induction]
            step_expr = increment - Symbol(induction)
    if init_expr is None or step_expr is None:
        return
    if step_expr.free_symbols():
        return
    info.induction_symbol = induction
    info.init_expr = init_expr
    info.step_expr = step_expr
    info.bound_expr = bound


def symbols_used_in_state(state: SDFGState) -> Set[str]:
    """Names of symbols referenced by memlets or tasklet code in a state."""
    used: Set[str] = set()
    for edge in state.edges():
        used |= {symbol.name for symbol in edge.data.free_symbols()}
    for tasklet in state.tasklets():
        used |= tasklet.free_symbols()
    from ..sdfg.nodes import MapEntry

    for node in state.nodes():
        if isinstance(node, MapEntry):
            for rng in node.map.ranges:
                used |= {symbol.name for symbol in rng.free_symbols()}
    return used
