"""Symbolic inference passes (§6.1): scalar-to-symbol promotion and symbol
propagation.

* :class:`ScalarToSymbolPromotion` elevates scalar containers into symbols
  when they are written exactly once with a symbolically representable
  value and are otherwise only read by state-transition edges (loop bounds,
  branch conditions).  This exposes index expressions, loop bounds and
  data-dependent sizes to the symbolic engine.
* :class:`SymbolPropagation` works like constant propagation on symbols:
  symbols assigned exactly once to a constant (or to an expression over
  already-propagated symbols) are substituted everywhere and the dead
  assignment is removed.

Both re-enumerate after every application (``DRAIN = "restart"``):
promoting one scalar or propagating one symbol routinely makes the next
site eligible (a chain of derived loop bounds resolves one link at a
time).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from ..symbolic import Expr, SymbolicError, parse_expr
from ..sdfg import SDFG, AccessNode, Scalar, SDFGState, Tasklet
from ..sdfg.analysis import symbols_assigned_once
from .rewrite import Match, Transformation

_ASSIGNMENT_RE = re.compile(r"^\s*_out\s*=\s*(?P<expr>.+)\s*$")


class ScalarToSymbolPromotion(Transformation):
    """Promote write-once, symbolically-defined scalars to SDFG symbols."""

    NAME = "scalar-to-symbol"
    DRAIN = "restart"

    def match(self, sdfg: SDFG) -> List[Match]:
        matches: List[Match] = []
        for name in list(sdfg.arrays):
            promotion = self._promotable(sdfg, name)
            if promotion is None:
                continue
            state, _, _, expression = promotion
            matches.append(Match(
                transformation=self.name,
                kind="scalar",
                where=state.label,
                subject=f"{name} = {expression}",
                payload={"name": name},
            ))
        return matches

    def apply_match(self, sdfg: SDFG, match: Match) -> bool:
        name = match.payload["name"]
        promotion = self._promotable(sdfg, name)
        if promotion is None:
            return False
        state, write_node, tasklet, expression = promotion
        # Remove the defining tasklet and access node; assign the symbol
        # on the state's outgoing edges instead.
        for edge in list(state.in_edges(write_node)):
            state.remove_edge(edge)
        for edge in list(state.in_edges(tasklet)):
            state.remove_edge(edge)
        state.remove_node(write_node)
        state.remove_node(tasklet)
        for out_edge in sdfg.out_edges(state):
            out_edge.data.assignments[name] = expression
        del sdfg.arrays[name]
        sdfg.add_symbol(name)
        return True

    def _promotable(self, sdfg: SDFG, name: str):
        """Return (state, access node, defining tasklet, expression) or None."""
        descriptor = sdfg.arrays.get(name)
        if not isinstance(descriptor, Scalar) or not descriptor.transient:
            return None
        if descriptor.dtype not in ("int32", "int64", "bool", "int8"):
            return None

        write_state: Optional[SDFGState] = None
        write_node: Optional[AccessNode] = None
        defining: Optional[Tasklet] = None
        expression: Optional[Expr] = None

        for state in sdfg.states():
            for node in state.data_nodes():
                if node.data != name:
                    continue
                in_edges = state.in_edges(node)
                out_edges = state.out_edges(node)
                if out_edges:
                    return None  # read through dataflow: would require code rewrites
                if not in_edges:
                    continue
                if write_state is not None or len(in_edges) != 1:
                    return None  # written more than once
                edge = in_edges[0]
                if not isinstance(edge.src, Tasklet) or state.in_degree(edge.src) != 0:
                    return None
                match = _ASSIGNMENT_RE.match(edge.src.code.strip())
                if match is None:
                    return None
                try:
                    parsed = parse_expr(match.group("expr"))
                except SymbolicError:
                    return None
                referenced = {symbol.name for symbol in parsed.free_symbols()}
                if referenced & set(sdfg.arrays):
                    return None  # depends on containers, not symbols
                write_state = state
                write_node = node
                defining = edge.src
                expression = parsed

        if write_state is None or expression is None:
            return None
        # The scalar must be read somewhere on interstate edges, otherwise
        # promotion is pointless (dead dataflow elimination handles it).
        read_on_edges = any(
            name in edge.data.free_symbols() for edge in sdfg.edges()
        )
        if not read_on_edges:
            return None
        return write_state, write_node, defining, expression


class SymbolPropagation(Transformation):
    """Forward-propagate symbols that are assigned exactly once."""

    NAME = "symbol-propagation"
    DRAIN = "restart"

    def match(self, sdfg: SDFG) -> List[Match]:
        matches: List[Match] = []
        for name, value in self._substitutable(sdfg).items():
            matches.append(Match(
                transformation=self.name,
                kind="symbol",
                where="<sdfg>",
                subject=f"{name} = {value}",
                payload={"name": name, "value": value},
            ))
        return matches

    def apply_match(self, sdfg: SDFG, match: Match) -> bool:
        name = match.payload["name"]
        value = self._substitutable(sdfg).get(name)
        if value is None or value != match.payload["value"]:
            return False
        self._substitute(sdfg, {name: value})
        return True

    @staticmethod
    def _substitutable(sdfg: SDFG) -> Dict[str, Expr]:
        """Symbols assigned exactly once to a constant, in assignment order."""
        once = symbols_assigned_once(sdfg)
        substitutions: Dict[str, Expr] = {}
        for name, value in once.items():
            if name in sdfg.arrays:
                continue
            free = {symbol.name for symbol in value.free_symbols()}
            if free & (set(once) | set(sdfg.arrays)):
                continue  # depends on other assigned names; next round
            if name in free:
                continue
            if value.is_constant():
                substitutions[name] = value
        return substitutions

    def _substitute(self, sdfg: SDFG, substitutions: Dict[str, Expr]) -> None:
        # Interstate edges: conditions and (other) assignments.
        for edge in sdfg.edges():
            edge.data.condition = edge.data.condition.subs(substitutions)
            new_assignments = {}
            for name, value in edge.data.assignments.items():
                if name in substitutions:
                    continue  # the (single) assignment itself becomes redundant
                new_assignments[name] = value.subs(substitutions)
            edge.data.assignments = new_assignments
        # Dataflow: memlet subsets and map ranges.
        for state in sdfg.states():
            for dataflow_edge in state.edges():
                if not dataflow_edge.data.is_empty:
                    dataflow_edge.data = dataflow_edge.data.subs(substitutions)
            from ..sdfg.nodes import MapEntry

            for node in state.nodes():
                if isinstance(node, MapEntry):
                    node.map.ranges = [rng.subs(substitutions) for rng in node.map.ranges]
        # Container shapes.
        for descriptor in sdfg.arrays.values():
            descriptor.shape = tuple(dim.subs(substitutions) for dim in descriptor.shape)
        # Record as constants for code generation and remove the symbol.
        for name, value in substitutions.items():
            if value.is_constant():
                sdfg.add_constant(name, value.evaluate({}))
            sdfg.symbols.pop(name, None)
