"""Parallel-schedule annotation as a pattern-based transformation.

``Parallelize`` closes the loop the paper's §2.2 opens: map scopes are
*parametrically parallel* by construction, but until a schedule says so,
both backends lower them as sequential loop nests.  This transformation
runs the conservative safety proof in :mod:`repro.sdfg.parallelism` on
every outermost map scope and, where the proof succeeds, flips the map's
``schedule`` annotation to ``"parallel"`` — nothing else.  The backends
key everything off the annotation: the C generator emits ``#pragma omp
parallel for`` (with ``reduction(...)`` clauses and ``#pragma omp
atomic`` lowered from WCR memlets), the interpreted backend forks
chunked shared-memory workers.

The natural grain is the outer tile loop ``MapTiling`` produces: its
step equals the tile size, so each worker owns whole tiles and the
intra-tile maps (whose ranges the proof recognizes as intervals of the
tile parameter) inherit the partition.  Untiled maps parallelize too
when their writes are indexed injectively by the first parameter.
"""

from __future__ import annotations

from typing import List, Optional

from ..sdfg import SDFG, SDFGState
from ..sdfg.nodes import MapEntry, SCHEDULE_PARALLEL, SCHEDULE_SEQUENTIAL
from ..sdfg.parallelism import analyze_map_parallelism
from .rewrite import Match, Transformation


class Parallelize(Transformation):
    """Annotate provably safe outermost map scopes with a parallel schedule.

    ``n_threads`` requests a fixed worker count (``None`` defers to
    ``REPRO_NUM_THREADS`` and then the machine's core count at run time);
    it is a declared tuner axis, so the measured-runtime evaluator sweeps
    worker counts the same way it sweeps tile sizes.
    """

    NAME = "parallelize"
    DRAIN = "sweep"
    # The tuner proposes this pass through its dedicated ``schedule:``
    # axis (SearchSpace.schedule_variants) rather than the generic
    # additions stage, so the schedule choice shows up as its own
    # labelled dimension of the search space.
    ADDABLE = False
    PARAMS = {"n_threads": (None, 2, 4, 8)}

    def __init__(self, n_threads: Optional[int] = None, **kwargs):
        super().__init__(**kwargs)
        if n_threads is not None and int(n_threads) < 1:
            raise ValueError(f"n_threads must be >= 1 (or None), got {n_threads}")
        self.n_threads = None if n_threads is None else int(n_threads)

    def match(self, sdfg: SDFG) -> List[Match]:
        matches: List[Match] = []
        for state, entry in sdfg.map_entries():
            if not self._eligible(state, entry):
                continue
            info = analyze_map_parallelism(sdfg, state, entry)
            if not info.ok:
                continue
            notes = []
            if info.reductions:
                notes.append(
                    "reductions: "
                    + ", ".join(f"{name}[{op}]" for name, op in info.reductions)
                )
            if info.atomic_edges:
                notes.append(f"{len(info.atomic_edges)} atomic update(s)")
            threads = "auto" if self.n_threads is None else str(self.n_threads)
            subject = f"{entry.map.label} over {info.chunk_param} ({threads} threads)"
            if notes:
                subject += " — " + "; ".join(notes)
            matches.append(Match(
                transformation=self.name,
                kind="map",
                where=state.label,
                subject=subject,
                payload={"state": state, "entry": entry},
            ))
        return matches

    def apply_match(self, sdfg: SDFG, match: Match) -> bool:
        state: SDFGState = match.payload["state"]
        entry: MapEntry = match.payload["entry"]
        if state not in sdfg.states() or entry not in state:
            return False
        if not self._eligible(state, entry):
            return False
        # Re-prove on the current graph: earlier matches of the same drain
        # may have restructured the state since this match was collected.
        info = analyze_map_parallelism(sdfg, state, entry)
        if not info.ok:
            return False
        entry.map.schedule = SCHEDULE_PARALLEL
        entry.map.n_threads = self.n_threads
        return True

    @staticmethod
    def _eligible(state: SDFGState, entry: MapEntry) -> bool:
        map_obj = entry.map
        if map_obj.schedule != SCHEDULE_SEQUENTIAL:
            return False
        if map_obj.vectorized or not map_obj.params:
            return False
        return state.scope_dict().get(entry) is None
