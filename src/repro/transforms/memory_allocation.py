"""Memory scheduling optimizations (§6.3): (pre-)allocation heuristics.

Two pattern-based heuristics deal with allocation placement in arbitrary
MLIR codes:

* :class:`StackPromotion` — decide whether a container can live on the
  stack (or in registers) rather than the heap, based on a static size
  threshold.  On the paper's ``gesummv`` this is the optimization that
  moves one of the five arrays to the stack.  The threshold is the
  transformation's tunable parameter (``max_elements``).
* :class:`MemoryPreAllocation` — move allocation to the outermost scope it
  can (no data races in the sequential model), removing allocation calls
  from the critical path; containers become ``persistent`` and are
  allocated once, up front, by the code generator.  This is what removes
  the per-iteration allocations Torch-MLIR leaves in the Mish benchmark.

Each match is one promotable container; both transforms sweep their match
list once per run (container promotions are independent sites).
"""

from __future__ import annotations

from typing import List

from ..sdfg import SDFG, STORAGE_STACK
from ..sdfg.data import Array, LIFETIME_PERSISTENT
from .rewrite import Match, Transformation

#: Containers of at most this many elements are promoted to the stack.
DEFAULT_STACK_THRESHOLD = 64 * 1024


class StackPromotion(Transformation):
    """Promote small, statically-sized transients to stack storage."""

    NAME = "stack-promotion"
    DRAIN = "sweep"
    PARAMS = {"max_elements": (1024, 16 * 1024, DEFAULT_STACK_THRESHOLD, 256 * 1024)}

    def __init__(self, max_elements: int = DEFAULT_STACK_THRESHOLD, **kwargs):
        super().__init__(**kwargs)
        self.max_elements = max_elements

    def match(self, sdfg: SDFG) -> List[Match]:
        matches: List[Match] = []
        for name, descriptor in sdfg.arrays.items():
            if not self._eligible(descriptor):
                continue
            matches.append(Match(
                transformation=self.name,
                kind="container",
                where="<sdfg>",
                subject=f"{name} ({descriptor.total_size()} elements)",
                payload={"name": name},
            ))
        return matches

    def apply_match(self, sdfg: SDFG, match: Match) -> bool:
        name = match.payload["name"]
        descriptor = sdfg.arrays.get(name)
        if descriptor is None or not self._eligible(descriptor):
            return False
        descriptor.storage = STORAGE_STACK
        descriptor.lifetime = LIFETIME_PERSISTENT
        return True

    def _eligible(self, descriptor) -> bool:
        if not isinstance(descriptor, Array) or not descriptor.transient:
            return False
        if descriptor.storage == STORAGE_STACK:
            return False
        size = descriptor.total_size()
        if not size.is_constant():
            return False
        return size.as_int() <= self.max_elements


class MemoryPreAllocation(Transformation):
    """Hoist transient allocations to the outermost scope (pre-allocation)."""

    NAME = "memory-preallocation"
    DRAIN = "sweep"

    def match(self, sdfg: SDFG) -> List[Match]:
        matches: List[Match] = []
        assigned = self._assigned_symbols(sdfg)
        for name, descriptor in sdfg.arrays.items():
            if not self._eligible(descriptor, assigned):
                continue
            matches.append(Match(
                transformation=self.name,
                kind="container",
                where="<sdfg>",
                subject=name,
                payload={"name": name},
            ))
        return matches

    def apply_match(self, sdfg: SDFG, match: Match) -> bool:
        name = match.payload["name"]
        descriptor = sdfg.arrays.get(name)
        if descriptor is None or not self._eligible(descriptor, self._assigned_symbols(sdfg)):
            return False
        descriptor.lifetime = LIFETIME_PERSISTENT
        return True

    @staticmethod
    def _assigned_symbols(sdfg: SDFG) -> set:
        assigned = set()
        for edge in sdfg.edges():
            assigned |= set(edge.data.assignments)
        return assigned

    @staticmethod
    def _eligible(descriptor, assigned_symbols: set) -> bool:
        if not isinstance(descriptor, Array) or not descriptor.transient:
            return False
        if descriptor.lifetime == LIFETIME_PERSISTENT:
            return False
        # In the sequential execution model reusing one allocation across
        # loop iterations is always race-free, so hoisting is always legal
        # as long as the size does not depend on symbols assigned inside
        # the program (loop indices).
        shape_symbols = {symbol.name for symbol in descriptor.free_symbols()}
        return not (shape_symbols & assigned_symbols)
