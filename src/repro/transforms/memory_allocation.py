"""Memory scheduling optimizations (§6.3): (pre-)allocation heuristics.

Two heuristics deal with allocation placement in arbitrary MLIR codes:

* :class:`StackPromotion` — decide whether a container can live on the
  stack (or in registers) rather than the heap, based on a static size
  threshold.  On the paper's ``gesummv`` this is the optimization that
  moves one of the five arrays to the stack.
* :class:`MemoryPreAllocation` — move allocation to the outermost scope it
  can (no data races in the sequential model), removing allocation calls
  from the critical path; containers become ``persistent`` and are
  allocated once, up front, by the code generator.  This is what removes
  the per-iteration allocations Torch-MLIR leaves in the Mish benchmark.
"""

from __future__ import annotations

from ..symbolic import Integer
from ..sdfg import SDFG, STORAGE_STACK
from ..sdfg.data import Array, LIFETIME_PERSISTENT
from .pipeline import DataCentricPass

#: Containers of at most this many elements are promoted to the stack.
DEFAULT_STACK_THRESHOLD = 64 * 1024


class StackPromotion(DataCentricPass):
    """Promote small, statically-sized transients to stack storage."""

    NAME = "stack-promotion"

    def __init__(self, max_elements: int = DEFAULT_STACK_THRESHOLD):
        self.max_elements = max_elements

    def apply(self, sdfg: SDFG) -> bool:
        changed = False
        for name, descriptor in sdfg.arrays.items():
            if not isinstance(descriptor, Array) or not descriptor.transient:
                continue
            if descriptor.storage == STORAGE_STACK:
                continue
            size = descriptor.total_size()
            if not size.is_constant():
                continue
            if size.as_int() <= self.max_elements:
                descriptor.storage = STORAGE_STACK
                descriptor.lifetime = LIFETIME_PERSISTENT
                changed = True
        return changed


class MemoryPreAllocation(DataCentricPass):
    """Hoist transient allocations to the outermost scope (pre-allocation)."""

    NAME = "memory-preallocation"

    def apply(self, sdfg: SDFG) -> bool:
        changed = False
        for name, descriptor in sdfg.arrays.items():
            if not isinstance(descriptor, Array) or not descriptor.transient:
                continue
            if descriptor.lifetime == LIFETIME_PERSISTENT:
                continue
            # In the sequential execution model reusing one allocation across
            # loop iterations is always race-free, so hoisting is always legal
            # as long as the size does not depend on symbols assigned inside
            # the program (loop indices).
            assigned_symbols = set()
            for edge in sdfg.edges():
                assigned_symbols |= set(edge.data.assignments)
            shape_symbols = {symbol.name for symbol in descriptor.free_symbols()}
            if shape_symbols & assigned_symbols:
                continue
            descriptor.lifetime = LIFETIME_PERSISTENT
            changed = True
        return changed
